"""Two-layer GAT inference on a Reddit-like social graph.

The paper's motivating workload: attention-based neighbourhood aggregation
on a large, skewed social network.  Builds a 2-layer GAT with the full
layer API (dense projection + fused attention convolution), runs inference,
and profiles the convolution phase of each layer through the TLPGNN engine
— including the hybrid workload decision the engine makes per layer.

    python examples/gat_social_network.py
"""

import numpy as np

from repro.balance import choose_assignment
from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import TLPGNNEngine
from repro.models import GATLayer


def main() -> None:
    config = BenchConfig(feat_dim=64)
    dataset = get_dataset("RD", config)
    graph = dataset.graph
    print(f"Social graph: {graph} (stand-in for Reddit at scale {dataset.scale:g})")

    policy = choose_assignment(dataset.full_num_vertices, dataset.full_avg_degree)
    print(
        f"Hybrid heuristic for the full-size workload "
        f"(|V|={dataset.full_num_vertices:,}, avg deg "
        f"{dataset.full_avg_degree:.0f}): {policy} assignment\n"
    )

    rng = np.random.default_rng(0)
    X = make_features(graph.num_vertices, 64, seed=7)

    # ---- full model forward (functional path) -------------------------
    layer1 = GATLayer.init(64, 32, rng)
    layer2 = GATLayer.init(32, 16, rng)
    h1 = layer1.forward(graph, X)
    h2 = layer2.forward(graph, h1, activation=False)
    print(f"2-layer GAT inference: {X.shape} -> {h1.shape} -> {h2.shape}")
    print(f"output stats: mean={h2.mean():.4f} std={h2.std():.4f}\n")

    # ---- profile the convolution phase of each layer ------------------
    engine = TLPGNNEngine()
    for li, feats in (("layer 1", X[:, :64]), ("layer 2", h1)):
        res = run_system(engine, "gat", dataset, config, X=np.ascontiguousarray(feats))
        assert res is not None
        print(f"--- {li} graph convolution ---")
        print(res.report.summary())
        print()

    # ---- fusion matters most here --------------------------------------
    unfused = run_system(TLPGNNEngine(fusion=False), "gat", dataset, config, X=X)
    fused = run_system(TLPGNNEngine(), "gat", dataset, config, X=X)
    assert fused is not None and unfused is not None
    print(
        f"kernel fusion: {unfused.report.kernel_launches} kernels "
        f"({unfused.runtime_ms:.2f} ms) -> {fused.report.kernel_launches} kernel "
        f"({fused.runtime_ms:.2f} ms), "
        f"{unfused.runtime_ms / fused.runtime_ms:.2f}x faster, "
        f"{unfused.report.global_mem_usage_bytes / 1e6:.1f} MB of edge "
        "intermediates eliminated"
    )


if __name__ == "__main__":
    main()
