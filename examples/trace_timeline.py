"""Export Chrome-trace timelines: TLPGNN's one kernel vs DGL's six.

Runs GCN on Citeseer under both systems with the span tracer installed,
writes one Perfetto-loadable timeline per system (host spans on one
process track, the modeled GPU on another with one track per SM), and
prints where the modeled GPU time went.

    python examples/trace_timeline.py

Open the resulting ``trace_*.json`` in https://ui.perfetto.dev or
chrome://tracing.
"""

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS
from repro.obs import Tracer, set_tracer, write_timeline


def trace_one(system_name: str, config, dataset, X) -> None:
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        res = run_system(SYSTEMS[system_name](), "gcn", dataset, config, X=X)
    finally:
        set_tracer(previous)

    out = f"trace_{system_name.lower()}_gcn_cr.json"
    spec = config.spec_for(dataset)
    trace = write_timeline(out, res, spec, tracer=tracer)
    meta = trace["otherData"]

    kernel_spans = [
        ev for ev in trace["traceEvents"]
        if ev.get("ph") == "X" and ev["pid"] == 2 and ev["tid"] == 0
    ]
    print(f"{system_name}: wrote {out}")
    print(
        f"  {len(trace['traceEvents'])} events, {meta['num_sms']} SM tracks, "
        f"{len(kernel_spans)} kernel span(s), "
        f"GPU time {meta['gpu_time_ms']:.4f} ms "
        f"(runtime {meta['runtime_ms']:.4f} ms)"
    )
    for ev in kernel_spans:
        print(f"    {ev['name']:<28} {ev['dur'] / 1e3:8.4f} ms")
    print()


def main() -> None:
    config = BenchConfig(max_edges=60_000, seed=7)
    dataset = get_dataset("CR", config)
    X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=config.seed)

    print(
        "Tracing GCN on Citeseer: TLPGNN fuses the layer into one kernel, "
        "DGL launches a kernel per message-passing step.\n"
    )
    trace_one("TLPGNN", config, dataset, X)
    trace_one("DGL", config, dataset, X)
    print(
        "Load either file in Perfetto: the 'kernels' track shows per-kernel "
        "spans; each 'SM n' track shows the modeled block schedule inside "
        "those windows."
    )


if __name__ == "__main__":
    main()
