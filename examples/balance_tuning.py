"""Workload-balance tuning: hardware vs software assignment, and the knobs.

Section 5 of the paper: hardware block scheduling balances better with
fewer warps per block (at higher scheduling cost), the software task pool
amortizes one atomic per chunk, and a heuristic picks between them.  This
example sweeps both knobs over two very different graphs and shows where
the paper's thresholds come from.

    python examples/balance_tuning.py
"""

import numpy as np

from repro.balance import (
    choose_assignment,
    hardware_assignment,
    simulate_task_pool,
    software_assignment,
)
from repro.bench import BenchConfig, get_dataset, make_features
from repro.gpusim import V100, warp_cycles
from repro.kernels import TLPGNNKernel
from repro.models import build_conv


def vertex_cycles(abbr: str, config: BenchConfig) -> tuple[np.ndarray, object]:
    ds = get_dataset(abbr, config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    wl = build_conv("gcn", ds.graph, X)
    spec = config.spec_for(ds)
    stats, _ = TLPGNNKernel(assignment="hardware").analyze(wl, spec)
    return stats.warp_cycles, (ds, spec)


def main() -> None:
    config = BenchConfig(feat_dim=32)

    for abbr in ("OH", "RD"):  # many sparse vertices vs few dense ones
        cycles, (ds, spec) = vertex_cycles(abbr, config)
        print(f"=== {ds.spec.full_name} ({abbr}): |V|={ds.graph.num_vertices:,}, "
              f"avg degree {ds.graph.avg_degree:.1f} ===")

        print("  hardware assignment, warps/block sweep:")
        for wpb in (1, 2, 4, 8, 16):
            sched, _ = hardware_assignment(cycles, spec, warps_per_block=wpb)
            print(
                f"    wpb={wpb:>2}: makespan {sched.makespan_cycles / 1e6:8.2f} "
                f"Mcycles (sched overhead {sched.overhead_cycles / 1e6:6.2f})"
            )

        print("  software task pool, step sweep:")
        for step in (1, 4, 8, 32, 128):
            sched, _ = software_assignment(cycles, spec, step=step)
            print(
                f"    step={step:>3}: makespan {sched.makespan_cycles / 1e6:8.2f}"
                f" Mcycles ({sched.num_units} chunks)"
            )

        policy = choose_assignment(ds.full_num_vertices, ds.full_avg_degree)
        print(f"  heuristic verdict for the full-size workload: {policy}\n")

    # Algorithm 1, literally: watch a small pool drain
    print("=== Algorithm 1 on a toy pool (24 vertices, 4 warps, step 4) ===")
    rng = np.random.default_rng(0)
    costs = warp_cycles(
        V100, instructions=rng.integers(5, 50, 24), requests=4.0, sectors=8.0
    )
    trace = simulate_task_pool(costs, num_warps=4, step=4, fetch_cost=10.0)
    for w in range(4):
        mine = np.flatnonzero(trace.owner == w)
        print(
            f"  warp {w}: vertices {mine.tolist()} "
            f"({trace.chunks_pulled[w]} pulls, "
            f"finished at {trace.finish_cycles[w]:.0f} cycles)"
        )
    print(f"  makespan: {trace.makespan:.0f} cycles")


if __name__ == "__main__":
    main()
