"""Reproduce the paper's Section 3 profiling analysis (Observations I-III).

Walks through the three profiling studies that motivated the TLPGNN design:
atomic operations (Table 1), coalesced memory access (Table 2), and kernel
launches (Table 3), printing the observation each one supports.

    python examples/profiling_analysis.py
"""

from repro.bench import BenchConfig, table1, table2, table3


def main() -> None:
    cfg128 = BenchConfig(feat_dim=128)
    cfg32 = BenchConfig(feat_dim=32)

    t1 = table1(cfg128)
    print(t1.render())
    pull = next(r for r in t1.records if r["kernel"].startswith("tlpgnn"))
    worst = max(r["gpu_ms"] for r in t1.records)
    print(
        "\nObservation I: optimizations with atomic writing drastically lower"
        " performance.\n"
        f"  -> atomic-free pull is {worst / pull['gpu_ms']:.1f}x faster than the"
        " slowest atomic implementation.\n"
    )

    t2 = table2(cfg128)
    print(t2.render())
    thread, warp = t2.records
    print(
        "\nObservation II: coalesced memory access brings tremendous"
        " improvement.\n"
        f"  -> half-warp mapping is {thread['runtime_ms'] / warp['runtime_ms']:.1f}x"
        f" faster; sector/request drops {thread['sectors_per_request']:.1f}"
        f" -> {warp['sectors_per_request']:.1f}.\n"
    )

    t3 = table3(cfg32)
    print(t3.render())
    recs = {r["config"]: r for r in t3.records}
    print(
        "\nObservation III: graph convolution should use as few kernels as"
        " possible.\n"
        f"  -> one kernel is {recs['DGL']['runtime'] / recs['One-Kernel']['runtime']:.1f}x"
        f" faster than DGL's 18 and"
        f" {recs['Three-Kernel']['runtime'] / recs['One-Kernel']['runtime']:.1f}x"
        " faster than the 3-kernel pipeline."
    )


if __name__ == "__main__":
    main()
