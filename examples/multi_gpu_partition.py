"""Multi-GPU graph convolution (the paper's future work).

"We believe our techniques can also be deployed on a multi-GPU setting with
the help of graph partition techniques, e.g., METIS."  This example uses
``repro.multigpu.distribute_conv``: k-way partition (the METIS substitute),
the unchanged TLPGNN kernel per modeled device, halo feature exchange over
NVLink-class links — and verifies the distributed result matches the
single-device reference.

    python examples/multi_gpu_partition.py
"""

import numpy as np

from repro.bench import BenchConfig, get_dataset, make_features
from repro.graph import edge_cut, partition_kway
from repro.models import build_conv, reference_aggregate
from repro.multigpu import distribute_conv


def main() -> None:
    config = BenchConfig(feat_dim=32)
    dataset = get_dataset("PD", config)
    graph = dataset.graph
    X = make_features(graph.num_vertices, config.feat_dim, seed=7)
    expected = reference_aggregate(build_conv("gcn", graph, X))

    deg = graph.in_degrees.astype(np.float64) + 1.0
    inv = (1.0 / np.sqrt(deg)).astype(np.float32)

    print(f"Graph: {graph}\n")
    print(f"{'devices':>8} | {'edge cut':>9} | {'halo MB':>8} | "
          f"{'conv ms':>8} | {'exch ms':>8} | {'balance':>7}")
    print("-" * 62)
    for k in (1, 2, 4, 8):
        part = partition_kway(graph, k, seed=0)
        res = distribute_conv(
            graph, X, k, src_scale=inv, dst_scale=inv,
            spec=config.spec_for(dataset), partition=part,
        )
        out = res.output + X / deg[:, None].astype(np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)
        cut = edge_cut(graph, part)
        print(
            f"{k:>8} | {cut:>9,} | {res.halo_bytes / 1e6:>8.2f} | "
            f"{res.conv_seconds * 1e3:>8.3f} | "
            f"{res.exchange_seconds * 1e3:>8.3f} | {res.load_balance:>7.2f}"
        )
    print("\nall configurations match the single-device reference")


if __name__ == "__main__":
    main()
