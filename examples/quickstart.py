"""Quickstart: run one graph convolution through every system and compare.

Loads a synthetic stand-in for the Cora dataset, runs the GCN graph
convolution through DGL / GNNAdvisor / FeatGraph / TLPGNN, checks that all
four produce identical outputs, and prints each system's profile.

    python examples/quickstart.py
"""

import numpy as np

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS


def main() -> None:
    config = BenchConfig(feat_dim=32)
    dataset = get_dataset("CR", config)
    graph = dataset.graph
    print(f"Loaded {dataset.spec.full_name}: {graph}")

    X = make_features(graph.num_vertices, config.feat_dim, seed=7)

    results = {}
    for name, factory in SYSTEMS.items():
        res = run_system(factory(), "gcn", dataset, config, X=X)
        if res is None:
            print(f"\n{name}: not supported on this cell")
            continue
        results[name] = res
        print()
        print(res.report.summary())

    # all systems compute the same convolution
    outputs = [r.output for r in results.values()]
    for out in outputs[1:]:
        np.testing.assert_allclose(out, outputs[0], rtol=1e-3, atol=1e-4)
    print("\nAll systems produced identical outputs.")

    best_baseline = min(
        (r.runtime_ms, n) for n, r in results.items() if n != "TLPGNN"
    )
    ours = results["TLPGNN"].runtime_ms
    print(
        f"TLPGNN: {ours:.3f} ms vs best baseline {best_baseline[1]} "
        f"({best_baseline[0]:.3f} ms) -> {best_baseline[0] / ours:.1f}x speedup"
    )


if __name__ == "__main__":
    main()
