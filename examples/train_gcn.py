"""Train a two-layer GCN node classifier end to end (manual gradients).

Generates a homophilous community graph (Cora-like shape), trains the
classifier with full-batch SGD, reports train/test accuracy, and profiles
the graph-convolution phase of the trained model's forward pass — the part
of each epoch the paper's evaluation times.

    python examples/train_gcn.py
"""

import numpy as np

from repro.bench import BenchConfig
from repro.graph import from_edge_list
from repro.kernels import TLPGNNKernel
from repro.models import GCNClassifier, build_conv


def community_graph(n=1500, classes=4, feat=16, homophily=0.85, seed=0):
    """Synthetic node-classification task with label-correlated structure."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    means = rng.standard_normal((classes, feat)) * 1.5
    X = (means[labels] + rng.standard_normal((n, feat))).astype(np.float32)
    src, dst = [], []
    for _ in range(n * 6):
        u = int(rng.integers(0, n))
        v = (
            int(rng.choice(np.flatnonzero(labels == labels[u])))
            if rng.random() < homophily
            else int(rng.integers(0, n))
        )
        if u != v:
            src.append(v)
            dst.append(u)
    return from_edge_list(src, dst, n, name="community"), X, labels


def main() -> None:
    rng = np.random.default_rng(1)
    graph, X, labels = community_graph()
    train_mask = rng.random(graph.num_vertices) < 0.3
    print(
        f"Community graph: {graph}, 4 classes, "
        f"{int(train_mask.sum())} labelled vertices"
    )

    model = GCNClassifier.init(X.shape[1], 32, 4, rng)
    before = model.accuracy(graph, X, labels, mask=~train_mask)
    losses = model.train(
        graph, X, labels, train_mask=train_mask, epochs=150, lr=0.3,
        weight_decay=1e-4, verbose=True,
    )
    after = model.accuracy(graph, X, labels, mask=~train_mask)
    print(f"\nloss {losses[0]:.3f} -> {losses[-1]:.3f}")
    print(f"test accuracy {before:.2%} -> {after:.2%}\n")

    # profile the convolution the paper times (one layer's gather phase)
    config = BenchConfig(feat_dim=32)
    hidden = np.maximum(
        (X.astype(np.float64) @ model.w1), 0.0
    ).astype(np.float32)
    workload = build_conv("gcn", graph, hidden)
    result = TLPGNNKernel().execute(workload, config.spec)
    print("per-epoch graph-convolution profile (layer 2, TLPGNN kernel):")
    print(f"  modeled GPU time : {result.timing.gpu_seconds * 1e6:.1f} us")
    print(f"  DRAM traffic     : {result.stats.total_bytes / 1e6:.2f} MB")
    print(f"  atomic ops       : {result.stats.atomic_ops}")
    print(f"  sector/request   : {result.stats.sectors_per_request:.2f}")


if __name__ == "__main__":
    main()
