"""Write your own conv: an edge-weighted max-pool convolution.

The UDF layer (``repro.mp``) makes the model zoo open: a convolution is a
``send`` term over edges plus a ``recv`` reduction, and everything
downstream — framework lowering, kernel effect tables, per-lane access
patterns, lint, the optimizer, the auto-tuner, and the serving stack — is
*derived* from the terms, never hand-declared per model.

This example registers a conv that exists nowhere in the paper:

    out[u] = max over in-edges (v -> u) of  w(v,u) * X[v]

(an edge-weighted max-pool: per-edge similarity scores gate each
neighbour's features, and the strongest message wins).  One ``register``
call makes the name runnable end to end:

    python examples/custom_conv.py
"""

import numpy as np

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS
from repro.lint import lint_plan
from repro.models.convspec import reference_aggregate
from repro.mp import (
    EdgeScalar,
    MessageSpec,
    ReduceSpec,
    build_model,
    register,
    unregister,
)
from repro.opt import AutoTuner
from repro.serve import ServableModel, ServeConfig, serve_trace

MODEL = "ewmaxpool"


def edge_scores(graph) -> np.ndarray:
    """Deterministic per-edge similarity scores (stand-in for learned
    gates or precomputed cosine similarities)."""
    rng = np.random.default_rng(42)
    return rng.uniform(0.5, 1.5, graph.num_edges).astype(np.float32)


def main() -> None:
    config = BenchConfig(feat_dim=32)
    dataset = get_dataset("CR", config)
    graph = dataset.graph
    spec = config.spec_for(dataset)
    X = make_features(graph.num_vertices, config.feat_dim, seed=config.seed)

    # -- 1. the whole model definition ---------------------------------
    register(
        MODEL,
        lambda: (
            MessageSpec(
                feature="src",
                scale=EdgeScalar(values=edge_scores(graph), name="score"),
            ),
            ReduceSpec(op="max"),
        ),
        replace=True,
    )
    model = build_model(MODEL, graph, X)
    print(f"registered: {model.signature()}")

    # the closed algebra gives exact reference semantics for free
    ref = reference_aggregate(model.workload())

    # -- 2. derived support matrix + lint ------------------------------
    # no per-model branches anywhere: each framework decides from the
    # spec's terms (a max reduce has no cuSPARSE SpMM or atomic-scatter
    # lowering, so DGL and GNNAdvisor correctly decline)
    plans = {}
    for name in sorted(SYSTEMS):
        system = SYSTEMS[name]()
        if not system.supports(MODEL):
            print(f"{name:>10}: declined (derived from the spec terms)")
            continue
        plan = system.lower(MODEL, dataset, X, spec)
        report = lint_plan(plan, spec)
        errors = [f for f in report.findings if f.severity == "error"]
        assert not errors, report.render()
        print(
            f"{name:>10}: {plan.num_kernels} kernel(s), lint clean "
            f"({len(report.findings)} note(s)) — derived effect/access "
            "tables"
        )
        plans[name] = plan

    # -- 3. execute everywhere, through the optimizer ------------------
    outputs = {}
    for name in plans:
        res = run_system(SYSTEMS[name](), MODEL, dataset, config, X=X,
                         opt="search")
        outputs[name] = res.output
        print(f"{name:>10}: {res.runtime_ms:.3f} ms (opt=search)")
    for name, out in outputs.items():
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
    print("all supporting systems match the reference max-pool semantics")

    # -- 4. auto-tune: the custom conv ties or beats the paper config --
    result = AutoTuner(budget=16, seed=config.seed).tune(
        SYSTEMS["TLPGNN"](), MODEL, dataset, X, spec
    )
    knobs = ", ".join(f"{k}={v}" for k, v in sorted(result.best_knobs.items()))
    print(
        f"tuned TLPGNN/{MODEL}: fixed {result.fixed_ms:.3f} ms -> "
        f"{result.tuned_ms:.3f} ms ({result.speedup_vs_fixed:.3f}x; {knobs})"
    )
    assert result.tuned_ms <= result.fixed_ms, "tuner must tie or win"

    # -- 5. serve it ---------------------------------------------------
    servable = ServableModel(
        SYSTEMS["TLPGNN"](), MODEL, dataset,
        feat_dim=config.feat_dim, spec=spec, seed=config.seed, opt="search",
    )
    report = serve_trace(
        servable,
        ServeConfig(
            rate_hz=0.5 / servable.offline_runtime_s,
            num_requests=64,
            max_batch=4,
            num_streams=2,
            max_concurrent=spec.max_concurrent_kernels,
            seed=config.seed,
        ),
    )
    print(report.summary())
    assert report.completed > 0 and report.arrived == (
        report.admitted + report.shed
    )
    unregister(MODEL)
    print("custom conv: registered -> linted -> optimized -> tuned -> served")


if __name__ == "__main__":
    main()
