"""Heterogeneous-graph GNN on the TLPGNN substrate (the paper's future work).

"Our designs for the kernel is generic and should be also applicable to the
GNN models on heterogeneous graphs with reasonable modifications."  The
modification turns out to be composition, not kernel surgery: an R-GCN
layer runs the unchanged fused TLPGNN kernel once per relation and mixes
the per-relation aggregates with relation-specific weights.

    python examples/hetero_rgcn.py
"""

import numpy as np

from repro.graph import random_hetero
from repro.kernels import TLPGNNKernel
from repro.models import RGCNLayer, build_rgcn_convs


def main() -> None:
    rng = np.random.default_rng(0)
    hetero = random_hetero(
        5_000,
        {"cites": 40_000, "writes": 15_000, "reviews": 8_000},
        seed=3,
    )
    print(f"Heterogeneous graph: {hetero.num_vertices:,} vertices, "
          f"{hetero.num_edges:,} edges over {len(hetero.relations)} relations")
    for name, g in hetero.relations.items():
        print(f"  {name:>8}: {g.num_edges:>7,} edges, avg degree {g.avg_degree:.1f}")

    X = rng.standard_normal((hetero.num_vertices, 32), dtype=np.float32)
    layer = RGCNLayer.init(hetero, 32, 16, rng)
    out = layer.forward(hetero, X)
    print(f"\nR-GCN forward: {X.shape} -> {out.shape}")

    # each relation's aggregation is one fused, atomic-free TLPGNN kernel
    kernel = TLPGNNKernel()
    total_ms = 0.0
    print("\nper-relation convolution profiles (one fused kernel each):")
    for name, workload in build_rgcn_convs(hetero, X).items():
        res = kernel.execute(workload)
        total_ms += res.timing.gpu_seconds * 1e3
        print(
            f"  {name:>8}: {res.timing.gpu_seconds * 1e3:7.4f} ms, "
            f"{res.stats.total_bytes / 1e6:6.2f} MB traffic, "
            f"atomics={res.stats.atomic_ops}, "
            f"sector/req={res.stats.sectors_per_request:.2f}"
        )
    print(f"\ntotal modeled conv time: {total_ms:.4f} ms "
          f"({len(hetero.relations)} kernel launches — one per relation)")


if __name__ == "__main__":
    main()
