"""Per-cell auto-tuner + the persisted store of winning configurations.

The tuner searches the compute-kernel knob space of one (dataset, model,
GPUSpec) cell — the same space Figures 10-12 of the paper sweep by hand —
with a *deterministic seeded* strategy: the candidate order is a fixed
enumeration shuffled by ``numpy.random.default_rng(seed)``, the paper's
fixed TLPGNN configuration and the as-lowered configuration are always
measured regardless of budget, and every measurement is memoized by
(plan fingerprint, knob dict), so re-running the tuner with the same
inputs replays byte-identical decisions.

Winning configurations persist in the :class:`TunedPlanStore` keyed by
:func:`tuning_key` — a content fingerprint over (system, model, graph,
feature shape, spec, dataset hints, ``TUNER_VERSION``).  ``GNNSystem.run
(opt="search")`` consults the installed store: on a hit it replays the
stored knobs through the pass pipeline instead of re-searching, and the
:class:`~repro.plan.PlanCache` key incorporates the same store entry (see
``plan_fingerprint(opt=...)``), so a warm serve deploy picks up tuned
plans transparently and an untuned cached plan is never served as a
tuned one.

Store lookups and records publish ``tuned_plan_hit`` / ``tuned_plan_miss``
/ ``plans_tuned`` counters through the installed metrics registry,
mirroring ``PlanCache.publish``.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..obs.metrics import get_registry
from ..obs.tracer import span
from ..verify import certify_plans
from .passes import PassContext, modeled_runtime_s, optimize_plan
from .rewrites import (
    _conv_index,
    _with_kernel,
    kernel_from_knobs,
    knobs_for_kernel,
    launch_grid,
    mapping_candidates,
)

__all__ = [
    "TUNER_VERSION",
    "PAPER_FIXED_KNOBS",
    "tuning_key",
    "TunedPlanStore",
    "get_tuned_store",
    "set_tuned_store",
    "TuningTrial",
    "TuningResult",
    "AutoTuner",
]

#: bump when the tuner's search space or decision rule changes — part of
#: both the tuning key and the PlanCache opt payload, so stale tuned
#: plans can never alias fresh ones
TUNER_VERSION = 1

#: the paper's fixed TLPGNN configuration (hybrid assignment, 4 warps /
#: 128-thread blocks, step 8, full-warp feature tiles) — the baseline
#: every tuned cell must tie or beat
PAPER_FIXED_KNOBS: dict[str, Any] = {
    "kernel": "tlpgnn",
    "assignment": "hybrid",
    "group_size": 32,
    "register_cache": True,
    "warps_per_block": 4,
    "step": 8,
}


def tuning_key(
    *,
    system: str,
    model: str,
    graph: Any,
    X: np.ndarray,
    spec: GPUSpec,
    dataset: Any = None,
) -> str:
    """Content sha256 identifying one tunable cell.

    Deliberately coarser than ``plan_fingerprint``: the feature *values*
    are excluded (only shape/dtype matter to a tuning decision), so one
    tuned entry covers every feature matrix of the same geometry on the
    same graph.
    """
    payload = {
        "system": system,
        "model": model,
        "spec": asdict(spec),
        "x": [list(X.shape), str(X.dtype)],
        "dataset": (
            {
                "abbr": dataset.spec.abbr,
                "scale": dataset.scale,
                "full_num_vertices": dataset.full_num_vertices,
                "full_avg_degree": dataset.full_avg_degree,
            }
            if dataset is not None
            else None
        ),
        "tuner_version": TUNER_VERSION,
    }
    h = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    h.update(graph.fingerprint().encode())
    return h.hexdigest()


class TunedPlanStore:
    """Persisted (tuning key -> winning knob dict) map with counters.

    The serving-side complement of the tuner: ``GNNSystem.run(opt=
    "search")`` looks its cell up here before falling back to a live
    search.  JSON round-trippable; entries recorded under a different
    ``TUNER_VERSION`` are dropped on load rather than replayed.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.tuned = 0
        #: version-mismatched entries skipped by the last ``load`` — they
        #: used to vanish silently; now they are counted, logged, exposed
        #: as the ``tuned_plans_dropped`` metric, and surfaced by
        #: ``repro tune --store``
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def lookup(self, key: str, **labels: str) -> dict[str, Any] | None:
        """Knob dict for a tuning key; counts and publishes the hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("tuned_plan_miss", labels)
            return None
        self.hits += 1
        self._count("tuned_plan_hit", labels)
        return dict(entry["knobs"])

    def entry(self, key: str) -> dict[str, Any] | None:
        """The full persisted entry for a key (knobs, timings, cell info,
        equivalence certificate) — no hit/miss accounting; used by the
        ``serve --certified`` preflight and the certificate tests."""
        entry = self._entries.get(key)
        return dict(entry) if entry is not None else None

    def record(
        self,
        key: str,
        *,
        knobs: dict[str, Any],
        tuned_ms: float,
        fixed_ms: float,
        cell: dict[str, Any] | None = None,
        certificate: dict[str, Any] | None = None,
    ) -> None:
        """Persist one cell's winning configuration (plus, when the tuner
        could prove it, the tuned-vs-default equivalence certificate)."""
        self._entries[key] = {
            "version": TUNER_VERSION,
            "knobs": dict(knobs),
            "tuned_ms": tuned_ms,
            "fixed_ms": fixed_ms,
            "cell": dict(cell or {}),
            "certificate": dict(certificate) if certificate else None,
        }
        self.tuned += 1
        self._count("plans_tuned", {})

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.tuned = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        doc = {"tuner_version": TUNER_VERSION, "entries": self._entries}
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "TunedPlanStore":
        store = cls()
        doc = json.loads(Path(path).read_text())
        for key, entry in doc.get("entries", {}).items():
            if entry.get("version") == TUNER_VERSION:
                store._entries[key] = entry
            else:
                store.dropped += 1
                store._count("tuned_plans_dropped", {})
        if store.dropped:
            logging.getLogger(__name__).warning(
                "tuned-plan store %s: dropped %d entry(ies) recorded under "
                "tuner version != %d (stale knobs are never replayed)",
                path, store.dropped, TUNER_VERSION,
            )
        return store

    def snapshot(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "tuned": self.tuned,
            "dropped": self.dropped,
        }

    def publish(self, registry: Any = None) -> None:
        """Publish the store's state into a metrics registry (mirrors
        ``PlanCache.publish``): the per-event counters materialized even
        at zero plus lifetime gauges."""
        registry = registry if registry is not None else get_registry()
        if registry is None:
            return
        registry.counter("tuned_plan_hit")
        registry.counter("tuned_plan_miss")
        registry.counter("plans_tuned")
        registry.counter("tuned_plans_dropped")
        snap = self.snapshot()
        registry.gauge("tuned_plan_entries").set(snap["entries"])
        registry.gauge("tuned_plan_hits").set(snap["hits"])
        registry.gauge("tuned_plan_misses").set(snap["misses"])
        registry.gauge("plans_tuned_total").set(snap["tuned"])
        registry.gauge("tuned_plans_dropped_total").set(snap["dropped"])

    # ------------------------------------------------------------------
    @staticmethod
    def _count(name: str, labels: dict[str, str]) -> None:
        registry = get_registry()
        if registry is not None:
            registry.counter(name, **labels).inc()


#: process-wide store the ``opt="search"`` run path consults
_TUNED_STORE: TunedPlanStore = TunedPlanStore()


def get_tuned_store() -> TunedPlanStore:
    """The installed process-wide tuned-plan store."""
    return _TUNED_STORE


def set_tuned_store(store: TunedPlanStore) -> TunedPlanStore:
    """Install a tuned-plan store; returns the previous one."""
    global _TUNED_STORE
    previous = _TUNED_STORE
    _TUNED_STORE = store
    return previous


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuningTrial:
    """One measured candidate configuration."""

    knobs: dict[str, Any]
    modeled_ms: float
    cached: bool = False


@dataclass
class TuningResult:
    """Outcome of tuning one (dataset, model, spec) cell."""

    system: str
    model: str
    graph: str
    key: str
    #: modeled ms of the paper's fixed TLPGNN configuration on this cell
    fixed_ms: float
    #: modeled ms of the as-lowered (default) plan
    default_ms: float
    #: modeled ms of the winning configuration
    tuned_ms: float
    best_knobs: dict[str, Any]
    trials: list[TuningTrial] = field(default_factory=list)
    #: candidate measurements actually performed (<= budget by contract)
    iterations: int = 0

    @property
    def speedup_vs_fixed(self) -> float:
        return self.fixed_ms / self.tuned_ms if self.tuned_ms else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "model": self.model,
            "graph": self.graph,
            "key": self.key,
            "fixed_ms": self.fixed_ms,
            "default_ms": self.default_ms,
            "tuned_ms": self.tuned_ms,
            "speedup_vs_fixed": self.speedup_vs_fixed,
            "best_knobs": self.best_knobs,
            "iterations": self.iterations,
            "trials": [
                {"knobs": t.knobs, "modeled_ms": t.modeled_ms}
                for t in self.trials
            ],
        }


class AutoTuner:
    """Deterministic budgeted search over one cell's knob space.

    ``budget`` bounds the number of *distinct candidate measurements*
    per cell; the memoization cache means repeated knob dicts are free.
    The paper-fixed configuration and the as-lowered configuration are
    always measured (they anchor the tie-or-win guarantee and the
    result's baselines) and count toward the budget.
    """

    def __init__(
        self,
        *,
        budget: int = 32,
        seed: int = 0,
        store: TunedPlanStore | None = None,
    ) -> None:
        if budget < 2:
            raise ValueError("budget must be >= 2 (baselines are measured)")
        self.budget = budget
        self.seed = seed
        self.store = store
        #: (plan fingerprint or graph name, canonical knob json) -> ms
        self._measurements: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def _measure(
        self, plan: Any, idx: int, kernel: Any, spec: GPUSpec
    ) -> tuple[float, bool]:
        """Modeled ms of `plan` with `kernel` rebound; memoized."""
        knobs = knobs_for_kernel(kernel) or {"kernel": kernel.name}
        cell = plan.fingerprint or f"{plan.system}/{plan.model}/{plan.graph_name}"
        memo = (cell, json.dumps(knobs, sort_keys=True, default=str))
        if memo in self._measurements:
            return self._measurements[memo], True
        cand = _with_kernel(plan, idx, kernel)
        ms = modeled_runtime_s(cand, spec) * 1e3
        self._measurements[memo] = ms
        return ms, False

    def candidates(self, workload: Any, ctx: PassContext) -> list[Any]:
        """The full knob space for one cell, deterministically ordered."""
        seen: set[str] = set()
        space: list[Any] = []
        for kernel in mapping_candidates(workload, ctx):
            for variant in (
                launch_grid(kernel)
                if hasattr(kernel, "group_size")
                else [kernel]
            ):
                tag = json.dumps(
                    knobs_for_kernel(variant), sort_keys=True, default=str
                )
                if tag not in seen:
                    seen.add(tag)
                    space.append(variant)
        return space

    # ------------------------------------------------------------------
    def tune(
        self,
        system: Any,
        model: str,
        data: Any,
        X: np.ndarray,
        spec: GPUSpec = V100,
    ) -> TuningResult:
        """Search one cell; records the winner in the tuned-plan store."""
        plan = system.lower(model, data, X, spec)
        dataset = data if hasattr(data, "full_num_vertices") else None
        graph = getattr(data, "graph", data)
        # the searchable baseline: safe rewrites applied first, so the
        # tuner searches mappings of the cleaned-up pipeline
        plan, _ = optimize_plan(plan, spec, level="safe", dataset=dataset)
        key = tuning_key(
            system=system.name, model=model, graph=graph, X=X,
            spec=spec, dataset=dataset,
        )
        default_knobs = (
            knobs_for_kernel(plan.compute.kernel)
            if plan.compute.kind == "kernel"
            else None
        )
        idx = _conv_index(plan)
        with span("opt.tune", system=system.name, model=model,
                  graph=graph.name):
            result = self._search(
                plan, idx, key, spec, dataset, default_knobs
            )
        store = self.store if self.store is not None else get_tuned_store()
        # translation-validate the winner before persisting it: rebuild
        # the tuned plan exactly the way opt="search" will replay it and
        # certify it against the safe-optimized default.  A non-equivalent
        # winner is a tuner bug — refuse to persist knobs that change
        # semantics rather than record them uncertified.
        tuned_plan = plan
        if idx is not None:
            best_kernel = kernel_from_knobs(result.best_knobs, dataset=dataset)
            if best_kernel is not None:
                tuned_plan = _with_kernel(plan, idx, best_kernel)
        certification = certify_plans(tuned_plan, plan)
        if tuned_plan is not plan and not certification.certified:
            raise RuntimeError(
                f"tuner produced a non-equivalent plan for {key[:12]}..: "
                f"{certification.decision.render()}"
            )
        certificate = (
            certification.certificate.as_dict()
            if certification.certificate is not None
            else None
        )
        store.record(
            key,
            knobs=result.best_knobs,
            tuned_ms=result.tuned_ms,
            fixed_ms=result.fixed_ms,
            cell={
                "system": result.system,
                "model": result.model,
                "graph": result.graph,
                "x_shape": list(X.shape),
            },
            certificate=certificate,
        )
        return result

    def _search(
        self,
        plan: Any,
        idx: int | None,
        key: str,
        spec: GPUSpec,
        dataset: Any,
        default_knobs: dict[str, Any] | None,
    ) -> TuningResult:
        default_ms = modeled_runtime_s(plan, spec) * 1e3
        trials: list[TuningTrial] = []
        iterations = 0

        if idx is None:
            # no rebindable compute kernel (reference-computed baseline
            # pipelines): the safe-optimized default is the decision
            best = default_knobs or {"kernel": "reference"}
            return TuningResult(
                system=plan.system, model=plan.model, graph=plan.graph_name,
                key=key, fixed_ms=default_ms, default_ms=default_ms,
                tuned_ms=default_ms, best_knobs=best,
                trials=trials, iterations=0,
            )

        ctx = PassContext(
            spec=spec, dataset=dataset, budget=self.budget, seed=self.seed
        )
        workload = plan.ops[idx].workload

        def measure(kernel: Any) -> float:
            nonlocal iterations
            ms, cached = self._measure(plan, idx, kernel, spec)
            if not cached:
                iterations += 1
            trials.append(
                TuningTrial(
                    knobs=knobs_for_kernel(kernel) or {},
                    modeled_ms=ms,
                    cached=cached,
                )
            )
            return ms

        # anchors first: the paper-fixed config and the as-lowered config
        fixed_kernel = kernel_from_knobs(PAPER_FIXED_KNOBS, dataset=dataset)
        fixed_ms = measure(fixed_kernel)
        best_knobs, best_ms = dict(PAPER_FIXED_KNOBS), fixed_ms
        if default_knobs and default_knobs != PAPER_FIXED_KNOBS:
            default_kernel = kernel_from_knobs(default_knobs, dataset=dataset)
            if default_kernel is not None:
                ms = measure(default_kernel)
                if ms < best_ms:
                    best_knobs, best_ms = dict(default_knobs), ms

        space = [
            k
            for k in self.candidates(workload, ctx)
            if knobs_for_kernel(k) not in (PAPER_FIXED_KNOBS, default_knobs)
        ]
        order = np.random.default_rng(self.seed).permutation(len(space))
        for j in order:
            if iterations >= self.budget:
                break
            kernel = space[int(j)]
            ms = measure(kernel)
            if ms < best_ms:  # strict: ties keep the earlier candidate
                best_knobs, best_ms = knobs_for_kernel(kernel) or {}, ms

        return TuningResult(
            system=plan.system, model=plan.model, graph=plan.graph_name,
            key=key, fixed_ms=fixed_ms, default_ms=default_ms,
            tuned_ms=best_ms, best_knobs=best_knobs,
            trials=trials, iterations=iterations,
        )
