"""repro.opt: the optimize stage between lower and execute.

A pass pipeline over the :class:`~repro.plan.ExecutionPlan` IR (dead-
intermediate elimination, elementwise fusion, workload-mapping and
launch-geometry selection) whose legality comes from the ``repro.lint``
effect tables and whose profit comes from the shared ``cost_plan``
model, plus a deterministic per-cell auto-tuner with a persisted
:class:`TunedPlanStore` of winning configurations.  Entry points:
``GNNSystem.run(opt=...)``, ``repro opt`` / ``repro tune`` on the CLI,
and :func:`optimize_plan` / :class:`AutoTuner` as a library.
"""

from .agreement import microsim_cycles, rank_agreement
from .passes import (
    OPT_LEVELS,
    IllegalRewriteError,
    PassContext,
    PassPipeline,
    PassRecord,
    PlanPass,
    default_pipeline,
    error_keys,
    modeled_runtime_s,
    optimize_plan,
)
from .rewrites import (
    ApplyTunedKnobs,
    DeadIntermediateElimination,
    ElementwiseFusion,
    LaunchTuning,
    WorkloadMappingSelection,
    kernel_from_knobs,
    knobs_for_kernel,
)
from .tuner import (
    PAPER_FIXED_KNOBS,
    TUNER_VERSION,
    AutoTuner,
    TunedPlanStore,
    TuningResult,
    TuningTrial,
    get_tuned_store,
    set_tuned_store,
    tuning_key,
)

__all__ = [
    "OPT_LEVELS",
    "IllegalRewriteError",
    "PassContext",
    "PassPipeline",
    "PassRecord",
    "PlanPass",
    "default_pipeline",
    "error_keys",
    "modeled_runtime_s",
    "optimize_plan",
    "ApplyTunedKnobs",
    "DeadIntermediateElimination",
    "ElementwiseFusion",
    "LaunchTuning",
    "WorkloadMappingSelection",
    "kernel_from_knobs",
    "knobs_for_kernel",
    "PAPER_FIXED_KNOBS",
    "TUNER_VERSION",
    "AutoTuner",
    "TunedPlanStore",
    "TuningResult",
    "TuningTrial",
    "get_tuned_store",
    "set_tuned_store",
    "tuning_key",
    "microsim_cycles",
    "rank_agreement",
]
