"""Cost-model vs. micro-simulator agreement on tuner decisions.

The optimizer ranks candidate kernels with the analytical cost model
(:func:`~repro.opt.passes.modeled_runtime_s`).  The detailed-simulator
literature (PAPERS.md) warns that analytical models can mis-rank close
candidates, so this module provides the independent check the agreement
test suite runs: replay each candidate through the exact
:class:`~repro.gpusim.microsim.MicroSim` (warp-by-warp transaction
counting) and compare the two rankings on a small grid of cells.

Divergent cells are not necessarily bugs — the two models intentionally
weight latency-hiding differently — so, gSuite-style, known divergences
live in a committed tolerance file (``tests/data/opt_tolerance.json``)
and the test fails only on *new* divergence.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from ..gpusim.config import V100, GPUSpec
from ..gpusim.microsim import MicroSim
from .passes import modeled_runtime_s
from .rewrites import _conv_index, _with_kernel

__all__ = ["microsim_cycles", "rank_agreement"]


def microsim_cycles(kernel: Any, workload: Any, spec: GPUSpec = V100) -> float:
    """Exact-replay cost proxy for one kernel launch (cycles).

    Replays the kernel warp by warp through the micro-simulator and
    folds the transaction counters into a single scalar with the
    device's own bandwidth/issue weights: memory sectors cost their
    DRAM service time, instructions their issue slots — the same two
    axes the analytical roofline uses, but fed by exact counts.

    Raises :class:`NotImplementedError` for kernels without a
    ``trace`` replay.
    """
    sim = MicroSim(spec=spec)
    kernel.trace(workload, sim)
    sectors = sim.load_sectors + sim.store_sectors + sim.atomic_sectors
    mem_s = sectors * spec.sector_bytes / spec.mem_bandwidth_bytes_per_s
    issue_s = sim.instructions / (
        spec.num_sms * spec.issue_slots_per_sm * spec.clock_hz
    )
    atomic_s = sim.atomic_ops / (spec.atomic_ops_per_cycle * spec.clock_hz)
    return max(mem_s, issue_s, atomic_s)


def rank_agreement(
    plan: Any, kernels: Iterable[Any], spec: GPUSpec = V100
) -> dict[str, Any]:
    """Compare cost-model and micro-sim winner over candidate kernels.

    Returns a dict with both rankings (kernel names, cheapest first) and
    ``agree`` — whether the two models pick the same *winner*.  Ranking
    of non-winning candidates is allowed to differ: the tuner only acts
    on the argmin.
    """
    idx = _conv_index(plan)
    if idx is None:
        raise ValueError("plan has no rebindable compute kernel")
    workload = plan.ops[idx].workload
    cost_scores: list[tuple[float, str]] = []
    sim_scores: list[tuple[float, str]] = []
    for kernel in kernels:
        cost_scores.append(
            (modeled_runtime_s(_with_kernel(plan, idx, kernel), spec),
             kernel.name)
        )
        sim_scores.append((microsim_cycles(kernel, workload, spec), kernel.name))
    cost_rank = [name for _, name in sorted(cost_scores)]
    sim_rank = [name for _, name in sorted(sim_scores)]
    return {
        "cost_rank": cost_rank,
        "sim_rank": sim_rank,
        "agree": cost_rank[0] == sim_rank[0],
    }
