"""Pass framework: legality-checked, profit-guided plan rewrites.

A :class:`PlanPass` is one rewrite rule over the
:class:`~repro.plan.ExecutionPlan` IR.  Passes never mutate their input;
they return a rewritten plan (or ``None`` when they do not apply).  The
:class:`PassPipeline` drives them with two invariants the optimizer
never relaxes:

* **Legality** — every accepted rewrite must re-lint clean: the full
  :func:`repro.lint.lint_plan` battery runs on the rewritten plan and the
  pipeline *raises* :class:`IllegalRewriteError` (it does not silently
  drop the rewrite) if the transformation introduced any ERROR-severity
  finding that the input plan did not already carry.  The effect tables
  every op declares (reads/writes/atomics over named buffers) are the
  dependence information the individual passes reason from; the re-lint
  is the independent check that their reasoning was sound.
* **Profit** — every accepted rewrite must not regress the shared cost
  model: :func:`modeled_runtime_s` (the same ``analyze_plan`` →
  ``time_parts`` → ``cost_plan`` stack ``GNNSystem.run`` bills with)
  scores the plan before and after, and unprofitable rewrites are
  skipped (recorded, not raised — a pass that found nothing better is
  normal).

Numeric safety is structural: passes only delete ops whose results are
never consumed, merge ops whose composition is associative by their
effect tables, or swap the compute kernel for another
:class:`~repro.kernels.base.ConvKernel` — and every ConvKernel's
``run()`` is bit-exact against the shared functional reference, so the
executed output is byte-identical by construction.  The golden-cell
tests assert exactly that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from collections.abc import Iterable
from typing import Any

from ..gpusim.config import GPUSpec
from ..lint import Finding, lint_plan
from ..obs.tracer import span
from ..plan.analyzer import analyze_plan, cost_plan, time_parts
from ..plan.ir import ExecutionPlan
from ..verify import decide_equivalence, normalize_plan

__all__ = [
    "OPT_LEVELS",
    "PassContext",
    "PassRecord",
    "PlanPass",
    "PassPipeline",
    "IllegalRewriteError",
    "modeled_runtime_s",
    "error_keys",
    "optimize_plan",
    "default_pipeline",
]

#: optimizer levels ``GNNSystem.run(opt=...)`` accepts, in increasing
#: aggressiveness: "off" = lower-and-run (the pre-optimizer behavior),
#: "safe" = rewrites that need no search (dead-intermediate elimination +
#: elementwise fusion), "search" = "safe" plus workload-mapping and
#: launch-geometry selection over the kernel knob space.
OPT_LEVELS = ("off", "safe", "search")


class IllegalRewriteError(RuntimeError):
    """A pass produced a plan the gates reject: new ERROR-severity lint
    findings, or a dataflow normal form diverging from the input's
    (EQ001/EQ002 — the translation-validation gate).

    Raised — never swallowed — so a buggy rewrite rule fails loudly at
    rewrite time instead of shipping a plan that computes something else.
    """

    def __init__(
        self,
        pass_name: str,
        plan: ExecutionPlan,
        findings: Iterable[Finding],
    ) -> None:
        self.pass_name = pass_name
        self.findings = list(findings)
        lines = "\n".join(f"  {f.render()}" for f in self.findings)
        super().__init__(
            f"pass {pass_name!r} introduced {len(self.findings)} new "
            f"error-severity finding(s) on {plan.system}/{plan.model}:\n{lines}"
        )


def modeled_runtime_s(plan: ExecutionPlan, spec: GPUSpec) -> float:
    """Score a plan with the shared cost model (seconds, end to end).

    This is the optimizer's single profit metric — identical to what
    ``GNNSystem.run`` reports, including per-kernel dispatch overhead and
    one-off preprocessing, so "fewer launches" is rewarded exactly as
    much as the serving path would observe.
    """
    pipeline, parts = analyze_plan(plan, spec)
    timings = time_parts(parts, spec)
    timing = cost_plan(
        pipeline, timings, spec, dispatch_seconds=plan.dispatch_seconds
    )
    return timing.total_seconds


def error_keys(plan: ExecutionPlan, spec: GPUSpec) -> set[tuple[str, str, str]]:
    """ERROR-severity finding keys of a plan's full lint report."""
    return {f.key() for f in lint_plan(plan, spec).errors}


@dataclass(frozen=True)
class PassContext:
    """Read-only environment a pass sees: device, dataset hints, budget."""

    spec: GPUSpec
    #: the Dataset being lowered (or None) — carries the full-size hints
    #: TLPGNN's hybrid heuristic and the tuner key use
    dataset: Any = None
    #: max candidate plans a searching pass may score
    budget: int = 16
    #: seed for any candidate-order shuffling (determinism contract)
    seed: int = 0
    #: tuned knob dict from the TunedPlanStore (drives ApplyTunedKnobs)
    tuned: dict[str, Any] | None = None


@dataclass(frozen=True)
class PassRecord:
    """What one pass did to one plan (the ``repro opt`` report rows)."""

    name: str
    applied: bool
    before_ms: float
    after_ms: float
    detail: str = ""

    def render(self) -> str:
        verdict = "applied" if self.applied else "skipped"
        line = (
            f"{self.name}: {verdict} "
            f"({self.before_ms:.3f} ms -> {self.after_ms:.3f} ms)"
        )
        return f"{line} [{self.detail}]" if self.detail else line


class PlanPass(ABC):
    """One rewrite rule. ``apply`` returns a new plan or None (no match)."""

    name: str = "pass"

    @abstractmethod
    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        """Rewrite ``plan`` or return None when the pass does not apply."""


@dataclass
class PassPipeline:
    """Ordered passes + the legality/profit gates around each rewrite."""

    passes: list[PlanPass] = field(default_factory=list)
    #: re-lint every rewrite and raise on new errors (satellite contract);
    #: only tests exploring deliberately-broken plans turn this off
    verify: bool = True

    def run(
        self,
        plan: ExecutionPlan,
        spec: GPUSpec,
        *,
        dataset: Any = None,
        budget: int = 16,
        seed: int = 0,
        tuned: dict[str, Any] | None = None,
    ) -> tuple[ExecutionPlan, list[PassRecord]]:
        """Run every pass in order; returns (final plan, per-pass records)."""
        if not self.passes:
            return plan, []
        ctx = PassContext(
            spec=spec, dataset=dataset, budget=budget, seed=seed, tuned=tuned
        )
        baseline_errors = error_keys(plan, spec) if self.verify else set()
        # the translation-validation gate's anchor: every accepted rewrite
        # must keep the input plan's dataflow normal form (a baseline that
        # is itself unprovable — EQ001 on the *input* — is grandfathered,
        # matching the lint gate's baseline_errors suppression)
        baseline_nf = normalize_plan(plan) if self.verify else None
        current = plan
        current_ms = modeled_runtime_s(current, spec) * 1e3
        records: list[PassRecord] = []
        for p in self.passes:
            with span("opt.pass", rule=p.name):
                rewritten = p.apply(current, ctx)
            if rewritten is None:
                records.append(
                    PassRecord(p.name, False, current_ms, current_ms, "no match")
                )
                continue
            if self.verify:
                new = [
                    f
                    for f in lint_plan(rewritten, spec).errors
                    if f.key() not in baseline_errors
                ]
                if new:
                    raise IllegalRewriteError(p.name, rewritten, new)
            eq_note = ""
            if baseline_nf is not None and baseline_nf.provable:
                decision = decide_equivalence(
                    baseline_nf, normalize_plan(rewritten)
                )
                if not decision.equivalent:
                    # mismatch (EQ002) and unprovable (EQ001) both raise:
                    # the optimizer treats "cannot prove" as "wrong"
                    raise IllegalRewriteError(
                        p.name, rewritten, decision.findings
                    )
                if decision.verdict == "equivalent-unordered":
                    eq_note = "EQ003 reduction order"
            after_ms = modeled_runtime_s(rewritten, spec) * 1e3
            if after_ms > current_ms * (1.0 + 1e-12):
                records.append(
                    PassRecord(
                        p.name, False, current_ms, after_ms, "unprofitable"
                    )
                )
                continue
            records.append(
                PassRecord(p.name, True, current_ms, after_ms, eq_note)
            )
            current = rewritten
            current_ms = after_ms
        return current, records


def default_pipeline(
    level: str = "safe", *, tuned: dict[str, Any] | None = None
) -> PassPipeline:
    """The standard pipeline for an optimizer level.

    At ``"search"`` with a tuned knob dict available, the expensive
    mapping/launch searches are replaced by :class:`~repro.opt.rewrites.
    ApplyTunedKnobs` — the warm-deploy path that replays a persisted
    tuner decision without re-searching.
    """
    # local import: rewrites imports this module for the base classes
    from .rewrites import (
        ApplyTunedKnobs,
        DeadIntermediateElimination,
        ElementwiseFusion,
        LaunchTuning,
        WorkloadMappingSelection,
    )

    if level not in OPT_LEVELS:
        raise ValueError(f"opt level must be one of {OPT_LEVELS}: {level!r}")
    if level == "off":
        return PassPipeline(passes=[])
    passes: list[PlanPass] = [
        DeadIntermediateElimination(),
        ElementwiseFusion(),
    ]
    if level == "search":
        if tuned:
            passes.append(ApplyTunedKnobs())
        else:
            passes.extend([WorkloadMappingSelection(), LaunchTuning()])
    return PassPipeline(passes=passes)


def optimize_plan(
    plan: ExecutionPlan,
    spec: GPUSpec,
    *,
    level: str = "safe",
    dataset: Any = None,
    budget: int = 16,
    seed: int = 0,
    tuned: dict[str, Any] | None = None,
) -> tuple[ExecutionPlan, list[PassRecord]]:
    """Run the default pass pipeline for ``level`` over one plan."""
    pipeline = default_pipeline(level, tuned=tuned)
    if not pipeline.passes:
        return plan, []
    with span("opt.pipeline", level=level, plan=plan.pipeline_name):
        optimized, records = pipeline.run(
            plan, spec, dataset=dataset, budget=budget, seed=seed, tuned=tuned
        )
    # the rewritten plan describes the same cell: keep the content
    # fingerprint (the cache layer adds the opt level to the key itself)
    if optimized is not plan and optimized.fingerprint is None:
        optimized = replace(optimized, fingerprint=plan.fingerprint)
    return optimized, records
