"""The concrete optimizer passes over the ExecutionPlan IR.

Four rewrite families, in the order the default pipeline runs them:

* :class:`DeadIntermediateElimination` — delete modeled ops whose only
  outputs are ``tmp:*`` transients no other op reads (DGL's ``csr_check``
  / ``fill`` launches).  Legality comes straight from the effect tables:
  a buffer is eliminable iff it is transient, written exclusively (no
  atomic merge), and absent from every other op's read set.
* :class:`ElementwiseFusion` — merge adjacent producer/consumer pairs of
  streaming elementwise launches whose only link is a single transient.
  The fused op keeps the intermediate in registers: its counter model
  drops the producer's stores and the consumer's re-loads of that buffer
  and stops materializing its workspace.
* :class:`WorkloadMappingSelection` — re-bind the plan's compute kernel
  across the level-1 mapping space the paper sweeps by hand (warp-per-
  vertex TLPGNN variants, thread-per-vertex, CTA-per-vertex, warp-per-
  edge-chunk, edge-centric atomics), scoring each full plan with the
  shared cost model.  Safe because every ConvKernel's ``run()`` is
  bit-exact against the shared reference.
* :class:`LaunchTuning` — grid search over the surviving TLPGNN kernel's
  launch geometry: warps-per-block (thread count), ``step`` (software-
  pool chunk), and ``group_size`` (feature tiling — Figure 11's knob).
* :class:`ApplyTunedKnobs` — replay a persisted tuner decision (a knob
  dict from the :class:`~repro.opt.tuner.TunedPlanStore`) without
  searching; the warm-deploy fast path.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace
from typing import Any

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import KernelStats, LaunchConfig
from ..gpusim.scheduler import ScheduleResult
from ..kernels import (
    EdgeCentricKernel,
    EdgeParallelWarpKernel,
    PullCTAKernel,
    PullThreadKernel,
    TLPGNNKernel,
)
from ..lint.access import KernelAccess
from ..lint.effects import LaunchEnvelope, effect_table, is_transient
from ..plan.ir import ComputeStep, ExecutionPlan, KernelOp
from .passes import PassContext, PlanPass, modeled_runtime_s

__all__ = [
    "DeadIntermediateElimination",
    "ElementwiseFusion",
    "WorkloadMappingSelection",
    "LaunchTuning",
    "ApplyTunedKnobs",
    "kernel_from_knobs",
    "knobs_for_kernel",
]


# ----------------------------------------------------------------------
# knob dict <-> ConvKernel (the tuner's persistence vocabulary)
# ----------------------------------------------------------------------
def knobs_for_kernel(kernel: Any) -> dict[str, Any] | None:
    """Serializable knob dict identifying a compute kernel configuration."""
    if isinstance(kernel, TLPGNNKernel):
        return {
            "kernel": "tlpgnn",
            "assignment": kernel.assignment,
            "group_size": kernel.group_size,
            "register_cache": kernel.register_cache,
            "warps_per_block": kernel.warps_per_block,
            "step": kernel.step,
        }
    if isinstance(kernel, PullCTAKernel):
        return {"kernel": "pull_cta", "warps_per_block": kernel.warps_per_block}
    if isinstance(kernel, PullThreadKernel):
        return {"kernel": "pull_thread"}
    if isinstance(kernel, EdgeParallelWarpKernel):
        return {"kernel": "edge_parallel_warp"}
    if isinstance(kernel, EdgeCentricKernel):
        return {"kernel": "edge_centric"}
    return None


def kernel_from_knobs(knobs: Mapping[str, Any], *, dataset: Any = None) -> Any:
    """Rebuild a ConvKernel from a persisted knob dict (None = unknown)."""
    kind = knobs.get("kernel")
    if kind == "tlpgnn":
        hints: dict[str, Any] = {}
        if dataset is not None:
            hints = {
                "hint_num_vertices": dataset.full_num_vertices,
                "hint_avg_degree": dataset.full_avg_degree,
            }
        return TLPGNNKernel(
            assignment=knobs.get("assignment", "hybrid"),
            group_size=knobs.get("group_size", 32),
            register_cache=knobs.get("register_cache", True),
            warps_per_block=knobs.get("warps_per_block", 4),
            step=knobs.get("step", 8),
            **hints,
        )
    if kind == "pull_cta":
        return PullCTAKernel(warps_per_block=knobs.get("warps_per_block", 4))
    if kind == "pull_thread":
        return PullThreadKernel()
    if kind == "edge_parallel_warp":
        return EdgeParallelWarpKernel()
    if kind == "edge_centric":
        return EdgeCentricKernel()
    return None


def _conv_index(plan: ExecutionPlan) -> int | None:
    """Index of the plan's single conv op bound to the compute kernel.

    Mapping passes only apply to plans whose numeric output is one
    ConvKernel launch (``compute.kind == "kernel"``) with exactly one
    conv op in the pipeline carrying that kernel — the TLPGNN-shaped
    plans.  Multi-conv or reference-computed pipelines are left alone.
    """
    if plan.compute.kind != "kernel" or plan.compute.kernel is None:
        return None
    idx = [i for i, op in enumerate(plan.ops) if op.kind == "conv"]
    if len(idx) != 1:
        return None
    if plan.ops[idx[0]].kernel is not plan.compute.kernel:
        return None
    return idx[0]


def _with_kernel(plan: ExecutionPlan, idx: int, kernel: Any) -> ExecutionPlan:
    """Rebind the conv op at ``idx`` and the compute step to ``kernel``."""
    old = plan.ops[idx]
    new_op = KernelOp(
        name=kernel.name,
        kind="conv",
        kernel=kernel,
        workload=old.workload,
        balance=getattr(kernel, "assignment", None),
        fused=old.fused,
    )
    ops = list(plan.ops)
    ops[idx] = new_op
    compute = replace(plan.compute, kernel=kernel)
    return replace(plan, ops=ops, compute=compute)


# ----------------------------------------------------------------------
# dead-intermediate elimination
# ----------------------------------------------------------------------
class DeadIntermediateElimination(PlanPass):
    """Remove modeled ops whose only effect is writing dead transients.

    Legality comes from the whole-plan liveness analysis
    (:func:`repro.lint.dataflow.dead_transients`): a transient is dead
    when its live range ends at its own definition — nothing consumes it
    through an effect read, an atomic RMW, a read-role access pattern,
    or as the index buffer behind an indirection.  A launch is removable
    when every buffer it mutates is an exclusive plain write to a dead
    transient.

    Fixpoint: removing one dead launch can orphan another's output, so
    liveness is recomputed over the shrunken plan until nothing is dead.
    Conservative by construction — an op survives if it has no effect
    table, performs atomics, or writes any non-transient buffer.
    """

    name = "dead-intermediate-elimination"

    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        from ..lint.dataflow import dead_transients

        current = plan
        ops = list(plan.ops)
        changed = False
        while True:
            dead_bufs = dead_transients(current)
            dead = None
            for i, op in enumerate(ops):
                if op.kind != "modeled" or op.effects is None:
                    continue
                written = [
                    b for b in op.effects.buffers if b.mode != "read"
                ]
                if not written:
                    continue
                if all(
                    b.mode == "write"
                    and is_transient(b.buffer)
                    and b.buffer in dead_bufs
                    for b in written
                ):
                    dead = i
                    break
            if dead is None:
                break
            del ops[dead]
            changed = True
            current = replace(current, ops=list(ops))
        if not changed:
            return None
        return replace(plan, ops=ops)


# ----------------------------------------------------------------------
# elementwise fusion
# ----------------------------------------------------------------------
def _merge_launch(a: LaunchConfig, b: LaunchConfig) -> LaunchConfig:
    return LaunchConfig(
        num_blocks=max(a.num_blocks, b.num_blocks),
        threads_per_block=max(a.threads_per_block, b.threads_per_block),
        regs_per_thread=max(a.regs_per_thread, b.regs_per_thread),
        shared_mem_per_block=max(
            a.shared_mem_per_block, b.shared_mem_per_block
        ),
    )


def _merge_stats(
    name: str, sa: KernelStats, sb: KernelStats
) -> KernelStats:
    """Counters of the fused launch: the transient stays in registers.

    Every store of the producer targets the fused-away buffer (that is
    the legality condition), so its stores vanish outright; the
    consumer's re-loads of that buffer vanish up to what the producer
    actually wrote.  Work (instructions, warp cycles) is conserved.
    """
    saved_load = min(sb.load_sectors, sa.store_sectors)
    saved_l1_load = min(sb.l1_load_sectors, sa.l1_store_sectors)
    saved_load_req = min(sb.load_requests, sa.store_requests)
    load_sectors = sa.load_sectors + sb.load_sectors - saved_load
    load_requests = sa.load_requests + sb.load_requests - saved_load_req
    if load_sectors > 0:
        load_requests = max(load_requests, 1)
    return KernelStats(
        name=name,
        launch=_merge_launch(sa.launch, sb.launch),
        load_sectors=load_sectors,
        store_sectors=sb.store_sectors,
        l1_load_sectors=max(
            sa.l1_load_sectors + sb.l1_load_sectors - saved_l1_load, 0
        ),
        l1_store_sectors=sb.l1_store_sectors,
        load_requests=load_requests,
        store_requests=sb.store_requests,
        instructions=sa.instructions + sb.instructions,
        warp_cycles=np.concatenate([sa.warp_cycles, sb.warp_cycles]),
        divergent_lanes=sa.divergent_lanes + sb.divergent_lanes,
        # the producer's workspace WAS the transient — never materialized
        workspace_bytes=sb.workspace_bytes,
    )


def _merge_sched(a: ScheduleResult, b: ScheduleResult) -> ScheduleResult:
    return ScheduleResult(
        makespan_cycles=a.makespan_cycles + b.makespan_cycles,
        busy_warp_cycles=a.busy_warp_cycles + b.busy_warp_cycles,
        overhead_cycles=a.overhead_cycles + b.overhead_cycles,
        num_units=max(a.num_units, b.num_units),
        policy="fused",
    )


def _merge_access(
    a: KernelAccess, b: KernelAccess, t: str
) -> KernelAccess:
    patterns = tuple(p for p in a.patterns if p.buffer != t) + tuple(
        p for p in b.patterns if p.buffer != t
    )
    shapes = {k: v for k, v in {**a.shapes, **b.shapes}.items() if k != t}
    ranges = {
        k: v for k, v in {**a.value_ranges, **b.value_ranges}.items() if k != t
    }
    return KernelAccess(
        patterns=patterns,
        shapes=shapes,
        unit_rows=max(a.unit_rows, b.unit_rows),
        value_ranges=ranges,
    )


class ElementwiseFusion(PlanPass):
    """Fuse adjacent modeled launches linked by exactly one transient.

    Legality (all from the declared effect tables):

    * both ops are ``modeled`` with effect + access tables and no atomics;
    * the producer writes exactly one buffer, a ``tmp:*`` transient;
    * the consumer reads it, and no *other* op in the plan reads or
      writes it (including as a gather index buffer);
    * neither op consumes host randomness.

    The fused op is one launch: the profit is a whole dispatch + launch
    round-trip plus the eliminated store/load traffic of the transient.
    Fixpoint over adjacent pairs, so a chain of k elementwise launches
    collapses into one.
    """

    name = "elementwise-fusion"

    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        ops = list(plan.ops)
        changed = False
        i = 0
        while i < len(ops) - 1:
            fused = self._try_fuse(ops, i)
            if fused is not None:
                ops[i : i + 2] = [fused]
                changed = True
                i = max(i - 1, 0)  # the fused op may chain with its producer
            else:
                i += 1
        if not changed:
            return None
        return replace(plan, ops=ops)

    @staticmethod
    def _try_fuse(ops: list[KernelOp], i: int) -> KernelOp | None:
        a, b = ops[i], ops[i + 1]
        ae, aa = a.effects, a.access
        be, ba = b.effects, b.access
        if (
            a.kind != "modeled"
            or b.kind != "modeled"
            or a.analyze_fn is None
            or b.analyze_fn is None
            or ae is None
            or be is None
            or aa is None
            or ba is None
            or ae.atomics
            or be.atomics
            or ae.reads_rng
            or be.reads_rng
        ):
            return None
        if len(ae.writes) != 1:
            return None
        t = ae.writes[0]
        if not is_transient(t) or t in ae.reads:
            return None
        # the producer must write t unit-owned/streamed — an indirect
        # (scattered) write breaks the unit alignment register fusion needs
        if any(
            p.buffer == t and p.row == "indirect" for p in aa.patterns
        ):
            return None
        if t not in be.reads or t in be.writes:
            return None
        # the consumer must read t *directly* (its own rows, streamed):
        # a gathered/indirect read of t needs other units' producer rows,
        # which cannot stay in registers across the fusion boundary; nor
        # may t back an indirection as the index buffer itself
        for p in ba.patterns:
            if getattr(p, "via", None) == t:
                return None
            if p.buffer == t and p.row == "indirect":
                return None
        for j, other in enumerate(ops):
            if j in (i, i + 1) or other.effects is None:
                continue
            eff = other.effects
            if t in eff.reads or t in eff.writes or t in eff.atomics:
                return None
            if other.access is not None and any(
                getattr(p, "via", None) == t for p in other.access.patterns
            ):
                return None
        name = f"{a.name}+{b.name}"

        def analyze(
            spec: GPUSpec,
            _a: KernelOp = a,
            _b: KernelOp = b,
            _name: str = name,
        ) -> tuple[KernelStats, ScheduleResult]:
            sa, scha = _a.analyze(spec)
            sb, schb = _b.analyze(spec)
            return _merge_stats(_name, sa, sb), _merge_sched(scha, schb)

        reads = tuple(
            dict.fromkeys(
                list(ae.reads) + [r for r in be.reads if r != t]
            )
        )
        ea, eb = ae.launch, be.launch
        if ea is not None and eb is not None:
            launch = LaunchEnvelope(
                threads_per_block=max(
                    ea.threads_per_block, eb.threads_per_block
                ),
                regs_per_thread=max(ea.regs_per_thread, eb.regs_per_thread),
                shared_mem_per_block=max(
                    ea.shared_mem_per_block, eb.shared_mem_per_block
                ),
            )
        else:
            launch = ea or eb
        return KernelOp(
            name=name,
            kind="modeled",
            analyze_fn=analyze,
            balance=b.balance or a.balance,
            fused=True,
            effects=effect_table(
                reads=reads, writes=be.writes, launch=launch
            ),
            access=_merge_access(aa, ba, t),
        )


# ----------------------------------------------------------------------
# workload-mapping selection (level-1 parallelism)
# ----------------------------------------------------------------------
def _tlpgnn_hints(ctx: PassContext) -> dict[str, Any]:
    if ctx.dataset is None:
        return {}
    return {
        "hint_num_vertices": ctx.dataset.full_num_vertices,
        "hint_avg_degree": ctx.dataset.full_avg_degree,
    }


def mapping_candidates(workload: Any, ctx: PassContext) -> list[Any]:
    """The level-1 mapping space, filtered by workload support.

    NeighborGroupKernel is deliberately absent: it needs the host-side
    group table GNNAdvisor's lowering builds, so it is not a drop-in
    rebinding of an already-lowered plan.
    """
    hints = _tlpgnn_hints(ctx)
    cands = [
        TLPGNNKernel(assignment="hybrid", **hints),
        TLPGNNKernel(assignment="hardware"),
        PullCTAKernel(warps_per_block=4),
        PullCTAKernel(warps_per_block=8),
        PullThreadKernel(),
        EdgeParallelWarpKernel(),
        EdgeCentricKernel(),
    ]
    return [k for k in cands if k.supports(workload)]


class WorkloadMappingSelection(PlanPass):
    """Pick the cheapest level-1 mapping for the plan's compute kernel."""

    name = "workload-mapping"

    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        idx = _conv_index(plan)
        if idx is None:
            return None
        workload = plan.ops[idx].workload
        current = plan.compute.kernel
        best_plan: ExecutionPlan | None = None
        best_ms = modeled_runtime_s(plan, ctx.spec)
        for kernel in mapping_candidates(workload, ctx)[: max(ctx.budget, 1)]:
            if knobs_for_kernel(kernel) == knobs_for_kernel(current):
                continue
            cand = _with_kernel(plan, idx, kernel)
            ms = modeled_runtime_s(cand, ctx.spec)
            if ms < best_ms:  # strict: ties keep the incumbent mapping
                best_plan, best_ms = cand, ms
        return best_plan


# ----------------------------------------------------------------------
# launch tuning (thread count + feature tiling)
# ----------------------------------------------------------------------
#: the launch-geometry grid the paper sweeps in Figures 10-12
WARPS_PER_BLOCK_GRID = (2, 4, 8)
STEP_GRID = (4, 8, 16)
GROUP_SIZE_GRID = (8, 16, 32)


def launch_grid(kernel: TLPGNNKernel) -> list[TLPGNNKernel]:
    """All launch-geometry variants of one TLPGNN kernel, its config first."""
    base: dict[str, Any] = dict(
        assignment=kernel.assignment,
        register_cache=kernel.register_cache,
        hint_num_vertices=kernel.hint_num_vertices,
        hint_avg_degree=kernel.hint_avg_degree,
    )
    variants = [kernel]
    for wpb in WARPS_PER_BLOCK_GRID:
        for step in STEP_GRID:
            for group in GROUP_SIZE_GRID:
                if (wpb, step, group) == (
                    kernel.warps_per_block,
                    kernel.step,
                    kernel.group_size,
                ):
                    continue
                variants.append(
                    TLPGNNKernel(
                        warps_per_block=wpb,
                        step=step,
                        group_size=group,
                        **base,
                    )
                )
    return variants


class LaunchTuning(PlanPass):
    """Grid-search the TLPGNN launch geometry under the cost model.

    Only the compute kernel's geometry moves; the assignment policy and
    register-cache choice (semantic knobs the mapping pass owns) stay
    fixed.  With a budget below the grid size, a seeded deterministic
    subsample is scored — the incumbent configuration always included.
    """

    name = "launch-tuning"

    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        idx = _conv_index(plan)
        if idx is None or not isinstance(plan.compute.kernel, TLPGNNKernel):
            return None
        # the incumbent geometry is variants[0] and is already scored as
        # `plan` itself, so only the rest consume search budget
        rest = launch_grid(plan.compute.kernel)[1:]
        if len(rest) + 1 > ctx.budget:
            order = np.random.default_rng(ctx.seed).permutation(len(rest))
            rest = [rest[int(j)] for j in order[: max(ctx.budget - 1, 0)]]
        best_plan: ExecutionPlan | None = None
        best_ms = modeled_runtime_s(plan, ctx.spec)
        for kernel in rest:
            cand = _with_kernel(plan, idx, kernel)
            ms = modeled_runtime_s(cand, ctx.spec)
            if ms < best_ms:  # strict: ties keep the incumbent geometry
                best_plan, best_ms = cand, ms
        return best_plan


# ----------------------------------------------------------------------
# tuned-knob replay
# ----------------------------------------------------------------------
class ApplyTunedKnobs(PlanPass):
    """Rebind the compute kernel to a persisted tuner decision.

    The warm path: a ``repro tune`` run recorded the winning knob dict in
    the :class:`~repro.opt.tuner.TunedPlanStore`; this pass replays it
    with zero search.  The pipeline's profit gate still applies, so a
    stale store entry that has become slower than the default lowering is
    skipped rather than trusted.
    """

    name = "apply-tuned-knobs"

    def apply(
        self, plan: ExecutionPlan, ctx: PassContext
    ) -> ExecutionPlan | None:
        if not ctx.tuned:
            return None
        idx = _conv_index(plan)
        if idx is None:
            return None
        kernel = kernel_from_knobs(ctx.tuned, dataset=ctx.dataset)
        if kernel is None or not kernel.supports(plan.ops[idx].workload):
            return None
        if knobs_for_kernel(plan.compute.kernel) == knobs_for_kernel(kernel):
            return None
        return _with_kernel(plan, idx, kernel)
