"""GNNAdvisor-like baseline: reorder pre-processing + neighbor groups.

Reproduces the three traits the paper attributes to GNNAdvisor:
pre-processing (vertex reordering + neighbor-partition building, timed on
the host), atomic merges of per-group partials (Figure 8's traffic), and
the capacity failure on the four largest graphs (reported as dashes in
Table 5).  Only GCN and GIN are implemented, as in the paper.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.datasets import Dataset
from ..graph.reorder import degree_sort
from ..kernels.fusion import streaming_kernel_stats
from ..kernels.neighbor_group import NeighborGroupKernel, build_groups
from ..lint.access import KernelAccess, lane_stream
from ..lint.effects import LaunchEnvelope, effect_table
from ..mp import build_model, model_features
from ..obs.tracer import span
from ..plan import ComputeStep, ExecutionPlan, KernelOp
from .base import CapacityError, GNNSystem

__all__ = ["GNNAdvisorSystem"]

#: full-size edge count beyond which GNNAdvisor's int32 partition workspace
#: overflows (the paper's illegal-memory-access graphs start at Collab).
EDGE_CAPACITY = 20_000_000


class GNNAdvisorSystem(GNNSystem):
    """Reordering + 2D workload (neighbor groups) + atomic merge."""

    name = "GNNAdvisor"
    dispatch_seconds = 60e-6

    def __init__(self, *, group_size: int = 8) -> None:
        self.group_size = group_size
        self.kernel = NeighborGroupKernel(group_size=group_size)

    def supports(self, model: str) -> bool:
        # spec-driven: the neighbor-group kernel merges partial rows with
        # atomicAdd, so only sum reduces without a softmax term lower here
        # (mean and attention keep GNNAdvisor out of sage/gat, as in the
        # paper; any registered sum-reduce UDF is accepted).
        f = model_features(model)
        return f is not None and f.op == "sum" and not f.softmax

    def plan_knobs(self) -> dict:
        return {**super().plan_knobs(), "group_size": self.group_size}

    def check_capacity(self, graph: CSRGraph, dataset: Dataset | None) -> None:
        edges = dataset.spec.num_edges if dataset is not None else graph.num_edges
        if edges > EDGE_CAPACITY:
            raise CapacityError(
                f"{self.name}: neighbor-partition workspace overflow at "
                f"{edges} edges (paper reports illegal CUDA memory access)"
            )

    # ------------------------------------------------------------------
    def _lower(self, model, graph, X, spec, *, dataset, rng):
        # pre-processing: reorder + group-table build (real host time)
        with span("gnnadvisor.preprocess", graph=graph.name):
            t0 = time.perf_counter()
            reorder = degree_sort(graph)
            build_groups(reorder.graph.in_degrees, self.group_size)
            preprocess = time.perf_counter() - t0 + reorder.seconds

        perm = reorder.perm
        Xp = np.ascontiguousarray(X[np.argsort(perm)])
        workload = build_model(
            model, reorder.graph, Xp, rng=rng
        ).workload()
        # Feature renumbering (permute to the reordered id space) happens once
        # during pre-processing, so it is charged to preprocess time, not to
        # the per-epoch kernel pipeline the tables compare.  The compute step
        # undoes the permutation so outputs are comparable across systems.
        ops = [
            KernelOp(
                name=self.kernel.name,
                kind="conv",
                kernel=self.kernel,
                workload=workload,
                balance="neighbor-group",
            ),
            # finalize kernel: combine self term / scale (their 2nd kernel)
            KernelOp(
                name="gnnadvisor_finalize",
                kind="modeled",
                analyze_fn=lambda s, _items=graph.num_vertices * X.shape[1]: (
                    streaming_kernel_stats(
                        "gnnadvisor_finalize",
                        _items,
                        s,
                        read_bytes_per_item=8.0,
                        write_bytes_per_item=4.0,
                        instr_per_item=2.0,
                    )
                ),
                # reads the atomically-merged aggregate back in place and
                # folds in the self term — an exclusive elementwise update
                effects=effect_table(
                    reads=("out", "feat"),
                    writes=("out",),
                    launch=LaunchEnvelope(threads_per_block=256),
                ),
                access=KernelAccess(
                    patterns=(
                        lane_stream("out", row="flat"),
                        lane_stream("feat", row="flat"),
                        lane_stream("out", role="write", row="flat"),
                    ),
                    shapes={
                        "out": (graph.num_vertices, X.shape[1]),
                        "feat": (graph.num_vertices, X.shape[1]),
                    },
                ),
            ),
        ]
        return ExecutionPlan(
            system=self.name,
            model=model,
            graph_name=graph.name,
            pipeline_name=f"gnnadvisor_{model}",
            ops=ops,
            compute=ComputeStep(
                kind="kernel",
                kernel=self.kernel,
                workload=workload,
                output_perm=perm,
            ),
            preprocess_seconds=preprocess,
            dispatch_seconds=self.dispatch_seconds,
        )
