"""Framework base: what a "GNN computation system" is in this reproduction.

A system takes a model name + graph + input features, **lowers** the cell
to an :class:`~repro.plan.ExecutionPlan` (its own kernel pipeline), then
the shared executor/analyzer of :mod:`repro.plan` runs the plan and costs
it, returning the output plus a :class:`~repro.gpusim.profiler.
ProfileReport` with modeled timing and counters.  All systems must
produce numerically identical outputs — the test suite enforces it — so
Table 5 compares *how*, not *what*.

Systems are pure lowering rules: subclasses implement ``_lower`` (and
``plan_knobs`` for their cache-key knobs); ``run()`` is the shared
three-stage driver with the :class:`~repro.plan.PlanCache` in front.
Cache bypass rules: an explicit ``rng`` (caller-controlled randomness)
or an installed tracer (spans must observe real execution) always runs
the full pipeline.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..gpusim.profiler import ProfileReport
from ..graph.csr import CSRGraph
from ..graph.datasets import Dataset
from ..lint import PlanLintError, lint_plan
from ..obs.reqtrace import current_batch_context
from ..obs.tracer import get_tracer, span
from ..plan import (
    ExecutionPlan,
    PlanCacheEntry,
    PlanInfo,
    analyze_plan,
    cost_plan,
    execute_plan,
    get_plan_cache,
    plan_fingerprint,
    time_parts,
)

__all__ = ["GNNSystem", "SystemResult", "UnsupportedModelError", "CapacityError"]


class UnsupportedModelError(NotImplementedError):
    """The system does not implement this GNN model (GNNAdvisor ⊅ GAT/Sage)."""


class CapacityError(RuntimeError):
    """The system cannot handle the workload (GNNAdvisor's illegal memory
    access on the four largest graphs)."""


@dataclass
class SystemResult:
    """Output features + profile of one convolution execution."""

    output: np.ndarray
    report: ProfileReport
    #: summary of the lowered plan (``plan.cached`` marks warm-cache hits)
    plan: PlanInfo | None = None

    @property
    def runtime_ms(self) -> float:
        return self.report.runtime_ms


class GNNSystem(ABC):
    """A GNN computation system (DGL / GNNAdvisor / FeatGraph / TLPGNN)."""

    name: str = "system"
    #: per-kernel host dispatch cost of the system's runtime loop (seconds);
    #: None = bare kernel launches only (no framework layer between kernels)
    dispatch_seconds: float | None = None

    @abstractmethod
    def supports(self, model: str) -> bool:
        """Whether the system implements this model's convolution."""

    @abstractmethod
    def _lower(
        self,
        model: str,
        graph: CSRGraph,
        X: np.ndarray,
        spec: GPUSpec,
        *,
        dataset: Dataset | None,
        rng: np.random.Generator,
    ) -> ExecutionPlan:
        """Lower the cell to this system's kernel pipeline (compile stage)."""

    def plan_knobs(self) -> dict:
        """Every knob that changes lowering or costing — part of the plan
        cache key.  Subclasses extend with their own configuration."""
        return {"dispatch_seconds": self.dispatch_seconds}

    # ------------------------------------------------------------------
    def _prepare(
        self, model: str, data: CSRGraph | Dataset
    ) -> tuple[str, CSRGraph, Dataset | None]:
        model = model.lower()
        if not self.supports(model):
            raise UnsupportedModelError(f"{self.name} does not implement {model}")
        dataset = data if isinstance(data, Dataset) else None
        graph = data.graph if dataset is not None else data
        self.check_capacity(graph, dataset)
        return model, graph, dataset

    def _fingerprint(
        self,
        model: str,
        graph: CSRGraph,
        X: np.ndarray,
        spec: GPUSpec,
        dataset: Dataset | None,
        opt: dict | None = None,
    ) -> str:
        return plan_fingerprint(
            system=self.name,
            model=model,
            graph=graph,
            X=X,
            spec=spec,
            knobs=self.plan_knobs(),
            dataset=dataset,
            opt=opt,
        )

    def lower(
        self,
        model: str,
        data: CSRGraph | Dataset,
        X: np.ndarray,
        spec: GPUSpec = V100,
        *,
        rng: np.random.Generator | None = None,
    ) -> ExecutionPlan:
        """Compile stage only: lower the cell without executing or costing."""
        model, graph, dataset = self._prepare(model, data)
        plan = self._lower(
            model, graph, X, spec,
            dataset=dataset, rng=rng or np.random.default_rng(0),
        )
        plan.fingerprint = self._fingerprint(model, graph, X, spec, dataset)
        return plan

    # ------------------------------------------------------------------
    def run(
        self,
        model: str,
        data: CSRGraph | Dataset,
        X: np.ndarray,
        spec: GPUSpec = V100,
        *,
        rng: np.random.Generator | None = None,
        lint: str | None = None,
        opt: str | None = None,
    ) -> SystemResult:
        """Execute the model's graph convolution and profile it.

        ``lint`` gates execution on the static plan analyzer: ``"strict"``
        raises :class:`~repro.lint.PlanLintError` on any error-severity
        finding, ``"warn"`` emits the report as a warning; either mode
        bypasses the plan cache (cache hits skip lowering, so there would
        be no ops to analyze).

        ``opt`` selects the :mod:`repro.opt` pass-pipeline level applied
        between lowering and execution — ``"off"`` (or None, the
        default), ``"safe"``, or ``"search"``.  At ``"search"`` the
        installed :class:`~repro.opt.TunedPlanStore` is consulted first:
        a hit replays the persisted tuner decision instead of searching.
        The optimizer context (level, tuner version, tuned knobs) is
        part of the plan-cache fingerprint, so an untuned cached plan is
        never served as a tuned one.
        """
        if lint not in (None, "warn", "strict"):
            raise ValueError(f"lint must be None, 'warn' or 'strict': {lint!r}")
        from ..opt import (
            OPT_LEVELS,
            TUNER_VERSION,
            get_tuned_store,
            optimize_plan,
            tuning_key,
        )

        if opt is not None and opt not in OPT_LEVELS:
            raise ValueError(f"opt must be one of {OPT_LEVELS}: {opt!r}")
        model, graph, dataset = self._prepare(model, data)
        cache = get_plan_cache()
        # resolve the optimizer context before the cache lookup — it is
        # part of the content key ("off" means the pre-optimizer plan and
        # deliberately shares the legacy opt=None fingerprint)
        opt_ctx = None
        tuned = None
        if opt in ("safe", "search"):
            if opt == "search":
                tkey = tuning_key(
                    system=self.name, model=model, graph=graph,
                    X=X, spec=spec, dataset=dataset,
                )
                tuned = get_tuned_store().lookup(
                    tkey, system=self.name, model=model
                )
            opt_ctx = {
                "level": opt,
                "tuner_version": TUNER_VERSION,
                "tuned": tuned,
            }
        # an explicit rng makes the cell content-unaddressable (the key
        # cannot capture caller-controlled randomness); a tracer demands
        # real execution, but the fingerprint itself stays valid
        key = None
        if rng is None:
            key = self._fingerprint(model, graph, X, spec, dataset, opt=opt_ctx)
        cacheable = (
            key is not None
            and cache is not None
            and get_tracer() is None
            and lint is None
        )
        if cacheable:
            entry = cache.get(key, system=self.name, model=model)
            if entry is not None:
                report = ProfileReport(
                    system=self.name,
                    model=model,
                    dataset=graph.name,
                    timing=entry.timing,
                    stats=entry.stats,
                )
                report.publish()
                return SystemResult(
                    output=entry.output.copy(),
                    report=report,
                    plan=replace(entry.info, cached=True),
                )

        rng = rng or np.random.default_rng(0)
        # request-level attribution: when run on behalf of a served batch
        # (the planner calls into run() during dispatch), tag the pipeline
        # span with the batch / request ids it serves
        bctx = current_batch_context()
        req_tags = (
            {"batch": bctx.bid, "rids": list(bctx.rids)} if bctx else {}
        )
        with span(
            f"{self.name}.pipeline", model=model, graph=graph.name, **req_tags
        ) as sp:
            plan = self._lower(model, graph, X, spec, dataset=dataset, rng=rng)
            plan.fingerprint = key
            certificate = None
            if opt in ("safe", "search"):
                lowered = plan
                plan, _opt_records = optimize_plan(
                    plan, spec, level=opt, dataset=dataset, tuned=tuned
                )
                # every accepted rewrite passed the equivalence gate, so
                # this end-to-end certificate always issues; it rides the
                # cache entry alongside the fingerprint
                from ..verify import certify_plans

                certification = certify_plans(plan, lowered)
                if certification.certificate is not None:
                    certificate = certification.certificate.as_dict()
            if lint is not None:
                lint_report = lint_plan(plan, spec)
                if lint == "strict" and lint_report.errors:
                    raise PlanLintError(lint_report)
                if lint_report.findings:
                    warnings.warn(lint_report.render(), stacklevel=2)
            output = execute_plan(plan)
            if sp is not None:
                sp.set(num_kernels=plan.num_kernels)
        with span(f"{self.name}.costmodel", model=model) as sp:
            pipeline, parts = analyze_plan(plan, spec)
            timings = time_parts(parts, spec)
            timing = cost_plan(
                pipeline, timings, spec, dispatch_seconds=self.dispatch_seconds
            )
            if sp is not None:
                sp.add_modeled(timing.runtime_seconds)
        report = ProfileReport(
            system=self.name,
            model=model,
            dataset=graph.name,
            timing=timing,
            stats=pipeline,
        )
        report.publish()
        if cacheable:
            cache.put(
                key,
                PlanCacheEntry(
                    output=output.copy(),
                    stats=pipeline,
                    timing=timing,
                    info=plan.info(),
                    certificate=certificate,
                ),
            )
        return SystemResult(output=output, report=report, plan=plan.info())

    def check_capacity(self, graph: CSRGraph, dataset: Dataset | None) -> None:
        """Raise :class:`CapacityError` if the workload exceeds the system's
        limits (default: no limits)."""
