"""Framework base: what a "GNN computation system" is in this reproduction.

A system takes a model name + graph + input features, runs the graph
convolution its own way (its kernel pipeline), and returns the output plus
a :class:`~repro.gpusim.profiler.ProfileReport` with modeled timing and
counters.  All systems must produce numerically identical outputs — the
test suite enforces it — so Table 5 compares *how*, not *what*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..gpusim.costmodel import KernelTiming, estimate_kernel, estimate_pipeline
from ..gpusim.kernel import KernelStats, PipelineStats
from ..gpusim.occupancy import theoretical_occupancy
from ..gpusim.profiler import ProfileReport
from ..gpusim.scheduler import ScheduleResult
from ..graph.csr import CSRGraph
from ..graph.datasets import Dataset
from ..obs.tracer import span

__all__ = ["GNNSystem", "SystemResult", "UnsupportedModelError", "CapacityError"]


class UnsupportedModelError(NotImplementedError):
    """The system does not implement this GNN model (GNNAdvisor ⊅ GAT/Sage)."""


class CapacityError(RuntimeError):
    """The system cannot handle the workload (GNNAdvisor's illegal memory
    access on the four largest graphs)."""


@dataclass
class SystemResult:
    """Output features + profile of one convolution execution."""

    output: np.ndarray
    report: ProfileReport

    @property
    def runtime_ms(self) -> float:
        return self.report.runtime_ms


class GNNSystem(ABC):
    """A GNN computation system (DGL / GNNAdvisor / FeatGraph / TLPGNN)."""

    name: str = "system"
    #: per-kernel host dispatch cost of the system's runtime loop (seconds);
    #: None = bare kernel launches only (no framework layer between kernels)
    dispatch_seconds: float | None = None

    @abstractmethod
    def supports(self, model: str) -> bool:
        """Whether the system implements this model's convolution."""

    @abstractmethod
    def _pipeline(
        self,
        model: str,
        graph: CSRGraph,
        X: np.ndarray,
        spec: GPUSpec,
        *,
        dataset: Dataset | None,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, PipelineStats, list[tuple[KernelStats, ScheduleResult]]]:
        """Build & run the system's kernel pipeline for the workload."""

    # ------------------------------------------------------------------
    def run(
        self,
        model: str,
        data: CSRGraph | Dataset,
        X: np.ndarray,
        spec: GPUSpec = V100,
        *,
        rng: np.random.Generator | None = None,
    ) -> SystemResult:
        """Execute the model's graph convolution and profile it."""
        model = model.lower()
        if not self.supports(model):
            raise UnsupportedModelError(f"{self.name} does not implement {model}")
        dataset = data if isinstance(data, Dataset) else None
        graph = data.graph if dataset is not None else data
        self.check_capacity(graph, dataset)
        rng = rng or np.random.default_rng(0)
        with span(f"{self.name}.pipeline", model=model, graph=graph.name) as sp:
            output, pipeline, parts = self._pipeline(
                model, graph, X, spec, dataset=dataset, rng=rng
            )
            if sp is not None:
                sp.set(num_kernels=pipeline.num_kernels)
        with span(f"{self.name}.costmodel", model=model) as sp:
            timings: list[KernelTiming] = []
            for stats, sched in parts:
                occ = theoretical_occupancy(stats.launch, spec).theoretical
                timings.append(
                    estimate_kernel(stats, sched, spec, theoretical_occupancy=occ)
                )
            if self.dispatch_seconds is not None:
                eff_spec = spec.with_overrides(
                    framework_dispatch_seconds=self.dispatch_seconds
                )
                timing = estimate_pipeline(
                    pipeline, timings, eff_spec, framework_dispatch=True
                )
            else:
                timing = estimate_pipeline(pipeline, timings, spec)
            if sp is not None:
                sp.add_modeled(timing.runtime_seconds)
        report = ProfileReport(
            system=self.name,
            model=model,
            dataset=graph.name,
            timing=timing,
            stats=pipeline,
        )
        report.publish()
        return SystemResult(output=output, report=report)

    def check_capacity(self, graph: CSRGraph, dataset: Dataset | None) -> None:
        """Raise :class:`CapacityError` if the workload exceeds the system's
        limits (default: no limits)."""
