"""The TLPGNN engine — our system, with per-technique ablation toggles.

Default configuration = the full paper design: two-level parallelism,
hybrid dynamic workload assignment, register caching, and kernel fusion
(one kernel for every model, including GAT).  Each technique can be turned
off to regenerate the Figure 10 ablation:

* ``two_level=False``   → edge-centric atomic baseline kernel,
* ``hybrid=False``      → plain hardware assignment,
* ``register_cache=False`` → accumulator/bounds kept in global memory,
* ``fusion=False``      → GAT runs the unfused 3-kernel pipeline.
"""

from __future__ import annotations

from ..kernels.edge_centric import EdgeCentricKernel
from ..kernels.fusion import streaming_kernel_stats
from ..kernels.tlpgnn import TLPGNNKernel
from ..lint.effects import LaunchEnvelope, effect_table
from ..models.convspec import ConvWorkload
from ..mp import (
    build_model,
    model_features,
    softmax_stage_access,
    softmax_stages,
)
from ..obs.tracer import span
from ..plan import ComputeStep, ExecutionPlan, KernelOp
from .base import GNNSystem

__all__ = ["TLPGNNEngine"]


class TLPGNNEngine(GNNSystem):
    """Single fused kernel per model; no pre-processing of any kind."""

    name = "TLPGNN"

    def __init__(
        self,
        *,
        two_level: bool = True,
        hybrid: bool = True,
        register_cache: bool = True,
        fusion: bool = True,
        warps_per_block: int = 4,
        step: int = 8,
    ) -> None:
        self.two_level = two_level
        self.hybrid = hybrid
        self.register_cache = register_cache
        self.fusion = fusion
        self.warps_per_block = warps_per_block
        self.step = step

    def supports(self, model: str) -> bool:
        # spec-driven: the fused kernel runs any registered UDF.  The
        # two_level=False ablation aggregates with the edge-centric
        # scatter kernel, which cannot express a max reduce.
        f = model_features(model)
        return f is not None and (self.two_level or f.op != "max")

    def plan_knobs(self) -> dict:
        return {
            **super().plan_knobs(),
            "two_level": self.two_level,
            "hybrid": self.hybrid,
            "register_cache": self.register_cache,
            "fusion": self.fusion,
            "warps_per_block": self.warps_per_block,
            "step": self.step,
        }

    # ------------------------------------------------------------------
    def _make_kernel(self, dataset) -> TLPGNNKernel:
        # without the hybrid dynamic assignment, the two-level kernel falls
        # back to a naive launch with un-tuned large blocks — the "TLP only"
        # configuration of the paper's ablation, "still suffering from
        # uneven workload distribution"
        return TLPGNNKernel(
            register_cache=self.register_cache,
            assignment="hybrid" if self.hybrid else "hardware",
            warps_per_block=self.warps_per_block if self.hybrid else 8,
            step=self.step,
            hint_num_vertices=(
                dataset.full_num_vertices if dataset is not None else None
            ),
            hint_avg_degree=(
                dataset.full_avg_degree if dataset is not None else None
            ),
        )

    def _lower(self, model, graph, X, spec, *, dataset, rng):
        mp_model = build_model(model, graph, X, rng=rng)
        workload = mp_model.workload()
        ops: list[KernelOp] = []

        needs_unfused_gat = mp_model.has_softmax and not (
            self.fusion and self.two_level
        )
        if needs_unfused_gat:
            # The softmax normalization term, unfused: ApplyEdge + edge-
            # softmax launches materialize the per-edge alphas, then the
            # enabled level-1 mapping aggregates them as edge values.
            # Stage dataflow (rb/wb) and access tables come from the term's
            # derivation in repro.mp; the cost closures stay here.
            with span("tlpgnn.unfused_attention", model=model):
                g = graph
                alphas = workload.resolved_edge_weights()
                att_sec = -(-4 * g.num_vertices // 32)
                # the softmax materializes the aggregation's edge_vals input
                apply_stage, softmax_stage, _ = softmax_stages(
                    alpha="edge_vals"
                )
                gat_access = softmax_stage_access(workload, alpha="edge_vals")
                ops.append(
                    KernelOp(
                        name="apply_edge_logits",
                        kind="modeled",
                        analyze_fn=lambda s, _g=g, _a=att_sec: (
                            streaming_kernel_stats(
                                "apply_edge_logits",
                                _g.num_edges,
                                s,
                                read_bytes_per_item=8.0,
                                write_bytes_per_item=4.0,
                                gather_touches=2 * _g.num_edges,
                                gather_unique_sectors=2 * _a,
                                instr_per_item=4.0,
                                workspace_bytes=4 * _g.num_edges,
                            )
                        ),
                        effects=effect_table(
                            reads=apply_stage.reads,
                            writes=(apply_stage.write,),
                            launch=LaunchEnvelope(threads_per_block=256),
                        ),
                        access=gat_access["apply_edge"],
                    )
                )
                ops.append(
                    KernelOp(
                        name="edge_softmax",
                        kind="modeled",
                        analyze_fn=lambda s, _g=g: streaming_kernel_stats(
                            "edge_softmax",
                            _g.num_edges,
                            s,
                            read_bytes_per_item=8.0,
                            write_bytes_per_item=4.0,
                            instr_per_item=6.0,
                            workspace_bytes=4 * _g.num_edges,
                        ),
                        # materializes the per-edge alphas the downstream
                        # aggregation consumes as its `edge_vals` input
                        effects=effect_table(
                            reads=softmax_stage.reads,
                            writes=(softmax_stage.write,),
                            launch=LaunchEnvelope(threads_per_block=256),
                        ),
                        access=gat_access["softmax"],
                    )
                )
                workload = ConvWorkload(
                    graph=g, X=workload.X, edge_weights=alphas, reduce="sum"
                )

        if self.two_level:
            kernel = self._make_kernel(dataset)
            balance = kernel.assignment
        else:
            kernel = EdgeCentricKernel(warps_per_block=self.warps_per_block)
            balance = "edge-centric"
        ops.append(
            KernelOp(
                name=kernel.name,
                kind="conv",
                kernel=kernel,
                workload=workload,
                balance=balance,
                fused=not needs_unfused_gat and workload.attention is not None,
            )
        )
        return ExecutionPlan(
            system=self.name,
            model=model,
            graph_name=graph.name,
            pipeline_name=f"tlpgnn_{model}",
            ops=ops,
            compute=ComputeStep(kind="kernel", kernel=kernel, workload=workload),
            dispatch_seconds=self.dispatch_seconds,
        )
