"""The TLPGNN engine — our system, with per-technique ablation toggles.

Default configuration = the full paper design: two-level parallelism,
hybrid dynamic workload assignment, register caching, and kernel fusion
(one kernel for every model, including GAT).  Each technique can be turned
off to regenerate the Figure 10 ablation:

* ``two_level=False``   → edge-centric atomic baseline kernel,
* ``hybrid=False``      → plain hardware assignment,
* ``register_cache=False`` → accumulator/bounds kept in global memory,
* ``fusion=False``      → GAT runs the unfused 3-kernel pipeline.
"""

from __future__ import annotations

import numpy as np

from ..kernels.edge_centric import EdgeCentricKernel
from ..kernels.fusion import streaming_kernel_stats, three_kernel_gat_access
from ..kernels.tlpgnn import TLPGNNKernel
from ..lint.effects import LaunchEnvelope, effect_table
from ..models import build_conv
from ..models.convspec import ConvWorkload
from ..models.functional import leaky_relu, segment_softmax
from ..obs.tracer import span
from ..plan import ComputeStep, ExecutionPlan, KernelOp
from .base import GNNSystem

__all__ = ["TLPGNNEngine"]


class TLPGNNEngine(GNNSystem):
    """Single fused kernel per model; no pre-processing of any kind."""

    name = "TLPGNN"

    def __init__(
        self,
        *,
        two_level: bool = True,
        hybrid: bool = True,
        register_cache: bool = True,
        fusion: bool = True,
        warps_per_block: int = 4,
        step: int = 8,
    ) -> None:
        self.two_level = two_level
        self.hybrid = hybrid
        self.register_cache = register_cache
        self.fusion = fusion
        self.warps_per_block = warps_per_block
        self.step = step

    def supports(self, model: str) -> bool:
        return model in ("gcn", "gin", "sage", "gat")

    def plan_knobs(self) -> dict:
        return {
            **super().plan_knobs(),
            "two_level": self.two_level,
            "hybrid": self.hybrid,
            "register_cache": self.register_cache,
            "fusion": self.fusion,
            "warps_per_block": self.warps_per_block,
            "step": self.step,
        }

    # ------------------------------------------------------------------
    def _make_kernel(self, dataset) -> TLPGNNKernel:
        # without the hybrid dynamic assignment, the two-level kernel falls
        # back to a naive launch with un-tuned large blocks — the "TLP only"
        # configuration of the paper's ablation, "still suffering from
        # uneven workload distribution"
        return TLPGNNKernel(
            register_cache=self.register_cache,
            assignment="hybrid" if self.hybrid else "hardware",
            warps_per_block=self.warps_per_block if self.hybrid else 8,
            step=self.step,
            hint_num_vertices=(
                dataset.full_num_vertices if dataset is not None else None
            ),
            hint_avg_degree=(
                dataset.full_avg_degree if dataset is not None else None
            ),
        )

    def _lower(self, model, graph, X, spec, *, dataset, rng):
        workload = build_conv(model, graph, X, rng=rng)
        ops: list[KernelOp] = []

        needs_unfused_gat = workload.attention is not None and not (
            self.fusion and self.two_level
        )
        if needs_unfused_gat:
            # materialize attention with ApplyEdge + edge-softmax kernels,
            # then aggregate with whatever level-1 mapping is enabled.
            with span("tlpgnn.unfused_attention", model=model):
                att = workload.attention
                g = graph
                src = g.indices
                dst = np.repeat(
                    np.arange(g.num_vertices, dtype=np.int64), g.in_degrees
                )
                logits = leaky_relu(
                    att.att_src[src] + att.att_dst[dst], att.negative_slope
                ).astype(np.float64)
                alphas = segment_softmax(logits, g.indptr).astype(np.float32)
                att_sec = -(-4 * g.num_vertices // 32)
                # the softmax materializes the aggregation's edge_vals input
                gat_access = three_kernel_gat_access(workload, alpha="edge_vals")
                ops.append(
                    KernelOp(
                        name="apply_edge_logits",
                        kind="modeled",
                        analyze_fn=lambda s, _g=g, _a=att_sec: (
                            streaming_kernel_stats(
                                "apply_edge_logits",
                                _g.num_edges,
                                s,
                                read_bytes_per_item=8.0,
                                write_bytes_per_item=4.0,
                                gather_touches=2 * _g.num_edges,
                                gather_unique_sectors=2 * _a,
                                instr_per_item=4.0,
                                workspace_bytes=4 * _g.num_edges,
                            )
                        ),
                        effects=effect_table(
                            reads=("indices", "att"),
                            writes=("tmp:logits",),
                            launch=LaunchEnvelope(threads_per_block=256),
                        ),
                        access=gat_access["apply_edge"],
                    )
                )
                ops.append(
                    KernelOp(
                        name="edge_softmax",
                        kind="modeled",
                        analyze_fn=lambda s, _g=g: streaming_kernel_stats(
                            "edge_softmax",
                            _g.num_edges,
                            s,
                            read_bytes_per_item=8.0,
                            write_bytes_per_item=4.0,
                            instr_per_item=6.0,
                            workspace_bytes=4 * _g.num_edges,
                        ),
                        # materializes the per-edge alphas the downstream
                        # aggregation consumes as its `edge_vals` input
                        effects=effect_table(
                            reads=("tmp:logits", "indptr"),
                            writes=("edge_vals",),
                            launch=LaunchEnvelope(threads_per_block=256),
                        ),
                        access=gat_access["softmax"],
                    )
                )
                workload = ConvWorkload(
                    graph=g, X=workload.X, edge_weights=alphas, reduce="sum"
                )

        if self.two_level:
            kernel = self._make_kernel(dataset)
            balance = kernel.assignment
        else:
            kernel = EdgeCentricKernel(warps_per_block=self.warps_per_block)
            balance = "edge-centric"
        ops.append(
            KernelOp(
                name=kernel.name,
                kind="conv",
                kernel=kernel,
                workload=workload,
                balance=balance,
                fused=not needs_unfused_gat and workload.attention is not None,
            )
        )
        return ExecutionPlan(
            system=self.name,
            model=model,
            graph_name=graph.name,
            pipeline_name=f"tlpgnn_{model}",
            ops=ops,
            compute=ComputeStep(kind="kernel", kernel=kernel, workload=workload),
            dispatch_seconds=self.dispatch_seconds,
        )
