"""FeatGraph-like baseline: tensor-compiler template kernels.

FeatGraph emits TVM-generated kernels: fewer launches than DGL and decent
memory behaviour, but the Tensor Expression API fixes the vertex↔thread
mapping at compile time — no dynamic balancing — which the paper shows as
markedly lower achieved occupancy (Figure 9, 41.2% vs TLPGNN's 68.2%).

We model it as a warp-per-vertex gather kernel with a *static* mapping
(large blocks, no task pool, no register caching of the accumulator) plus a
finalize kernel; GAT lowers to the 3-kernel pipeline of Table 3.
"""

from __future__ import annotations

from ..kernels.fusion import streaming_kernel_stats, three_kernel_gat_stats
from ..kernels.tlpgnn import TLPGNNKernel
from ..lint.access import KernelAccess, lane_stream
from ..lint.effects import LaunchEnvelope, effect_table
from ..mp import (
    build_model,
    model_features,
    softmax_stage_access,
    softmax_stages,
)
from ..obs.tracer import span
from ..plan import ComputeStep, ExecutionPlan, KernelOp
from .base import GNNSystem

__all__ = ["FeatGraphSystem"]


class FeatGraphSystem(GNNSystem):
    """TVM-template kernels: static mapping, moderate kernel counts."""

    name = "FeatGraph"

    def __init__(self, *, warps_per_block: int = 16) -> None:
        # Large static blocks: whole blocks retire on their slowest warp,
        # which is where the occupancy gap against TLPGNN comes from.
        self.warps_per_block = warps_per_block
        self.kernel = TLPGNNKernel(
            assignment="static",
            warps_per_block=warps_per_block,
            register_cache=False,
        )
        self.kernel.name = "featgraph_gather"

    def supports(self, model: str) -> bool:
        # spec-driven: the static gather template runs any registered UDF
        # (softmax terms expand to the three-kernel pipeline below)
        return model_features(model) is not None

    def plan_knobs(self) -> dict:
        return {**super().plan_knobs(), "warps_per_block": self.warps_per_block}

    # ------------------------------------------------------------------
    def _lower(self, model, graph, X, spec, *, dataset, rng):
        mp_model = build_model(model, graph, X, rng=rng)
        workload = mp_model.workload()
        if mp_model.has_softmax:
            # The softmax normalization term expands to the unfused
            # three-stage pipeline; stage dataflow and access tables are
            # derived from the term (repro.mp), the TVM-style static cost
            # model stays here.  The three stats belong to one lowering:
            # compute them once per analyzed spec and hand each op its
            # slice.
            memo: dict[int, list] = {}
            gat_access = softmax_stage_access(workload)
            stage_names = {
                "apply_edge": "gat_apply_edge",
                "softmax": "gat_edge_softmax",
                "aggregate": "gat_aggregate",
            }

            def part_of(index, name, *, rb, wb, access):
                def analyze(s):
                    key = id(s)
                    if key not in memo:
                        with span("featgraph.three_kernel_gat"):
                            _pipe, parts = three_kernel_gat_stats(
                                workload,
                                s,
                                schedule_policy="static",
                                register_cache=False,
                                l2_efficiency=0.2,
                            )
                        memo[key] = parts
                    return memo[key][index]

                return KernelOp(
                    name=name, kind="modeled",
                    analyze_fn=analyze, balance="static",
                    effects=effect_table(
                        reads=rb,
                        writes=(wb,),
                        launch=LaunchEnvelope(
                            threads_per_block=self.warps_per_block * 32
                        ),
                    ),
                    access=access,
                )

            ops = [
                part_of(
                    i,
                    stage_names[stage.key],
                    rb=stage.reads,
                    wb=stage.write,
                    access=gat_access[stage.key],
                )
                for i, stage in enumerate(softmax_stages())
            ]
            return ExecutionPlan(
                system=self.name,
                model=model,
                graph_name=graph.name,
                pipeline_name=f"featgraph_{model}",
                ops=ops,
                compute=ComputeStep(
                    kind="reference",
                    workload=workload,
                    label="gat_three_kernel",
                ),
                dispatch_seconds=self.dispatch_seconds,
            )
        ops = [
            KernelOp(
                name=self.kernel.name,
                kind="conv",
                kernel=self.kernel,
                workload=workload,
                balance="static",
            ),
            KernelOp(
                name="featgraph_finalize",
                kind="modeled",
                analyze_fn=lambda s, _items=graph.num_vertices * X.shape[1]: (
                    streaming_kernel_stats(
                        "featgraph_finalize",
                        _items,
                        s,
                        read_bytes_per_item=8.0,
                        write_bytes_per_item=4.0,
                        instr_per_item=2.0,
                    )
                ),
                effects=effect_table(
                    reads=("out", "feat"),
                    writes=("out",),
                    launch=LaunchEnvelope(threads_per_block=256),
                ),
                access=KernelAccess(
                    patterns=(
                        lane_stream("out", row="flat"),
                        lane_stream("feat", row="flat"),
                        lane_stream("out", role="write", row="flat"),
                    ),
                    shapes={
                        "out": (graph.num_vertices, X.shape[1]),
                        "feat": (graph.num_vertices, X.shape[1]),
                    },
                ),
            ),
        ]
        return ExecutionPlan(
            system=self.name,
            model=model,
            graph_name=graph.name,
            pipeline_name=f"featgraph_{model}",
            ops=ops,
            compute=ComputeStep(
                kind="kernel", kernel=self.kernel, workload=workload
            ),
            dispatch_seconds=self.dispatch_seconds,
        )
