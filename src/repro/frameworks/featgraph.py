"""FeatGraph-like baseline: tensor-compiler template kernels.

FeatGraph emits TVM-generated kernels: fewer launches than DGL and decent
memory behaviour, but the Tensor Expression API fixes the vertex↔thread
mapping at compile time — no dynamic balancing — which the paper shows as
markedly lower achieved occupancy (Figure 9, 41.2% vs TLPGNN's 68.2%).

We model it as a warp-per-vertex gather kernel with a *static* mapping
(large blocks, no task pool, no register caching of the accumulator) plus a
finalize kernel; GAT lowers to the 3-kernel pipeline of Table 3.
"""

from __future__ import annotations

from ..gpusim.kernel import PipelineStats
from ..kernels.fusion import streaming_kernel_stats, three_kernel_gat
from ..kernels.tlpgnn import TLPGNNKernel
from ..models import build_conv
from ..obs.tracer import span
from .base import GNNSystem

__all__ = ["FeatGraphSystem"]


class FeatGraphSystem(GNNSystem):
    """TVM-template kernels: static mapping, moderate kernel counts."""

    name = "FeatGraph"

    def __init__(self, *, warps_per_block: int = 16) -> None:
        # Large static blocks: whole blocks retire on their slowest warp,
        # which is where the occupancy gap against TLPGNN comes from.
        self.warps_per_block = warps_per_block
        self.kernel = TLPGNNKernel(
            assignment="static",
            warps_per_block=warps_per_block,
            register_cache=False,
        )
        self.kernel.name = "featgraph_gather"

    def supports(self, model: str) -> bool:
        return model in ("gcn", "gin", "sage", "gat")

    # ------------------------------------------------------------------
    def _pipeline(self, model, graph, X, spec, *, dataset, rng):
        workload = build_conv(model, graph, X, rng=rng)
        pipeline = PipelineStats(name=f"featgraph_{model}")
        if model == "gat":
            with span("featgraph.three_kernel_gat"):
                output, pstats, parts = three_kernel_gat(
                    workload,
                    spec,
                    schedule_policy="static",
                    register_cache=False,
                    l2_efficiency=0.2,
                )
            for s, _ in parts:
                pipeline.add(s)
            return output, pipeline, parts
        with span("kernel.run", kernel=self.kernel.name):
            output = self.kernel.run(workload)
        with span("kernel.analyze", kernel=self.kernel.name):
            stats, sched = self.kernel.analyze(workload, spec)
        fin = streaming_kernel_stats(
            "featgraph_finalize",
            graph.num_vertices * X.shape[1],
            spec,
            read_bytes_per_item=8.0,
            write_bytes_per_item=4.0,
            instr_per_item=2.0,
        )
        pipeline.add(stats)
        pipeline.add(fin[0])
        return output, pipeline, [(stats, sched), fin]
