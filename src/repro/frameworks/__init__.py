"""GNN computation systems compared in the paper's evaluation: DGL,
GNNAdvisor, FeatGraph, and the TLPGNN engine."""

from .base import CapacityError, GNNSystem, SystemResult, UnsupportedModelError
from .dglsim import DGL_KERNEL_COUNTS, DGLSystem
from .featgraph import FeatGraphSystem
from .gnnadvisor import GNNAdvisorSystem
from .tlpgnn_engine import TLPGNNEngine

__all__ = [
    "GNNSystem",
    "SystemResult",
    "UnsupportedModelError",
    "CapacityError",
    "DGLSystem",
    "DGL_KERNEL_COUNTS",
    "GNNAdvisorSystem",
    "FeatGraphSystem",
    "TLPGNNEngine",
    "SYSTEMS",
]

#: Factory registry in the paper's comparison order.
SYSTEMS = {
    "DGL": DGLSystem,
    "GNNAdvisor": GNNAdvisorSystem,
    "FeatGraph": FeatGraphSystem,
    "TLPGNN": TLPGNNEngine,
}
