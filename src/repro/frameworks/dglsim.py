"""DGL-like baseline: graph convolution via many fine-grained kernels.

DGL composes graph convolution from generic sparse kernels (cuSPARSE SpMM
plus gather/scatter/elementwise glue), materializing every intermediate in
global memory.  The paper counts 6 / 8 / 10 / 18 kernel launches for
GCN / GIN / GraphSAGE / GAT; this model reproduces those pipelines
kernel-for-kernel, with each launch costed by
:func:`~repro.kernels.fusion.streaming_kernel_stats` and the per-kernel
Python dispatch overhead DGL pays ("Runtime − GPU time" in Table 3).
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..graph.csr import CSRGraph
from ..kernels.base import feature_row_sectors, index_span_sectors
from ..kernels.fusion import streaming_kernel_stats
from ..lint import access
from ..lint.access import KernelAccess
from ..lint.effects import LaunchEnvelope, effect_table
from ..mp import SpmmStage, build_model, dgl_stage_plan, model_features
from ..obs.tracer import span
from ..plan import ComputeStep, ExecutionPlan, KernelOp
from .base import GNNSystem

__all__ = ["DGLSystem"]

#: kernel-launch counts the paper measures for DGL
DGL_KERNEL_COUNTS = {"gcn": 6, "gin": 8, "sage": 10, "gat": 18}

#: launch envelope of the streaming glue kernels (8 warps per block — the
#: ``streaming_kernel_stats`` default)
STREAM_ENVELOPE = LaunchEnvelope(threads_per_block=256)


class DGLSystem(GNNSystem):
    """Multi-kernel SpMM-based pipeline with framework dispatch overhead."""

    name = "DGL"
    dispatch_seconds = 60e-6

    #: cuSPARSE SpMM efficiency boost on near-regular degree distributions
    #: (the effect that lets DGL win on OA in the paper).
    spmm_regular_boost: float = 0.55

    def supports(self, model: str) -> bool:
        # spec-driven: any registered UDF whose terms the SpMM pipeline can
        # express — source-side sends (a dst send has no copy_u lowering
        # here) and sum/mean reduces (cuSPARSE has no max-SpMM path).
        f = model_features(model)
        return f is not None and f.feature == "src" and f.op != "max"

    def plan_knobs(self) -> dict:
        return {
            **super().plan_knobs(),
            "spmm_regular_boost": self.spmm_regular_boost,
        }

    # ------------------------------------------------------------------
    def _spmm(
        self,
        graph: CSRGraph,
        feat_dim: int,
        spec: GPUSpec,
        *,
        weighted: bool,
        coo_atomic: bool = False,
    ) -> tuple[KernelStats, ScheduleResult]:
        """SpMM kernel: cuSPARSE CSR row-parallel, or (for the per-edge
        weighted GAT aggregation) the COO scatter path with atomicAdd —
        the reason DGL's GAT is its slowest model on large graphs."""
        with span(
            "kernel.analyze",
            kernel="spmm_coo_atomic" if coo_atomic else "spmm",
        ):
            return self._spmm_stats(
                graph, feat_dim, spec, weighted=weighted, coo_atomic=coo_atomic
            )

    def _spmm_stats(
        self,
        graph: CSRGraph,
        feat_dim: int,
        spec: GPUSpec,
        *,
        weighted: bool,
        coo_atomic: bool = False,
    ) -> tuple[KernelStats, ScheduleResult]:
        n, E = graph.num_vertices, graph.num_edges
        SF = feature_row_sectors(feat_dim)
        amap = make_amap_dim(graph, feat_dim)
        d = graph.in_degrees.astype(np.float64)
        # cuSPARSE row-splits long rows; effectiveness grows when the degree
        # distribution is regular (low skew), which we model as a work
        # discount toward the mean.
        mean = d.mean() if d.size else 0.0
        skew = float(d.std() / (mean + 1e-9)) if d.size else 0.0
        smoothing = self.spmm_regular_boost / (1.0 + skew)
        eff_d = d * (1.0 - smoothing) + mean * smoothing
        cycles = warp_cycles(
            spec,
            instructions=4.0 + eff_d * (2 + -(-feat_dim // 32)),
            requests=3.0 + eff_d * (1 + weighted + -(-feat_dim // 32)),
            sectors=3.0
            + index_span_sectors(graph.indptr, base=amap.indices_base)
            + eff_d * (1 + weighted + SF)
            + SF,
        )
        stats, sched = streaming_kernel_stats(
            "spmm_coo_atomic" if coo_atomic else "spmm",
            E,
            spec,
            read_bytes_per_item=4.0 * (1 + weighted),
            write_bytes_per_item=4.0 * feat_dim * n / max(E, 1),
            gather_touches=E * SF,
            gather_unique_sectors=n * SF,
            instr_per_item=2.0 + SF,
            segment_imbalance=cycles,
            l2_efficiency=0.25,
        )
        if coo_atomic:
            from ..gpusim.atomics import scatter_collision_rate
            from ..gpusim.memory import cached_dram_sectors

            stats.atomic_ops = E * feat_dim
            stats.atomic_collision_rate = scatter_collision_rate(graph.in_degrees)
            stats.atomic_requests = E * (-(-feat_dim // 32))
            stats.atomic_sectors = cached_dram_sectors(
                E * SF, n * SF, int(spec.l2_bytes * 0.25)
            )
            stats.l1_atomic_sectors = E * SF
        return stats, sched

    def _elementwise(
        self,
        name: str,
        items: int,
        spec: GPUSpec,
        *,
        reads: float = 2,
        writes: float = 1,
        workspace_items: float | None = None,
        gather: tuple[int, int] | None = None,
    ) -> tuple[KernelStats, ScheduleResult]:
        g = gather or (0, 0)
        ws = items if workspace_items is None else workspace_items
        with span("kernel.analyze", kernel=name):
            return streaming_kernel_stats(
                name,
                items,
                spec,
                read_bytes_per_item=4.0 * reads,
                write_bytes_per_item=4.0 * writes,
                gather_touches=g[0],
                gather_unique_sectors=g[1],
                instr_per_item=3.0,
                workspace_bytes=int(4 * ws),
                l2_efficiency=0.5,
            )

    # ------------------------------------------------------------------
    def _lower(self, model, graph, X, spec, *, dataset, rng):
        n, E, Fdim = graph.num_vertices, graph.num_edges, X.shape[1]
        nf = n * Fdim
        att_sec = -(-4 * n // 32)
        mp_model = build_model(model, graph, X, rng=rng)
        workload = mp_model.workload()

        ops: list[KernelOp] = []

        # Buffer shapes, accumulated structurally as the stage plan is
        # walked: standard inputs come from the workload, each stage's
        # output extent from its item space ("n" / "e" / "nf") — the
        # declarations the whole-plan shape interpreter (SHAPE001-004)
        # verifies and the liveness analysis sizes the footprint with.
        buf_shapes: dict[str, tuple[int, int]] = {
            "feat": (n, Fdim),
            "indptr": (n + 1, 1),
            "indices": (E, 1),
            "edge_vals": (E, 1),
            "att": (n, 2),
        }

        def shapes_for(rb, wb):
            names = set(rb) | {wb}
            return {b: buf_shapes[b] for b in names if b in buf_shapes}

        def ew(name, items, *, reads=2.0, writes=1.0, gather=None,
               rb=(), wb="tmp:x", gb=()):
            # rb/wb: the named buffers of the effect table — the dataflow
            # the hazard lint walks (rb = read buffers, wb = the one buffer
            # this launch materializes).  gb names the rb subset fetched
            # through per-edge vertex ids rather than streamed — the
            # gathers the access lint classifies as gather-random (ACC002).
            ops.append(
                KernelOp(
                    name=name,
                    kind="modeled",
                    analyze_fn=lambda s, _n=name, _i=items, _r=reads,
                    _w=writes, _g=gather: self._elementwise(
                        _n, _i, s, reads=_r, writes=_w, gather=_g
                    ),
                    effects=effect_table(
                        reads=tuple(rb), writes=(wb,), launch=STREAM_ENVELOPE
                    ),
                    access=KernelAccess(
                        patterns=tuple(
                            [
                                access.gather(b, via="indices")
                                if b in gb
                                else access.lane_stream(b, row="flat")
                                for b in rb
                            ]
                            + [access.lane_stream(wb, role="write", row="flat")]
                        ),
                        shapes=shapes_for(rb, wb),
                    ),
                )
            )

        def spmm(*, weighted, coo_atomic=False, rb=(), wb="tmp:agg"):
            # COO scatter merges every edge contribution with atomicAdd;
            # the cuSPARSE row-parallel path keeps each row's partials in
            # one thread block — exclusive writes, no merge needed
            merge = (
                {"atomics": (wb,), "atomic_ops": E * Fdim}
                if coo_atomic
                else {"writes": (wb,)}
            )
            effects = effect_table(
                reads=tuple(rb), launch=STREAM_ENVELOPE, **merge
            )
            if coo_atomic:
                # rb = (coo pairs, per-edge alphas, dense features): lanes
                # stream edges, gather source rows through the COO pairs,
                # and atomically scatter into destination rows — the
                # ACC002 + ACC004 combination Figure 7 charges DGL's GAT.
                acc = KernelAccess(
                    patterns=(
                        access.lane_stream(rb[0], row="flat"),
                        access.lane_stream(rb[1], row="flat"),
                        access.gather(rb[2], via=rb[0]),
                        access.scatter(wb, via=rb[0], trips=("feat_rounds",)),
                    ),
                    shapes=shapes_for(rb, wb),
                )
            else:
                # rb = (indptr, indices, dense features[, edge scalars]):
                # cuSPARSE's row-parallel path — warp-uniform indices,
                # lane-coalesced feature rows, exclusive row writes; an
                # explicit per-edge scalar streams warp-uniformly alongside
                # the indices.
                pats = [
                    access.broadcast(rb[0]),
                    access.broadcast(rb[1], trips=("degree",)),
                    access.lane_stream(
                        rb[2], row="indirect", via=rb[1],
                        trips=("degree", "feat_rounds"),
                    ),
                ]
                if len(rb) > 3:
                    pats.append(access.broadcast(rb[3], trips=("degree",)))
                pats.append(
                    access.lane_stream(wb, role="write", trips=("feat_rounds",))
                )
                acc = KernelAccess(
                    patterns=tuple(pats), shapes=shapes_for(rb, wb)
                )
            ops.append(
                KernelOp(
                    name="spmm_coo_atomic" if coo_atomic else "spmm",
                    kind="modeled",
                    analyze_fn=lambda s, _w=weighted, _c=coo_atomic: self._spmm(
                        graph, Fdim, s, weighted=_w, coo_atomic=_c
                    ),
                    balance="row-parallel" if not coo_atomic else "coo-scatter",
                    effects=effects,
                    access=acc,
                )
            )

        # The pipeline is no longer hand-written per model: the UDF terms
        # derive the stage list (repro.mp.lower), and this loop only
        # resolves the symbolic sizes and emits each launch.
        items_of = {"n": n, "e": E, "nf": nf}

        def resolve(v):
            if v == "F":
                return Fdim
            if v == "seg":
                return n / max(E, 1)
            return v

        def glue_out_shape(stage):
            # the structural shape rule: a "seg" write lands one value per
            # destination segment, an item-space write one row per item
            # ("nf" launches are (n, F) feature maps), and a multi-column
            # write (coo2csr's edge pairs) widens the row
            if stage.writes == "seg":
                return (n, 1)
            if stage.items == "nf":
                return (n, Fdim)
            rows = items_of[stage.items] if stage.items != "nf" else n
            cols = (
                max(1, int(stage.writes))
                if isinstance(stage.writes, (int, float))
                else 1
            )
            return (int(rows), cols)

        for stage in dgl_stage_plan(mp_model):
            if isinstance(stage, SpmmStage):
                buf_shapes[stage.wb] = (n, Fdim)
                spmm(
                    weighted=stage.weighted,
                    coo_atomic=stage.coo_atomic,
                    rb=stage.rb,
                    wb=stage.wb,
                )
            else:
                buf_shapes[stage.wb] = glue_out_shape(stage)
                ew(
                    stage.name,
                    items_of[stage.items],
                    reads=resolve(stage.reads),
                    writes=resolve(stage.writes),
                    gather=(E, att_sec) if stage.gather else None,
                    rb=stage.rb,
                    wb=stage.wb,
                    gb=stage.gb,
                )

        # cross-check the derived plans against the paper's measured launch
        # counts for the builtin zoo (user-registered models have no pin)
        expected = DGL_KERNEL_COUNTS.get(model)
        if expected is not None:
            assert len(ops) == expected, (
                f"{model}: {len(ops)} kernels != {expected}"
            )
        return ExecutionPlan(
            system=self.name,
            model=model,
            graph_name=graph.name,
            pipeline_name=f"dgl_{model}",
            ops=ops,
            compute=ComputeStep(
                kind="reference",
                workload=workload,
                label=f"dgl_{model}_pipeline",
            ),
            dispatch_seconds=self.dispatch_seconds,
        )


def make_amap_dim(graph: CSRGraph, feat_dim: int):
    """AddressMap helper for pipelines that don't carry a workload object."""
    from ..gpusim.microsim import AddressMap

    return AddressMap.create(graph.num_vertices, graph.num_edges, feat_dim)
