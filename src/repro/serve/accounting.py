"""Latency accounting: per-request records → percentiles → obs metrics.

Latency here is *simulated* end-to-end time: request arrival → last
kernel of its batch finishes on the modeled device.  It decomposes as
batching wait (arrival → dispatch) plus device time (launch serialization
+ execution under contention); the accountant keeps both so experiments
can attribute p99 movements to the batching window vs device queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .workload import Request

__all__ = ["CompletedRequest", "LatencyAccountant"]


@dataclass(frozen=True)
class CompletedRequest:
    """Lifecycle of one served request (simulated seconds)."""

    request: Request
    dispatch_s: float
    finish_s: float
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.request.arrival_s

    @property
    def wait_s(self) -> float:
        """Time spent in the batcher before dispatch."""
        return self.dispatch_s - self.request.arrival_s


class LatencyAccountant:
    """Accumulates completions and summarizes the latency distribution."""

    def __init__(self):
        self.records: list[CompletedRequest] = []

    def record(
        self,
        request: Request,
        *,
        dispatch_s: float,
        finish_s: float,
        batch_size: int,
    ) -> None:
        self.records.append(
            CompletedRequest(
                request=request,
                dispatch_s=dispatch_s,
                finish_s=finish_s,
                batch_size=batch_size,
            )
        )

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def classes(self) -> list[str]:
        """Job classes seen so far (sorted)."""
        return sorted({r.request.compat_key for r in self.records})

    def latencies_ms(self, klass: str | None = None) -> np.ndarray:
        return np.array(
            [
                r.latency_s * 1e3
                for r in self.records
                if klass is None or r.request.compat_key == klass
            ]
        )

    def percentile_ms(self, p: float, klass: str | None = None) -> float:
        lat = self.latencies_ms(klass)
        if lat.size == 0:
            return 0.0
        return float(np.percentile(lat, p))

    def class_stats(self) -> dict[str, dict]:
        """Per-class latency summary (count / p50 / p99 / mean, ms)."""
        out = {}
        for klass in self.classes:
            lat = self.latencies_ms(klass)
            out[klass] = {
                "completed": int(lat.size),
                "p50_ms": float(np.percentile(lat, 50)),
                "p99_ms": float(np.percentile(lat, 99)),
                "mean_ms": float(lat.mean()),
            }
        return out

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_ms().mean()) if self.records else 0.0

    @property
    def avg_batch(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.batch_size for r in self.records]))

    @property
    def mean_wait_ms(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.wait_s for r in self.records])) * 1e3

    def span_s(self) -> float:
        """First arrival → last finish (throughput denominator)."""
        if not self.records:
            return 0.0
        first = min(r.request.arrival_s for r in self.records)
        last = max(r.finish_s for r in self.records)
        return last - first

    @property
    def throughput_rps(self) -> float:
        span = self.span_s()
        return self.completed / span if span > 0 else 0.0
