"""Dynamic micro-batcher: size- and deadline-triggered coalescing.

Requests wait in per-compatibility-class queues.  A batch is emitted when
either trigger fires:

* **size** — a class has ``max_batch`` waiters (emit immediately; a batch
  never exceeds ``max_batch``, which the property tests pin), or
* **deadline** — the oldest waiter in a class has been queued for
  ``window_s`` simulated seconds (emit the partial batch).

The window is the classic latency/throughput knob: a longer window builds
bigger batches (amortizing per-launch overhead — the quantity TLPGNN's
fused single kernel already minimizes and DGL-sim's six-kernel pipeline
pays sixfold) at the price of queueing delay added to every request's
latency.  EXPERIMENTS.md's serving section shows the p99-vs-window trade.

Purely simulated-clock: callers pass ``now_s`` explicitly; the batcher
never reads time itself.
"""

from __future__ import annotations

from collections import deque

from .workload import Request

__all__ = ["MicroBatcher"]

_T_EPS = 1e-12


class MicroBatcher:
    """Coalesce compatible requests into bounded batches."""

    def __init__(self, *, max_batch: int, window_s: float):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.max_batch = max_batch
        self.window_s = window_s
        #: per compat-class FIFO of (added_s, Request)
        self._queues: dict[str, deque] = {}

    # ------------------------------------------------------------------
    def add(self, request: Request, *, now_s: float) -> None:
        """Queue one admitted request at simulated time ``now_s``."""
        self._queues.setdefault(request.compat_key, deque()).append(
            (now_s, request)
        )

    @property
    def num_pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def next_deadline_s(self) -> float | None:
        """When the deadline trigger will next fire (None if empty)."""
        deadlines = [
            q[0][0] + self.window_s for q in self._queues.values() if q
        ]
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    def pop_ready(self, now_s: float) -> list[list[Request]]:
        """Emit every batch whose trigger has fired by ``now_s``."""
        out: list[list[Request]] = []
        for key in list(self._queues):
            q = self._queues[key]
            while len(q) >= self.max_batch:
                out.append([q.popleft()[1] for _ in range(self.max_batch)])
            if q and q[0][0] + self.window_s <= now_s + _T_EPS:
                out.append([item[1] for item in q])
                q.clear()
            if not q:
                del self._queues[key]
        return out

    def flush(self) -> list[list[Request]]:
        """Emit everything still waiting (end-of-trace drain)."""
        out: list[list[Request]] = []
        for q in self._queues.values():
            pending = [item[1] for item in q]
            for i in range(0, len(pending), self.max_batch):
                out.append(pending[i : i + self.max_batch])
        self._queues.clear()
        return out
