"""The inference service: arrivals → admission → batcher → streams.

:class:`InferenceService` runs the whole serving pipeline on the
simulated clock:

1. open-loop arrivals (:mod:`.workload`) are offered to the
   :class:`~repro.serve.admission.AdmissionController` (bounded
   in-system population; overload is shed and counted),
2. admitted requests wait in the :class:`~repro.serve.batcher.
   MicroBatcher` until a size or deadline trigger fires,
3. each emitted batch is planned by the servable model into an ordered
   list of :class:`~repro.gpusim.streams.StreamKernel` launches and
   submitted to the least-loaded stream of the
   :class:`~repro.gpusim.streams.MultiStreamSimulator`,
4. completions flow into the :class:`~repro.serve.accounting.
   LatencyAccountant`; a request finishes when the *last* kernel of its
   batch finishes.

The loop advances the simulator only to *decision times* (next arrival
or next batcher deadline) — between decision times nothing can be
submitted, so event-order fidelity is exact.  No wall clock is read
anywhere (DESIGN.md, "Determinism rules"); identical seeds and configs
reproduce identical reports bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.reqtrace import (
    BatchContext,
    KernelSpan,
    RequestContext,
    get_request_collector,
    pop_batch_context,
    push_batch_context,
)
from ..obs.slo import SLO, SLOMonitor, default_rules
from ..obs.tracer import span
from ..gpusim.streams import MultiStreamSimulator
from .accounting import LatencyAccountant
from .admission import AdmissionController
from .batcher import MicroBatcher
from .workload import Request, bursty_trace, make_requests, poisson_trace

__all__ = ["ServeConfig", "ServeReport", "InferenceService", "serve_trace"]

_T_EPS = 1e-12


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of one serving run."""

    arrival: str = "poisson"  # "poisson" | "bursty"
    rate_hz: float = 2_000.0
    num_requests: int = 200
    job: str = "full"  # "full" | "targets"
    targets_per_request: int = 16
    max_batch: int = 8
    window_s: float = 200e-6
    num_streams: int = 1
    #: max in-system requests (admitted, not yet completed)
    queue_depth: int = 64
    #: device co-residency cap (None = num_streams)
    max_concurrent: int | None = None
    burst_factor: float = 8.0
    burst_len: int = 16
    seed: int = 7
    #: per-request latency objective (simulated ms); None disables SLO
    #: monitoring for the run
    slo_ms: float | None = None
    #: target good fraction of the SLO (0.99 = 1% error budget)
    slo_objective: float = 0.99

    def trace(self, num_vertices: int | None = None) -> list[Request]:
        """Generate this config's deterministic request trace."""
        if self.arrival == "poisson":
            arrivals = poisson_trace(
                self.rate_hz, self.num_requests, seed=self.seed
            )
        elif self.arrival == "bursty":
            arrivals = bursty_trace(
                self.rate_hz,
                self.num_requests,
                burst_factor=self.burst_factor,
                burst_len=self.burst_len,
                seed=self.seed,
            )
        else:
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        return make_requests(
            arrivals,
            job=self.job,
            num_vertices=num_vertices,
            targets_per_request=self.targets_per_request,
            seed=self.seed + 1,
        )


@dataclass
class ServeReport:
    """Outcome of one serving run (all times simulated)."""

    label: str
    config: ServeConfig
    arrived: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    num_batches: int = 0
    avg_batch: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    mean_wait_ms: float = 0.0
    throughput_rps: float = 0.0
    makespan_s: float = 0.0
    avg_concurrency: float = 0.0
    offline_runtime_ms: float | None = None
    #: per-request records for fine-grained assertions
    accountant: LatencyAccountant = field(default_factory=LatencyAccountant)
    #: SLO monitor summary (burn rates, alerts, attribution); None when
    #: the config declares no SLO
    slo: dict | None = None

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0

    def publish(
        self, registry: MetricsRegistry | None = None, **labels: str
    ) -> None:
        """Write the report into a ``repro.obs`` metrics registry
        (the installed one by default; no-op when none is installed)."""
        registry = registry if registry is not None else get_registry()
        if registry is None:
            return
        tags = {"serve": self.label, **labels}
        registry.counter("serve_requests_arrived", **tags).inc(self.arrived)
        registry.counter("serve_requests_admitted", **tags).inc(self.admitted)
        registry.counter("serve_requests_shed", **tags).inc(self.shed)
        registry.counter("serve_requests_completed", **tags).inc(self.completed)
        registry.counter("serve_batches", **tags).inc(self.num_batches)
        registry.gauge("serve_latency_p50_ms", **tags).set(self.p50_ms)
        registry.gauge("serve_latency_p95_ms", **tags).set(self.p95_ms)
        registry.gauge("serve_latency_p99_ms", **tags).set(self.p99_ms)
        registry.gauge("serve_latency_mean_ms", **tags).set(self.mean_ms)
        registry.gauge("serve_throughput_rps", **tags).set(self.throughput_rps)
        registry.gauge("serve_avg_batch", **tags).set(self.avg_batch)
        registry.gauge("serve_avg_concurrency", **tags).set(self.avg_concurrency)
        registry.gauge("serve_offered_rate_hz", **tags).set(self.config.rate_hz)
        if self.accountant.records:
            hist = registry.histogram("serve_latency_ms", **tags)
            for rec in self.accountant.records:
                hist.observe(rec.latency_s * 1e3, exemplar=rec.request.rid)
        if self.slo is not None:
            for klass, stats in self.slo["classes"].items():
                slo_tags = {**tags, "klass": klass}
                registry.gauge("slo_budget_used", **slo_tags).set(
                    stats["budget_used"]
                )
                registry.counter("slo_bad_latency", **slo_tags).inc(
                    stats["bad_latency"]
                )
                registry.counter("slo_bad_shed", **slo_tags).inc(
                    stats["bad_shed"]
                )
            registry.counter("slo_alerts_fired", **tags).inc(
                len(self.slo["alerts"])
            )

    def summary(self) -> str:
        cfg = self.config
        lines = [
            f"serve {self.label}",
            f"  trace      : {cfg.arrival} @ {cfg.rate_hz:,.0f} req/s, "
            f"{cfg.num_requests} requests, job={cfg.job}",
            f"  batching   : max_batch={cfg.max_batch}, "
            f"window={cfg.window_s * 1e6:.0f} us, streams={cfg.num_streams}, "
            f"queue_depth={cfg.queue_depth}",
            f"  admission  : arrived={self.arrived} admitted={self.admitted} "
            f"shed={self.shed} completed={self.completed}",
            f"  batches    : {self.num_batches} "
            f"(avg size {self.avg_batch:.2f}, "
            f"avg device concurrency {self.avg_concurrency:.2f})",
            f"  latency ms : p50={self.p50_ms:.4f} p95={self.p95_ms:.4f} "
            f"p99={self.p99_ms:.4f} mean={self.mean_ms:.4f} "
            f"(batch wait {self.mean_wait_ms:.4f})",
            f"  throughput : {self.throughput_rps:,.1f} req/s over "
            f"{self.makespan_s * 1e3:.3f} ms (simulated)",
        ]
        if self.offline_runtime_ms is not None:
            lines.append(
                f"  offline    : single-request runtime "
                f"{self.offline_runtime_ms:.4f} ms (run_system reference)"
            )
        if self.slo is not None:
            n_alerts = len(self.slo["alerts"])
            worst = max(
                (s["budget_used"] for s in self.slo["classes"].values()),
                default=0.0,
            )
            lines.append(
                f"  slo        : target {cfg.slo_ms:.4f} ms @ "
                f"{cfg.slo_objective:.2%}; budget used {worst:.1%}, "
                f"{n_alerts} burn-rate alert(s)"
            )
        return "\n".join(lines)


class InferenceService:
    """Drives one planner (anything with ``plan(batch) -> [StreamKernel]``)
    through a request trace on the simulated clock."""

    def __init__(self, planner, cfg: ServeConfig, *, label: str | None = None):
        self.planner = planner
        self.cfg = cfg
        self.label = label or getattr(planner, "label", "service")

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServeReport:
        cfg = self.cfg
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        sim = MultiStreamSimulator(
            num_streams=cfg.num_streams, max_concurrent=cfg.max_concurrent
        )
        batcher = MicroBatcher(max_batch=cfg.max_batch, window_s=cfg.window_s)
        admission = AdmissionController(queue_depth=cfg.queue_depth)
        accountant = LatencyAccountant()
        collector = get_request_collector()
        monitor: SLOMonitor | None = None
        if cfg.slo_ms is not None:
            monitor = SLOMonitor(
                [
                    SLO(
                        klass=klass,
                        latency_ms=cfg.slo_ms,
                        objective=cfg.slo_objective,
                    )
                    for klass in sorted({r.compat_key for r in requests})
                    or [cfg.job]
                ],
                default_rules(max(cfg.num_requests, 1) / cfg.rate_hz),
            )
        #: batch id -> [requests, dispatch_s, kernels in flight, BatchContext]
        in_flight: dict[int, list] = {}
        num_batches = 0

        def settle(batch, bctx, *, dispatch_s: float, finish_s: float) -> None:
            """One batch fully finished: account, release, notify."""
            for r in batch:
                accountant.record(
                    r,
                    dispatch_s=dispatch_s,
                    finish_s=finish_s,
                    batch_size=len(batch),
                )
                if monitor is not None:
                    monitor.observe_completion(
                        r.compat_key,
                        at_s=finish_s,
                        latency_ms=(finish_s - r.arrival_s) * 1e3,
                        rid=r.rid,
                    )
            if collector is not None and bctx is not None:
                collector.record_finish(bctx, finish_s=finish_s)
            admission.release(len(batch))

        def absorb_completions() -> None:
            for c in sim.take_completions():
                state = in_flight[c.kernel.tag]
                state[2] -= 1
                if collector is not None and state[3] is not None:
                    collector.record_kernel(
                        state[3],
                        KernelSpan(
                            name=c.kernel.name,
                            stream=c.stream,
                            enqueue_s=c.enqueue_s,
                            launch_start_s=c.launch_start_s,
                            ready_s=c.ready_s,
                            start_s=c.start_s,
                            finish_s=c.finish_s,
                        ),
                    )
                if state[2] == 0:
                    batch, dispatch_s, _, bctx = state
                    settle(
                        batch, bctx, dispatch_s=dispatch_s, finish_s=c.finish_s
                    )
                    del in_flight[c.kernel.tag]

        def dispatch(batch: list[Request], now_s: float) -> None:
            nonlocal num_batches
            bid = num_batches
            num_batches += 1
            bctx = None
            if collector is not None:
                bctx = BatchContext(
                    bid=bid,
                    klass=batch[0].compat_key,
                    rids=tuple(r.rid for r in batch),
                )
                collector.record_dispatch(bctx, dispatch_s=now_s)
                push_batch_context(bctx)
            try:
                plan = self.planner.plan(batch)
            finally:
                if bctx is not None:
                    pop_batch_context()
            if not plan:  # zero-work plan: complete at dispatch time
                settle(batch, bctx, dispatch_s=now_s, finish_s=now_s)
                return
            stream = min(range(cfg.num_streams), key=sim.pending_work_s)
            in_flight[bid] = [batch, now_s, len(plan), bctx]
            for kernel in plan:
                kernel = kernel.with_tag(bid)
                if bctx is not None:
                    kernel = kernel.with_ctx(bctx)
                sim.submit(kernel, stream=stream, at_s=now_s)

        with span(
            "serve.run", label=self.label, requests=len(requests)
        ) as sp:
            i, now = 0, 0.0
            while True:
                decision_times = []
                if i < len(requests):
                    decision_times.append(requests[i].arrival_s)
                deadline = batcher.next_deadline_s()
                if deadline is not None:
                    decision_times.append(deadline)
                if not decision_times:
                    break
                now = max(now, min(decision_times))
                sim.advance_to(now)
                absorb_completions()
                while (
                    i < len(requests)
                    and requests[i].arrival_s <= now + _T_EPS
                ):
                    request = requests[i]
                    i += 1
                    if admission.try_admit():
                        batcher.add(request, now_s=now)
                        if collector is not None:
                            collector.record_admit(
                                RequestContext(request.rid, request.compat_key),
                                arrival_s=request.arrival_s,
                                enqueue_s=now,
                            )
                    else:
                        if collector is not None:
                            collector.record_shed(
                                RequestContext(request.rid, request.compat_key),
                                at_s=now,
                            )
                        if monitor is not None:
                            monitor.observe_shed(
                                request.compat_key, at_s=now, rid=request.rid
                            )
                for batch in batcher.pop_ready(now):
                    dispatch(batch, now)
            sim.drain()
            absorb_completions()
            if in_flight or batcher.num_pending:  # pragma: no cover
                raise RuntimeError("serving loop finished with work in flight")
            if sp is not None:
                sp.add_modeled(sim.makespan_s)
                sp.set(completed=accountant.completed, shed=admission.shed)

        report = ServeReport(
            label=self.label,
            config=cfg,
            arrived=admission.arrived,
            admitted=admission.admitted,
            shed=admission.shed,
            completed=accountant.completed,
            num_batches=num_batches,
            avg_batch=accountant.avg_batch,
            p50_ms=accountant.percentile_ms(50),
            p95_ms=accountant.percentile_ms(95),
            p99_ms=accountant.percentile_ms(99),
            mean_ms=accountant.mean_ms,
            mean_wait_ms=accountant.mean_wait_ms,
            throughput_rps=accountant.throughput_rps,
            makespan_s=sim.makespan_s,
            avg_concurrency=sim.avg_concurrency(),
            offline_runtime_ms=(
                self.planner.offline_runtime_s * 1e3
                if hasattr(self.planner, "offline_runtime_s")
                else None
            ),
            accountant=accountant,
        )
        if monitor is not None:
            end_s = max(
                sim.makespan_s,
                requests[-1].arrival_s if requests else 0.0,
            )
            report.slo = monitor.summary(end_s)
        if report.arrived != report.admitted + report.shed:  # pragma: no cover
            raise RuntimeError("admission conservation violated")
        if report.admitted != report.completed:  # pragma: no cover
            raise RuntimeError("completion conservation violated")
        return report


def serve_trace(planner, cfg: ServeConfig, *, label: str | None = None) -> ServeReport:
    """Generate ``cfg``'s trace and serve it through ``planner``."""
    num_vertices = getattr(
        getattr(planner, "graph", None), "num_vertices", None
    )
    requests = cfg.trace(num_vertices)
    return InferenceService(planner, cfg, label=label).run(requests)
