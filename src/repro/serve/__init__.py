"""Simulated online inference serving for the modeled GPU.

The subsystem the ROADMAP's north star ("serve heavy traffic") needs:
open-loop request workloads, a dynamic micro-batcher, bounded-queue
admission control, multi-stream execution on the
:class:`~repro.gpusim.streams.MultiStreamSimulator`, and latency
accounting wired into ``repro.obs``.  Entry points:

* :class:`ServableModel` — wrap a framework (TLPGNN / DGL-sim /
  GNNAdvisor) + model + dataset into a batch planner,
* :func:`serve_trace` / :class:`InferenceService` — run a request trace
  through the whole pipeline on the simulated clock,
* ``repro serve`` (CLI) and :func:`repro.bench.serving.serving_scenario`
  (the cross-system comparison under identical traces).
"""

from .accounting import CompletedRequest, LatencyAccountant
from .adapter import ServableModel, plan_from_timing
from .admission import AdmissionController
from .batcher import MicroBatcher
from .service import InferenceService, ServeConfig, ServeReport, serve_trace
from .workload import (
    JOB_KINDS,
    Request,
    bursty_trace,
    make_requests,
    poisson_trace,
)

__all__ = [
    "Request",
    "JOB_KINDS",
    "poisson_trace",
    "bursty_trace",
    "make_requests",
    "MicroBatcher",
    "AdmissionController",
    "LatencyAccountant",
    "CompletedRequest",
    "ServableModel",
    "plan_from_timing",
    "ServeConfig",
    "ServeReport",
    "InferenceService",
    "serve_trace",
]
