"""Servable adapter: a (system, model, graph) triple the service can plan.

The adapter bridges the offline world (a :class:`~repro.frameworks.base.
GNNSystem` profiling one convolution) and the online one (the stream
simulator executing micro-batches):

* it runs the system's lower → execute → analyze pipeline (which routes
  through the process-wide :class:`~repro.plan.PlanCache`, so a warm serve
  pass reuses the memoized :class:`~repro.gpusim.costmodel.PipelineTiming`
  and skips re-analysis entirely), then
* converts each pipeline kernel into a :class:`~repro.gpusim.streams.
  StreamKernel` via :func:`~repro.gpusim.costmodel.stream_demands`, with
  the framework dispatch cost (the single source of truth is the system's
  ``dispatch_seconds``, applied once in ``repro.plan.cost_plan``) folded
  into the launch prefix.

The conversion is exact by construction: summing ``launch + alone`` over
the plan reproduces the offline ``runtime_seconds``, which is what makes
the streams=1 / batch=1 parity acceptance test hold to the femtosecond.

Batch semantics
---------------
* ``job="full"`` — a batch of B requests is one pipeline launch over the
  full graph with B feature sets stacked: kernel *demands* scale by B,
  launches are paid once per pipeline kernel (the amortization the
  batcher exists to exploit).  The B=1 pipeline is profiled once and
  cached; planning a batch is then O(#kernels).
* ``job="targets"`` — the batch's target sets are unioned, the union's
  in-edge subgraph is extracted (same LUT-relabel pattern as
  :func:`repro.multigpu.distribute_conv`), and the system is profiled on
  that subgraph, so batch cost grows sublinearly when targets overlap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..frameworks.base import GNNSystem, UnsupportedModelError
from ..graph.csr import CSRGraph, from_edge_list
from ..graph.datasets import Dataset
from ..gpusim.config import V100, GPUSpec
from ..gpusim.costmodel import PipelineTiming, stream_demands
from ..gpusim.streams import StreamKernel
from .workload import Request

__all__ = ["ServableModel", "plan_from_timing"]


def plan_from_timing(
    timing: PipelineTiming, *, scale: float = 1.0
) -> list[StreamKernel]:
    """Convert an offline pipeline timing into an ordered stream plan.

    ``scale`` multiplies the device demands (batch size for full-graph
    jobs); host-side launch costs are per launch and do not scale.  The
    per-pipeline framework dispatch cost is spread evenly over the
    kernels so the plan's serialized total stays ``launch_seconds +
    scale * gpu_seconds`` exactly.
    """
    kernels = timing.kernels
    if not kernels:
        return []
    fw_share = timing.framework_seconds / len(kernels)
    plan = []
    for k in kernels:
        comp, mem = stream_demands(k)
        plan.append(
            StreamKernel(
                name=k.name,
                comp_seconds=comp * scale,
                mem_seconds=mem * scale,
                launch_seconds=k.launch_seconds + fw_share,
            )
        )
    return plan


class ServableModel:
    """One deployable (system, model, dataset) unit behind the service."""

    def __init__(
        self,
        system: GNNSystem,
        model: str,
        data: Dataset | CSRGraph,
        *,
        feat_dim: int = 32,
        spec: GPUSpec = V100,
        seed: int = 7,
        opt: str | None = None,
    ):
        model = model.lower()
        if not system.supports(model):
            raise UnsupportedModelError(
                f"{system.name} does not implement {model}"
            )
        self.system = system
        self.model = model
        self.data = data
        self.graph = data.graph if isinstance(data, Dataset) else data
        self.spec = spec
        self.seed = seed
        #: optimizer level forwarded to every ``system.run`` call (None =
        #: the pre-optimizer path); at "search" a warm deploy picks up
        #: persisted tuner decisions through the TunedPlanStore
        self.opt = opt
        # Same feature initialization as bench.harness.make_features (kept
        # local: bench imports the serve scenario, so serve must not import
        # bench back).
        rng = np.random.default_rng(seed)
        self.X = rng.standard_normal(
            (self.graph.num_vertices, feat_dim), dtype=np.float32
        )
        self._full_timing: PipelineTiming | None = None
        #: plan identity of the last offline profile (cached flag included)
        self.plan_info = None

    @property
    def label(self) -> str:
        return f"{self.system.name}/{self.model}/{self.graph.name}"

    # ------------------------------------------------------------------
    @property
    def offline_timing(self) -> PipelineTiming:
        """The cached B=1 full-graph pipeline timing (profiled on demand)."""
        if self._full_timing is None:
            result = self.system.run(
                self.model, self.data, self.X, self.spec, opt=self.opt
            )
            self._full_timing = result.report.timing
            self.plan_info = result.plan
        return self._full_timing

    @property
    def offline_runtime_s(self) -> float:
        """Offline single-request modeled latency (the parity reference)."""
        return self.offline_timing.runtime_seconds

    # ------------------------------------------------------------------
    def plan(self, batch: Sequence[Request]) -> list[StreamKernel]:
        """The ordered kernel launches that serve this micro-batch."""
        if not batch:
            raise ValueError("cannot plan an empty batch")
        jobs = {r.job for r in batch}
        if len(jobs) != 1:
            raise ValueError(f"mixed-job batch: {sorted(jobs)}")
        job = jobs.pop()
        if job == "full":
            return plan_from_timing(self.offline_timing, scale=float(len(batch)))
        targets = np.unique(
            np.concatenate([np.asarray(r.targets, dtype=np.int64) for r in batch])
        )
        sub, X_sub = self._target_subgraph(targets)
        result = self.system.run(
            self.model, sub, X_sub, self.spec, opt=self.opt
        )
        return plan_from_timing(result.report.timing)

    def _target_subgraph(
        self, targets: np.ndarray
    ) -> tuple[CSRGraph, np.ndarray]:
        """In-edge subgraph of ``targets``: every edge u→t with t a target,
        over the vertex set targets ∪ sources (LUT-relabelled)."""
        indptr, indices = self.graph.indptr, self.graph.indices
        starts = indptr[targets]
        counts = indptr[targets + 1] - starts
        total = int(counts.sum())
        # CSR row gather without a Python loop over targets
        offsets = np.repeat(counts.cumsum() - counts, counts)
        flat = np.repeat(starts, counts) + (np.arange(total) - offsets)
        src = indices[flat]
        dst = np.repeat(targets, counts)
        vertices = np.unique(np.concatenate([targets, src]))
        lut = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        lut[vertices] = np.arange(vertices.size)
        sub = from_edge_list(
            lut[src], lut[dst], vertices.size, name=f"{self.graph.name}_serve"
        )
        return sub, np.ascontiguousarray(self.X[vertices])
