"""Admission control: bounded in-system population with counted drops.

An open-loop arrival process has no intrinsic backpressure — if the
offered rate exceeds the service rate the queue grows without bound and
every latency percentile diverges.  The admission controller bounds the
*in-system* request count (admitted but not yet completed, i.e. waiting
in the batcher plus in flight on the device); arrivals beyond the bound
are shed immediately and counted, never silently dropped.  The serving
loop enforces the conservation law the property tests pin::

    arrived == admitted + shed        (at every instant)
    admitted == completed             (after drain)
"""

from __future__ import annotations

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-queue admission with shed accounting."""

    def __init__(self, *, queue_depth: int):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self.arrived = 0
        self.admitted = 0
        self.shed = 0
        self.in_system = 0

    def try_admit(self) -> bool:
        """Offer one arrival; True = admitted, False = shed (counted)."""
        self.arrived += 1
        if self.in_system >= self.queue_depth:
            self.shed += 1
            return False
        self.admitted += 1
        self.in_system += 1
        return True

    def release(self, count: int = 1) -> None:
        """Mark ``count`` admitted requests completed."""
        if count < 0 or count > self.in_system:
            raise ValueError(
                f"release({count}) with {self.in_system} in system"
            )
        self.in_system -= count

    @property
    def saturated(self) -> bool:
        return self.in_system >= self.queue_depth
