"""Synthetic open-loop request workloads for the serving simulator.

Online inference traffic is *open loop*: clients fire requests on their
own schedule regardless of how fast the server drains them, which is what
makes queueing, batching, and admission control matter.  Two arrival
processes cover the regimes the serving literature cares about:

* :func:`poisson_trace` — memoryless arrivals at a constant offered rate
  (the M/G/1-style baseline).
* :func:`bursty_trace` — arrivals clustered into bursts (a modulated
  Poisson process): within a burst the instantaneous rate is
  ``burst_factor`` times higher, with idle gaps sized so the *mean*
  offered rate still equals ``rate_hz``.  Bursts are what expose
  tail-latency differences between systems whose per-launch overheads
  differ (TLPGNN vs DGL-sim).

Both are pure functions of ``seed`` (via :func:`repro.graph.generators.
rng_from`) — no wall clock anywhere, per DESIGN.md's determinism rules.

A :class:`Request` is one inference job: either the full graph (``job=
"full"``, e.g. recomputing all embeddings) or a vertex set (``job=
"targets"``, e.g. scoring one user's neighbourhood).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.generators import rng_from

__all__ = [
    "Request",
    "poisson_trace",
    "bursty_trace",
    "make_requests",
    "JOB_KINDS",
]

#: supported per-request job kinds
JOB_KINDS = ("full", "targets")


@dataclass(frozen=True)
class Request:
    """One inference request in the open-loop trace."""

    rid: int
    arrival_s: float
    #: "full" = whole-graph inference; "targets" = the given vertex set
    job: str = "full"
    #: target vertices (sorted, deduplicated) when ``job == "targets"``
    targets: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.job not in JOB_KINDS:
            raise ValueError(f"job must be one of {JOB_KINDS}, got {self.job!r}")
        if self.job == "targets" and not self.targets:
            raise ValueError("targets job needs a non-empty target set")

    @property
    def compat_key(self) -> str:
        """Batching compatibility class: requests coalescible into one
        kernel launch share a key (same job kind over the same graph)."""
        return self.job


def poisson_trace(
    rate_hz: float,
    num_requests: int,
    *,
    seed: int | np.random.Generator | None = 0,
    start_s: float = 0.0,
) -> np.ndarray:
    """Arrival times of a Poisson process at ``rate_hz`` (simulated s)."""
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    rng = rng_from(seed)
    gaps = rng.exponential(1.0 / rate_hz, size=num_requests)
    return start_s + np.cumsum(gaps)


def bursty_trace(
    rate_hz: float,
    num_requests: int,
    *,
    burst_factor: float = 8.0,
    burst_len: int = 16,
    seed: int | np.random.Generator | None = 0,
    start_s: float = 0.0,
) -> np.ndarray:
    """Burst-modulated arrivals with mean offered rate ``rate_hz``.

    Requests come in runs of ``burst_len`` whose internal gaps are
    exponential at ``burst_factor * rate_hz``; each new burst is preceded
    by an idle gap whose rate is chosen so the long-run mean inter-arrival
    time is exactly ``1 / rate_hz``.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must be > 1")
    if burst_len < 1:
        raise ValueError("burst_len must be >= 1")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    rng = rng_from(seed)
    in_burst_rate = burst_factor * rate_hz
    gaps = rng.exponential(1.0 / in_burst_rate, size=num_requests)
    # mean gap = 1/(bf*rate) + idle_mean/burst_len == 1/rate
    idle_mean = burst_len * (burst_factor - 1.0) / in_burst_rate
    if num_requests:
        burst_starts = np.arange(num_requests) % burst_len == 0
        burst_starts[0] = False  # the first burst starts at the trace origin
        n_idle = int(burst_starts.sum())
        gaps[burst_starts] += rng.exponential(idle_mean, size=n_idle)
    return start_s + np.cumsum(gaps)


def make_requests(
    arrivals: np.ndarray,
    *,
    job: str = "full",
    num_vertices: int | None = None,
    targets_per_request: int = 16,
    seed: int | np.random.Generator | None = 0,
) -> list[Request]:
    """Materialize a trace of arrival times into :class:`Request` objects.

    For ``job="targets"`` each request draws ``targets_per_request``
    vertices uniformly (deduplicated, so the set may be slightly smaller)
    from ``num_vertices``.
    """
    if job not in JOB_KINDS:
        raise ValueError(f"job must be one of {JOB_KINDS}, got {job!r}")
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if job == "full":
        return [
            Request(rid=i, arrival_s=float(t), job="full")
            for i, t in enumerate(arrivals)
        ]
    if num_vertices is None or num_vertices < 1:
        raise ValueError("targets job needs num_vertices")
    if targets_per_request < 1:
        raise ValueError("targets_per_request must be >= 1")
    rng = rng_from(seed)
    out = []
    for i, t in enumerate(arrivals):
        draw = rng.integers(0, num_vertices, size=targets_per_request)
        out.append(
            Request(
                rid=i,
                arrival_s=float(t),
                job="targets",
                targets=tuple(np.unique(draw).tolist()),
            )
        )
    return out
