"""Multi-GPU graph convolution (the paper's future work, as a library).

Implements the partition → per-device convolution → halo exchange pipeline
the paper sketches ("our techniques can also be deployed on a multi-GPU
setting with the help of graph partition techniques, e.g., METIS"):

1. k-way partition of the vertex set (:func:`repro.graph.partition_kway`,
   the METIS substitute),
2. per-device local CSR over (local ∪ halo) vertices,
3. the unchanged TLPGNN kernel per device, each profiled on its own
   modeled GPU,
4. halo feature exchange accounted as interconnect traffic (NVLink-class
   bandwidth by default).

Works for any weighted-sum workload whose edge weights factorize into
per-vertex scalars (GCN's symmetric norm, GIN's unweighted sum, SAGE's
mean via post-division) — the factorization is what keeps the exchange to
one feature row per halo vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph.csr import CSRGraph, from_edge_list
from .graph.partition import Partition, partition_kway
from .gpusim.config import V100, GPUSpec
from .kernels.tlpgnn import TLPGNNKernel
from .models.convspec import ConvWorkload
from .plan import analyze_plan, cost_plan, execute_plan, plan_for_kernel, time_parts

__all__ = ["DeviceShard", "MultiGPUResult", "distribute_conv"]

#: NVLink-class device-to-device bandwidth (V100 NVLink2: ~50 GB/s per link)
NVLINK_BYTES_PER_S = 50e9


@dataclass(frozen=True)
class DeviceShard:
    """One device's slice of the distributed convolution."""

    device: int
    local_vertices: np.ndarray
    halo_vertices: np.ndarray
    local_graph: CSRGraph
    gpu_seconds: float

    @property
    def num_local(self) -> int:
        return int(self.local_vertices.size)

    @property
    def num_halo(self) -> int:
        return int(self.halo_vertices.size)


@dataclass
class MultiGPUResult:
    """Distributed output + per-device profiles + exchange accounting."""

    output: np.ndarray
    shards: list[DeviceShard] = field(default_factory=list)
    halo_bytes: int = 0
    exchange_seconds: float = 0.0

    @property
    def num_devices(self) -> int:
        return len(self.shards)

    @property
    def conv_seconds(self) -> float:
        """Critical-path device time (devices run concurrently)."""
        return max((s.gpu_seconds for s in self.shards), default=0.0)

    @property
    def total_seconds(self) -> float:
        return self.conv_seconds + self.exchange_seconds

    @property
    def load_balance(self) -> float:
        """max/mean ratio of per-device conv time (1.0 = perfect)."""
        times = [s.gpu_seconds for s in self.shards]
        mean = float(np.mean(times)) if times else 0.0
        return max(times) / mean if mean > 0 else 1.0


def distribute_conv(
    graph: CSRGraph,
    X: np.ndarray,
    num_devices: int,
    *,
    src_scale: np.ndarray | None = None,
    dst_scale: np.ndarray | None = None,
    spec: GPUSpec = V100,
    partition: Partition | None = None,
    kernel: TLPGNNKernel | None = None,
    seed: int = 0,
) -> MultiGPUResult:
    """Run ``out[u] = dst_scale[u] * Σ_v src_scale[v] X[v]`` on k devices.

    ``src_scale``/``dst_scale`` default to ones (plain GIN-style sum).  GCN's
    symmetric norm passes ``1/sqrt(d+1)`` for both; the self-loop term is the
    caller's (it is embarrassingly local).
    """
    X = np.ascontiguousarray(X, dtype=np.float32)
    n = graph.num_vertices
    if X.shape[0] != n:
        raise ValueError("X rows must match vertex count")
    ones = np.ones(n, dtype=np.float32)
    src_scale = ones if src_scale is None else src_scale.astype(np.float32)
    dst_scale = ones if dst_scale is None else dst_scale.astype(np.float32)
    partition = partition or partition_kway(graph, num_devices, seed=seed)
    if partition.k != num_devices:
        raise ValueError("partition.k must equal num_devices")
    kernel = kernel or TLPGNNKernel()

    src_all, dst_all = graph.edge_list()
    scaled = X * src_scale[:, None]
    out = np.zeros_like(X)
    shards: list[DeviceShard] = []
    halo_bytes = 0
    for dev in range(num_devices):
        local = partition.part_vertices(dev)
        mask = partition.assignment[dst_all] == dev
        src, dst = src_all[mask], dst_all[mask]
        halo = np.unique(src[partition.assignment[src] != dev])
        halo_bytes += int(halo.size) * X.shape[1] * 4
        vertices = np.unique(np.concatenate([local, halo]))
        lut = np.full(n, -1, dtype=np.int64)
        lut[vertices] = np.arange(vertices.size)
        local_graph = from_edge_list(
            lut[src], lut[dst], vertices.size, name=f"dev{dev}"
        )
        workload = ConvWorkload(
            graph=local_graph,
            X=np.ascontiguousarray(scaled[vertices]),
            reduce="sum",
        )
        plan = plan_for_kernel(
            kernel,
            workload,
            system="multigpu",
            pipeline_name=f"multigpu_dev{dev}",
        )
        shard_out = execute_plan(plan)
        pipeline, parts = analyze_plan(plan, spec)
        timing = cost_plan(pipeline, time_parts(parts, spec), spec)
        mine = lut[local]
        out[local] += shard_out[mine]
        shards.append(
            DeviceShard(
                device=dev,
                local_vertices=local,
                halo_vertices=halo,
                local_graph=local_graph,
                gpu_seconds=timing.gpu_seconds,
            )
        )
    out *= dst_scale[:, None]
    return MultiGPUResult(
        output=out,
        shards=shards,
        halo_bytes=halo_bytes,
        exchange_seconds=halo_bytes / NVLINK_BYTES_PER_S,
    )
