"""Content-addressed equivalence certificates (EQ004).

A certificate is the persistable witness that two plans were compared
and found equivalent: the two normal-form digests, the verdict, and a
``cert_id`` that is the sha256 of the canonical JSON payload — so any
edit to a persisted certificate (a hand-tweaked knob file, a truncated
store, a version from a previous grammar) is detectable without
re-deriving anything.  ``verify_certificate`` re-checks all of it and,
when given the live plan(s), re-normalizes them against the recorded
digests so a *stale* certificate (the plan moved on) is as invalid as a
tampered one.

Certificates ride alongside :class:`~repro.opt.tuner.TunedPlanStore`
entries and :class:`~repro.plan.cache.PlanCacheEntry` values; the
``serve --certified`` preflight refuses tuned plans whose certificate
does not verify.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..lint import Finding, make_finding
from .equiv import (
    EQUIVALENT_VERDICTS,
    EquivalenceDecision,
    decide_equivalence,
)
from .normal import PlanNormalForm, normalize_plan

__all__ = [
    "CERT_VERSION",
    "EquivalenceCertificate",
    "CertificationResult",
    "certify",
    "certify_plans",
    "verify_certificate",
]

#: bump on any change to the normal-form grammar or the payload fields —
#: certificates from older versions are stale by definition (EQ004)
CERT_VERSION = 1

_PAYLOAD_FIELDS = (
    "version",
    "subject",
    "reference",
    "subject_digest",
    "reference_digest",
    "verdict",
)


def _content_address(payload: dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class EquivalenceCertificate:
    """One issued certificate: subject plan ≡ reference plan."""

    subject: str  # "System/model on graph" label of the certified plan
    reference: str  # label of the plan it was proved equivalent to
    subject_digest: str  # normal-form digest of the subject
    reference_digest: str  # normal-form digest of the reference
    verdict: str  # "equal" | "equivalent-unordered"
    version: int = CERT_VERSION

    def payload(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "subject": self.subject,
            "reference": self.reference,
            "subject_digest": self.subject_digest,
            "reference_digest": self.reference_digest,
            "verdict": self.verdict,
        }

    @property
    def cert_id(self) -> str:
        """The content address: sha256 over the canonical payload."""
        return _content_address(self.payload())

    def as_dict(self) -> dict[str, Any]:
        doc = self.payload()
        doc["cert_id"] = self.cert_id
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "EquivalenceCertificate":
        return cls(
            subject=str(doc["subject"]),
            reference=str(doc["reference"]),
            subject_digest=str(doc["subject_digest"]),
            reference_digest=str(doc["reference_digest"]),
            verdict=str(doc["verdict"]),
            version=int(doc["version"]),
        )


@dataclass(frozen=True)
class CertificationResult:
    """Decision + (on equivalence) the issued certificate."""

    decision: EquivalenceDecision
    certificate: EquivalenceCertificate | None
    subject_nf: PlanNormalForm
    reference_nf: PlanNormalForm

    @property
    def certified(self) -> bool:
        return self.certificate is not None


def certify(
    subject_nf: PlanNormalForm, reference_nf: PlanNormalForm
) -> CertificationResult:
    """Decide equivalence of two normal forms; issue a certificate if
    the verdict allows one (mismatch/unknown certify nothing)."""
    decision = decide_equivalence(reference_nf, subject_nf)
    certificate = None
    if decision.verdict in EQUIVALENT_VERDICTS:
        certificate = EquivalenceCertificate(
            subject=subject_nf.label,
            reference=reference_nf.label,
            subject_digest=subject_nf.digest,
            reference_digest=reference_nf.digest,
            verdict=decision.verdict,
        )
    return CertificationResult(
        decision=decision,
        certificate=certificate,
        subject_nf=subject_nf,
        reference_nf=reference_nf,
    )


def certify_plans(subject_plan: Any, reference_plan: Any) -> CertificationResult:
    """Normalize two live plans and certify the subject against the
    reference (the common entry point: optimized vs lowered, tuned vs
    safe-optimized)."""
    return certify(normalize_plan(subject_plan), normalize_plan(reference_plan))


def verify_certificate(
    doc: Any,
    *,
    subject_plan: Any | None = None,
    reference_plan: Any | None = None,
) -> list[Finding]:
    """Re-check a persisted certificate document (EQ004 findings).

    Returns an empty list iff the document is well formed, its content
    address matches its payload (not tampered), its version is current
    (not stale), its recorded verdict is one a certificate may carry,
    and — when live plans are supplied — the recorded digests still
    match the plans' re-derived normal forms.
    """
    if not isinstance(doc, dict):
        return [
            make_finding(
                "EQ004",
                "certificate is not a JSON object "
                f"(got {type(doc).__name__})",
            )
        ]
    missing = [k for k in (*_PAYLOAD_FIELDS, "cert_id") if k not in doc]
    if missing:
        return [
            make_finding(
                "EQ004",
                f"certificate is missing field(s) {missing} — truncated "
                "or hand-edited",
            )
        ]
    findings: list[Finding] = []
    payload = {k: doc[k] for k in _PAYLOAD_FIELDS}
    expected = _content_address(payload)
    if doc["cert_id"] != expected:
        findings.append(
            make_finding(
                "EQ004",
                "tampered certificate: content address "
                f"{str(doc['cert_id'])[:12]}.. does not match its payload "
                f"(expected {expected[:12]}..)",
            )
        )
    if doc["version"] != CERT_VERSION:
        findings.append(
            make_finding(
                "EQ004",
                f"stale certificate: version {doc['version']} != current "
                f"{CERT_VERSION} (normal-form grammar changed; re-certify)",
            )
        )
    if doc["verdict"] not in EQUIVALENT_VERDICTS:
        findings.append(
            make_finding(
                "EQ004",
                f"certificate records non-equivalent verdict "
                f"{doc['verdict']!r} — no such certificate is ever issued",
            )
        )
    if findings:
        return findings  # digests are meaningless under a broken envelope
    if subject_plan is not None:
        digest = normalize_plan(subject_plan).digest
        if digest != doc["subject_digest"]:
            findings.append(
                make_finding(
                    "EQ004",
                    "stale certificate: the subject plan's normal form "
                    f"({digest[:12]}..) no longer matches the certified "
                    f"digest ({str(doc['subject_digest'])[:12]}..)",
                )
            )
    if reference_plan is not None:
        digest = normalize_plan(reference_plan).digest
        if digest != doc["reference_digest"]:
            findings.append(
                make_finding(
                    "EQ004",
                    "stale certificate: the reference plan's normal form "
                    f"({digest[:12]}..) no longer matches the certified "
                    f"digest ({str(doc['reference_digest'])[:12]}..)",
                )
            )
    return findings
