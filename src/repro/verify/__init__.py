"""Translation validation over ExecutionPlans: normal forms, equivalence
decisions, and content-addressed certificates.

The optimizer's legality story used to rest on *test-time* evidence: 24
golden cells asserting byte-identical outputs.  This package makes the
semantic claim *statically checkable per plan* — TLPGNN's design space
(and every rewrite in :mod:`repro.opt.rewrites`) changes performance,
never semantics, and that is now a theorem checked at rewrite time:

* :mod:`~repro.verify.normal` — canonicalize a plan into a schedule-free
  dataflow normal form: per-output producer terms from the ``repro.mp``
  term algebra (gather source, scale term, reduction operator, self
  term, output permutation) plus the **ordering class** derived from the
  kernel-mapping effect tables (exclusive or idempotent merges are
  exact; atomic float sums form a reassociation class),
* :mod:`~repro.verify.equiv` — decide equivalence of two normal forms
  modulo legal reassociation, with a minimal-diverging-term explanation
  (verdicts: equal / equivalent-unordered / mismatch / unknown; finding
  codes EQ001-EQ003),
* :mod:`~repro.verify.certificate` — issue and re-verify content-
  addressed :class:`EquivalenceCertificate` documents (EQ004 for stale
  or tampered certificates),
* :mod:`~repro.verify.api` — the grid drivers behind ``repro verify``,
  the ``verify-smoke`` CI job, and the ``serve --certified`` preflight.

Layering mirrors :mod:`repro.lint`: nothing here imports
:mod:`repro.plan` or :mod:`repro.opt` at module scope — plans are
duck-typed, and the optimizer imports *us* for its third gate.  The
static verdicts are replay-validated by the Hypothesis differential
fuzzer (tests/verify/test_differential_fuzz.py): on every generated
(spec, pipeline) pair the certificate verdict must agree with the
executed byte comparison.
"""

from .api import (
    CellCertification,
    TunedPlanCheck,
    certify_grid,
    certify_optimized,
    check_tuned_certificate,
)
from .certificate import (
    CERT_VERSION,
    CertificationResult,
    EquivalenceCertificate,
    certify,
    certify_plans,
    verify_certificate,
)
from .equiv import (
    EQUIVALENT_VERDICTS,
    VERDICTS,
    EquivalenceDecision,
    decide_equivalence,
)
from .normal import (
    ORDER_EXACT,
    ORDER_FLOAT_SUM,
    ORDERING_CLASSES,
    PlanNormalForm,
    ProducerTerm,
    normalize_plan,
    plan_label,
)

__all__ = [
    "CERT_VERSION",
    "EQUIVALENT_VERDICTS",
    "ORDER_EXACT",
    "ORDER_FLOAT_SUM",
    "ORDERING_CLASSES",
    "VERDICTS",
    "CellCertification",
    "CertificationResult",
    "EquivalenceCertificate",
    "EquivalenceDecision",
    "PlanNormalForm",
    "ProducerTerm",
    "TunedPlanCheck",
    "certify",
    "certify_grid",
    "certify_optimized",
    "certify_plans",
    "check_tuned_certificate",
    "decide_equivalence",
    "normalize_plan",
    "plan_label",
    "verify_certificate",
]
