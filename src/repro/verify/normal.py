"""Schedule-free dataflow normal form of an ExecutionPlan.

Translation validation needs a canonical object two plans can be compared
through — one that keeps everything that decides *what* a plan computes
and forgets everything that only decides *how fast* it computes it.  The
normal form here is a set of per-output-buffer **producer terms** built
from the two sources of truth the repo already maintains:

* the :mod:`repro.mp` term algebra, reified numerically in the compute
  step's :class:`~repro.models.convspec.ConvWorkload` (which feature rows
  are gathered, through which graph, scaled by what, reduced with which
  operator, plus the optional self term and output permutation), and
* the derived :class:`~repro.mp.derive.KernelMapping` effect tables,
  which decide the **ordering class** — whether the reduction is merged
  by exclusive owner-computes writes (bit-exact by construction) or by
  atomic read-modify-writes (bit-exact only for idempotent merges like
  ``max``; a *reassociation class* for float sums, cf. DET001).

Everything schedule-like — lane counts, warps per block, register
caching, launch geometry, kernel identity, fusion structure, the op list
beyond its dataflow closure — is deliberately absent: two plans that
differ only in those have the *same* normal form, which is exactly the
legality claim of every rewrite in :mod:`repro.opt.rewrites`.

Like the lint package this module duck-types its plan (it never imports
:mod:`repro.plan`); it depends only on :mod:`repro.lint` and numpy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..lint import Finding, is_transient, make_finding

__all__ = [
    "ORDER_EXACT",
    "ORDER_FLOAT_SUM",
    "ORDERING_CLASSES",
    "ProducerTerm",
    "PlanNormalForm",
    "normalize_plan",
    "plan_label",
]

#: the merge discipline is a total order per unit: exclusive writes (or an
#: idempotent atomic merge) reproduce the reference reduction bit for bit
ORDER_EXACT = "exact"
#: atomic float accumulation: the result is defined only up to the
#: reassociation class of the reduction (DET001's warning, as a class)
ORDER_FLOAT_SUM = "float-sum-reassoc"

ORDERING_CLASSES = (ORDER_EXACT, ORDER_FLOAT_SUM)

#: non-transient buffers canonicalized to their semantic class: every
#: legal mapping rebind stays inside one class (CSR vs COO vs grouped
#: traversal all read "the graph"), so the dataflow closure is invariant
#: under the optimizer's kernel swaps
_SOURCE_CLASSES = {
    "indptr": "graph",
    "indices": "graph",
    "group_table": "graph",
    "feat": "feat",
    "edge_vals": "edge-scalar",
    "att": "att",
}

#: reductions whose atomic merge is idempotent — merge order cannot
#: change the result, so atomics still land in the exact ordering class
_IDEMPOTENT_REDUCES = ("max",)


def _array_hash(arr: Any) -> str | None:
    """Content sha256 of an ndarray (shape/dtype folded in), None-safe."""
    if arr is None:
        return None
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(repr((a.shape, str(a.dtype))).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def plan_label(plan: Any) -> str:
    """The same "System/model on graph" label the lint reports use."""
    return f"{plan.system}/{plan.model} on {plan.graph_name}"


@dataclass(frozen=True)
class ProducerTerm:
    """What one output buffer *is*, schedule-free.

    ``out = output_perm( reduce( scale * gather(feature via graph) )
    [+ self_term] )`` — each component identified by content hash so
    equality of terms is equality of the computation, not of the code
    path that produced it.
    """

    buffer: str
    #: CSR content fingerprint of the gathered-through graph
    graph: str
    #: content hash of the dense feature matrix
    feature: str
    #: the send-side scalar term: ("unit",) | ("edge-scalar", hash) |
    #: ("attention", hash(att_src), hash(att_dst), repr(slope))
    scale: tuple[str, ...]
    #: content hash of the per-vertex self coefficient (None = no self term)
    self_term: str | None
    #: the recv-side reduction operator ("sum" | "mean" | "max")
    reduce: str
    #: content hash of the output row permutation (None = identity)
    output_perm: str | None
    #: canonicalized non-transient buffers the dataflow closure reaches
    sources: tuple[str, ...]
    #: ORDER_EXACT | ORDER_FLOAT_SUM | None (None = unprovable, EQ001)
    ordering: str | None

    #: field order of the semantic payload — the comparison (and the
    #: "minimal diverging term" explanation) walks exactly these, in
    #: this order; ``ordering`` is deliberately last and non-semantic
    SEMANTIC_FIELDS = (
        "graph",
        "feature",
        "scale",
        "self_term",
        "reduce",
        "output_perm",
        "sources",
    )

    def as_dict(self) -> dict[str, Any]:
        return {
            "buffer": self.buffer,
            "graph": self.graph,
            "feature": self.feature,
            "scale": list(self.scale),
            "self_term": self.self_term,
            "reduce": self.reduce,
            "output_perm": self.output_perm,
            "sources": list(self.sources),
            "ordering": self.ordering,
        }


@dataclass(frozen=True)
class PlanNormalForm:
    """The canonicalized dataflow of one plan: terms + derivation findings."""

    label: str
    terms: tuple[ProducerTerm, ...]
    #: EQ001 findings raised while deriving (non-empty = unprovable)
    findings: tuple[Finding, ...] = ()

    @property
    def provable(self) -> bool:
        """Whether equivalence involving this form can be decided at all."""
        return not self.findings and all(
            t.ordering is not None for t in self.terms
        )

    def term(self, buffer: str) -> ProducerTerm | None:
        for t in self.terms:
            if t.buffer == buffer:
                return t
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "terms": [t.as_dict() for t in self.terms],
            "provable": self.provable,
        }

    @property
    def digest(self) -> str:
        """Content sha256 of the terms — the certificate's plan identity.

        The label is *excluded*: the digest identifies the computation,
        not the system that lowered it.
        """
        payload = json.dumps(
            [t.as_dict() for t in self.terms],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def _scale_term(workload: Any) -> tuple[str, ...]:
    """Canonicalize the send-side scalar to a content-addressed tuple."""
    att = workload.attention
    if att is not None:
        return (
            "attention",
            _array_hash(att.att_src) or "",
            _array_hash(att.att_dst) or "",
            repr(att.negative_slope),
        )
    if workload.edge_weights is not None:
        return ("edge-scalar", _array_hash(workload.edge_weights) or "")
    return ("unit",)


def _ordering_class(
    compute: Any, workload: Any
) -> tuple[str | None, list[Finding]]:
    """Derive the merge discipline of the compute step.

    ``reference`` computes in a single serial pass — exact.  A kernel's
    class follows from its derived effect table: exclusive writes are
    exact; atomic merges are exact only for idempotent reductions and
    fall into the float-sum reassociation class otherwise.  A kernel
    that declares no effect table is unprovable (EQ001).
    """
    if compute.kind == "reference":
        return ORDER_EXACT, []
    kernel = compute.kernel
    effects = None
    decl = getattr(kernel, "effects", None)
    if callable(decl):
        effects = decl(workload)
    if effects is None:
        name = getattr(kernel, "name", type(kernel).__name__)
        return None, [
            make_finding(
                "EQ001",
                f"compute kernel {name!r} declares no effect table: its "
                "merge discipline (and hence the reduction ordering "
                "class) cannot be derived",
                op=name,
                buffer="out",
            )
        ]
    if "out" in effects.atomics or effects.atomic_ops > 0:
        if workload.reduce in _IDEMPOTENT_REDUCES:
            return ORDER_EXACT, []  # idempotent merge: order-free
        return ORDER_FLOAT_SUM, []
    return ORDER_EXACT, []


def _dataflow_sources(ops: Any) -> tuple[tuple[str, ...], list[Finding]]:
    """Backward dataflow closure from ``out`` over the op effect tables.

    Walks producer edges through transient buffers and canonicalizes
    every non-transient read to its semantic class.  An op without an
    effect table makes the closure unprovable (EQ001) — the same
    condition HAZ001 flags, restated as an equivalence obstruction.
    """
    findings: list[Finding] = []
    tables = []
    for op in ops:
        eff = getattr(op, "effects", None)
        if eff is None:
            findings.append(
                make_finding(
                    "EQ001",
                    f"op {op.name!r} carries no effect table: the "
                    "dataflow closure over the plan cannot be derived",
                    op=op.name,
                )
            )
            continue
        tables.append((op, eff))
    sources: set[str] = set()
    targets = {"out"}
    visited: set[int] = set()
    changed = True
    while changed:
        changed = False
        for i, (_op, eff) in enumerate(tables):
            produced = set(eff.writes) | set(eff.atomics)
            if i in visited or not (produced & targets):
                continue
            visited.add(i)
            changed = True
            for b in eff.reads:
                if is_transient(b):
                    targets.add(b)
                elif b not in targets:
                    # a read of a buffer the closure itself produces is
                    # accumulator re-read traffic (write-through merge),
                    # not a dataflow input — schedule, not semantics
                    sources.add(_SOURCE_CLASSES.get(b, b))
    return tuple(sorted(sources)), findings


def normalize_plan(plan: Any) -> PlanNormalForm:
    """Canonicalize one plan into its dataflow normal form.

    Deterministic, side-effect free, and schedule-blind: every legal
    rewrite in :mod:`repro.opt.rewrites` maps a plan to another plan
    with a semantically identical normal form (possibly differing in
    ordering class only — that is EQ003's verdict, not EQ002's).
    """
    compute = plan.compute
    workload = compute.workload
    ordering, findings = _ordering_class(compute, workload)
    sources, flow_findings = _dataflow_sources(plan.ops)
    findings = list(findings) + flow_findings
    term = ProducerTerm(
        buffer="out",
        graph=workload.graph.fingerprint(),
        feature=_array_hash(workload.X) or "",
        scale=_scale_term(workload),
        self_term=_array_hash(workload.self_coeff),
        reduce=workload.reduce,
        output_perm=_array_hash(compute.output_perm),
        sources=sources,
        ordering=ordering,
    )
    return PlanNormalForm(
        label=plan_label(plan), terms=(term,), findings=tuple(findings)
    )
