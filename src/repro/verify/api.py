"""Grid-level certification drivers (the ``repro verify`` entry points).

Three consumers share this module: the ``repro verify`` CLI (certify the
optimizer over the golden-cell grid and explain any failure as a minimal
diverging term), the ``verify-smoke`` CI job (same grid, machine-read),
and the ``serve --certified`` preflight (re-check the tuned-plan store's
certificate for the served cell before admitting traffic).

Everything heavyweight (frameworks, bench, opt) is imported inside the
functions: :mod:`repro.verify` sits below :mod:`repro.opt` in the layer
order — the optimizer imports the validator for its equivalence gate —
so this module must not close the cycle at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..lint import Finding, make_finding
from .certificate import CertificationResult, certify_plans, verify_certificate

__all__ = [
    "CellCertification",
    "TunedPlanCheck",
    "certify_optimized",
    "certify_grid",
    "check_tuned_certificate",
]


@dataclass(frozen=True)
class CellCertification:
    """One grid cell's certification outcome."""

    system: str
    model: str
    dataset: str
    #: "certified" | "dash" (cell unsupported, as in the paper) |
    #: "failed" (non-equivalent or unprovable — the finding says why)
    status: str
    reason: str = ""
    result: CertificationResult | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("certified", "dash")

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "system": self.system,
            "model": self.model,
            "dataset": self.dataset,
            "status": self.status,
            "reason": self.reason,
        }
        if self.result is not None:
            row["verdict"] = self.result.decision.verdict
            row["diverging"] = self.result.decision.diverging
            cert = self.result.certificate
            row["cert_id"] = cert.cert_id if cert is not None else None
            row["findings"] = [
                {"code": f.rule, "severity": f.severity, "message": f.message}
                for f in self.result.decision.findings
            ]
        return row


def certify_optimized(
    system: Any,
    model: str,
    data: Any,
    X: Any,
    spec: Any,
    *,
    level: str = "search",
    budget: int = 16,
    seed: int = 0,
) -> tuple[CertificationResult, list[Any]]:
    """Lower one cell, optimize it, and certify optimized ≡ lowered."""
    from ..opt import optimize_plan

    lowered = system.lower(model, data, X, spec)
    dataset = data if hasattr(data, "full_num_vertices") else None
    optimized, records = optimize_plan(
        lowered, spec, level=level, dataset=dataset, budget=budget, seed=seed
    )
    return certify_plans(optimized, lowered), records


def certify_grid(
    config: Any,
    *,
    systems: list[str] | None = None,
    models: list[str] | None = None,
    datasets: list[str] | None = None,
    level: str = "search",
    budget: int = 16,
) -> list[CellCertification]:
    """Certify the optimizer over a grid of cells (default: the 24
    golden cells — four systems x {gcn, gat} x {CR, CS, PD})."""
    from ..bench import get_dataset, make_features
    from ..frameworks import SYSTEMS
    from ..frameworks.base import CapacityError, UnsupportedModelError
    from ..opt import IllegalRewriteError

    results: list[CellCertification] = []
    for ds_name in datasets or ["CR", "CS", "PD"]:
        data = get_dataset(ds_name, config)
        X = make_features(
            data.graph.num_vertices, config.feat_dim, seed=config.seed
        )
        spec = config.spec_for(data)
        for model in models or ["gcn", "gat"]:
            for name in systems or sorted(SYSTEMS):
                try:
                    result, _records = certify_optimized(
                        SYSTEMS[name](), model, data, X, spec,
                        level=level, budget=budget, seed=config.seed,
                    )
                except (UnsupportedModelError, CapacityError) as exc:
                    results.append(
                        CellCertification(
                            name, model, ds_name, "dash",
                            reason=type(exc).__name__,
                        )
                    )
                    continue
                except IllegalRewriteError as exc:
                    results.append(
                        CellCertification(
                            name, model, ds_name, "failed",
                            reason=f"rewrite gate: {exc}",
                        )
                    )
                    continue
                status = "certified" if result.certified else "failed"
                reason = (
                    "" if result.certified
                    else (result.decision.diverging or result.decision.verdict)
                )
                results.append(
                    CellCertification(
                        name, model, ds_name, status,
                        reason=reason, result=result,
                    )
                )
    return results


@dataclass(frozen=True)
class TunedPlanCheck:
    """Outcome of re-checking one cell's tuned-store certificate."""

    key: str
    entry: dict[str, Any] | None
    certificate: dict[str, Any] | None
    findings: tuple[Finding, ...] = ()

    @property
    def ok(self) -> bool:
        """A tuned entry exists, carries a certificate, and it verifies."""
        return (
            self.entry is not None
            and self.certificate is not None
            and not self.findings
        )

    def render(self) -> str:
        if self.entry is None:
            return (
                f"no tuned plan recorded for key {self.key[:12]}.. — "
                "nothing to certify (run `repro tune --store ...` first)"
            )
        if self.ok:
            assert self.certificate is not None
            return (
                "tuned-plan certificate ok "
                f"(cert {str(self.certificate.get('cert_id', ''))[:12]}.., "
                f"verdict {self.certificate.get('verdict')})"
            )
        return "\n".join(f.render() for f in self.findings)


def check_tuned_certificate(
    system: Any,
    model: str,
    data: Any,
    X: Any,
    spec: Any,
    *,
    store: Any | None = None,
) -> TunedPlanCheck:
    """Re-verify the tuned-plan store's certificate for one cell.

    Rebuilds the tuned plan from the persisted knobs exactly the way
    ``opt="search"`` would replay it, then checks the stored certificate
    against the rebuilt plan's normal form — a hand-edited entry, a
    stripped certificate, or a grammar bump all surface as EQ004.
    """
    from ..opt import get_tuned_store, optimize_plan, tuning_key
    from ..opt.rewrites import _conv_index, _with_kernel, kernel_from_knobs

    tuned_store = store if store is not None else get_tuned_store()
    dataset = data if hasattr(data, "full_num_vertices") else None
    graph = getattr(data, "graph", data)
    key = tuning_key(
        system=system.name, model=model, graph=graph, X=X,
        spec=spec, dataset=dataset,
    )
    entry = tuned_store.entry(key)
    if entry is None:
        return TunedPlanCheck(key=key, entry=None, certificate=None)
    cert = entry.get("certificate")
    if not cert:
        return TunedPlanCheck(
            key=key,
            entry=entry,
            certificate=None,
            findings=(
                make_finding(
                    "EQ004",
                    "tuned-store entry carries no equivalence certificate "
                    "(recorded before certification, or stripped by hand) "
                    "— re-tune to certify",
                ),
            ),
        )
    lowered = system.lower(model, data, X, spec)
    reference, _ = optimize_plan(
        lowered, spec, level="safe", dataset=dataset
    )
    subject = reference
    idx = _conv_index(reference)
    if idx is not None:
        kernel = kernel_from_knobs(dict(entry["knobs"]), dataset=dataset)
        if kernel is not None:
            subject = _with_kernel(reference, idx, kernel)
    findings = verify_certificate(
        cert, subject_plan=subject, reference_plan=reference
    )
    return TunedPlanCheck(
        key=key, entry=entry, certificate=cert, findings=tuple(findings)
    )
