"""Deciding plan equivalence over normal forms (EQ001-EQ003).

The decision procedure is deliberately small because the normal form did
the work: two plans are equivalent iff their producer terms agree field
for field, with one tolerance — a divergence in the *ordering class
alone* is legal reassociation of a float reduction (the rewritten plan
merges partial sums in a different order than the reference; every
summand is identical).  That verdict is kept distinct
(``equivalent-unordered``, EQ003) because it is the one case where
"equivalent" does not imply "bit-exact on real hardware" — the same
boundary DET001 warns about per plan.

Verdicts:

* ``equal`` — identical normal forms, ordering class included.
* ``equivalent-unordered`` — semantic terms identical, ordering class
  differs; legal only because the divergent class is the float-sum
  reassociation class (idempotent merges never reach here: they
  normalize to the exact class on both sides).
* ``mismatch`` — some semantic term diverges (EQ002); the decision
  carries the *minimal diverging term*: the first field, in canonical
  field order, on which the two forms disagree.
* ``unknown`` — at least one side has no derivable normal form (EQ001);
  the optimizer treats unprovable exactly like wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..lint import Finding, make_finding
from .normal import ORDER_FLOAT_SUM, PlanNormalForm, ProducerTerm

__all__ = [
    "VERDICTS",
    "EQUIVALENT_VERDICTS",
    "EquivalenceDecision",
    "decide_equivalence",
]

VERDICTS = ("equal", "equivalent-unordered", "mismatch", "unknown")

#: verdicts under which a certificate may be issued
EQUIVALENT_VERDICTS = ("equal", "equivalent-unordered")


@dataclass(frozen=True)
class EquivalenceDecision:
    """The outcome of comparing two normal forms."""

    verdict: str
    findings: tuple[Finding, ...] = ()
    #: human-readable minimal diverging term ("out.scale: a12b.. != 9c0d..")
    diverging: str | None = None

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise ValueError(f"verdict must be one of {VERDICTS}")

    @property
    def equivalent(self) -> bool:
        return self.verdict in EQUIVALENT_VERDICTS

    def render(self) -> str:
        lines = [f"verdict: {self.verdict}"]
        if self.diverging:
            lines.append(f"  diverging term: {self.diverging}")
        lines.extend(f"  {f.render()}" for f in self.findings)
        return "\n".join(lines)


def _show(value: Any) -> str:
    """Compact rendering of a term field (hashes shortened to 12 chars)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value[:12] if len(value) > 16 else value
    if isinstance(value, tuple):
        return "(" + ", ".join(_show(v) for v in value) + ")"
    return repr(value)


def _diverging_field(a: ProducerTerm, b: ProducerTerm) -> str | None:
    """First semantic field (canonical order) the two terms disagree on."""
    for name in ProducerTerm.SEMANTIC_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            return (
                f"{a.buffer}.{name}: {_show(va)} != {_show(vb)}"
            )
    return None


def decide_equivalence(
    a: PlanNormalForm, b: PlanNormalForm
) -> EquivalenceDecision:
    """Decide whether two normal forms denote the same computation."""
    underivable = tuple(a.findings) + tuple(b.findings)
    if underivable or not a.provable or not b.provable:
        return EquivalenceDecision(verdict="unknown", findings=underivable)

    buffers_a = {t.buffer for t in a.terms}
    buffers_b = {t.buffer for t in b.terms}
    if buffers_a != buffers_b:
        msg = (
            f"output buffer sets differ: {sorted(buffers_a)} vs "
            f"{sorted(buffers_b)}"
        )
        return EquivalenceDecision(
            verdict="mismatch",
            findings=(make_finding("EQ002", msg),),
            diverging="buffers: " + msg,
        )

    ordering_only: list[Finding] = []
    for ta in a.terms:
        tb = b.term(ta.buffer)
        assert tb is not None  # buffer sets match
        diverging = _diverging_field(ta, tb)
        if diverging is not None:
            return EquivalenceDecision(
                verdict="mismatch",
                findings=(
                    make_finding(
                        "EQ002",
                        "producer terms diverge — the plans compute "
                        f"different things ({diverging})",
                        buffer=ta.buffer,
                    ),
                ),
                diverging=diverging,
            )
        if ta.ordering != tb.ordering:
            # semantic terms agree; only the merge order differs.  Legal
            # reassociation requires the divergent side to be the float
            # reassociation class (idempotent merges normalize to exact
            # on both sides, so they can never diverge here).
            assert ORDER_FLOAT_SUM in (ta.ordering, tb.ordering)
            ordering_only.append(
                make_finding(
                    "EQ003",
                    f"reduction-order-only divergence on {ta.buffer!r}: "
                    f"{ta.ordering} vs {tb.ordering} — equivalent modulo "
                    "reassociation of the float reduction, but not "
                    "bit-exact under hardware atomics (see DET001)",
                    buffer=ta.buffer,
                )
            )
    if ordering_only:
        return EquivalenceDecision(
            verdict="equivalent-unordered", findings=tuple(ordering_only)
        )
    return EquivalenceDecision(verdict="equal")
