"""Vertex reordering — the pre-processing step GNNAdvisor relies on.

The paper criticizes this step as "heavy pre-processing" whose overhead can
exceed the kernel-time it saves.  We implement the two classic strategies
(degree sort and BFS locality ordering) and report their cost so the
GNNAdvisor baseline's preprocessing overhead is accounted for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["ReorderResult", "degree_sort", "bfs_locality", "identity_order"]


@dataclass(frozen=True)
class ReorderResult:
    """A relabelled graph plus the permutation and the host time it cost."""

    graph: CSRGraph
    perm: np.ndarray  # new id of old vertex v is perm[v]
    seconds: float
    strategy: str


def identity_order(graph: CSRGraph) -> ReorderResult:
    """No-op ordering (TLPGNN's choice: zero pre-processing)."""
    return ReorderResult(
        graph=graph,
        perm=np.arange(graph.num_vertices, dtype=np.int64),
        seconds=0.0,
        strategy="identity",
    )


def degree_sort(graph: CSRGraph, *, descending: bool = True) -> ReorderResult:
    """Relabel vertices by in-degree so similar workloads are adjacent.

    Groups vertices of similar degree into the same warps/blocks, which is
    the locality/balance effect GNNAdvisor's reordering targets.
    """
    t0 = time.perf_counter()
    deg = graph.in_degrees
    order = np.argsort(-deg if descending else deg, kind="stable")
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices)
    out = graph.permute(perm)
    return ReorderResult(
        graph=out,
        perm=perm,
        seconds=time.perf_counter() - t0,
        strategy="degree_sort",
    )


def bfs_locality(graph: CSRGraph, *, source: int = 0) -> ReorderResult:
    """Relabel vertices in BFS discovery order from ``source``.

    Vertices sharing neighbours get nearby ids, improving cache locality of
    the gather — the "make the ones sharing more common neighbors closer"
    pre-processing the paper describes.  Unreached vertices keep their
    relative order after all reached ones.
    """
    t0 = time.perf_counter()
    n = graph.num_vertices
    # BFS over the undirected closure so disconnected direction doesn't stop
    # the frontier; use the symmetrized adjacency.
    sym = graph.to_scipy()
    sym = (sym + sym.T).tocsr()
    order = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    pos = 0
    frontier = np.array([source], dtype=np.int64)
    visited[source] = True
    while len(frontier):
        order[pos : pos + len(frontier)] = frontier
        pos += len(frontier)
        # Vectorized frontier expansion via the CSR of the symmetric graph.
        starts = sym.indptr[frontier]
        ends = sym.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [sym.indices[s:e] for s, e in zip(starts, ends, strict=True)]
        ) if total else np.zeros(0, dtype=np.int64)
        nbrs = np.unique(nbrs)
        nbrs = nbrs[~visited[nbrs]]
        visited[nbrs] = True
        frontier = nbrs
    if pos < n:
        rest = np.flatnonzero(~np.isin(np.arange(n), order[:pos]))
        order[pos:] = rest
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)
    out = graph.permute(perm)
    return ReorderResult(
        graph=out,
        perm=perm,
        seconds=time.perf_counter() - t0,
        strategy="bfs_locality",
    )
