"""Registry of the paper's Table 4 datasets as synthetic equivalents.

No network access is available, so each dataset is replaced by a generated
graph that preserves the statistics the paper's claims depend on — vertex
count, edge count, average degree, and degree skew — optionally scaled down
by ``scale`` (average degree is preserved under scaling).  The full-size
statistics stay attached to the loaded dataset so that the paper's hybrid
workload heuristic (|V| > 1M or avg degree > 50) can be evaluated against
the *original* workload the scaled graph stands in for.
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass

import numpy as np

from . import generators
from .csr import CSRGraph

__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASETS",
    "DATASET_ORDER",
    "LARGE_FOUR",
    "FIG8_SEVEN",
    "load_dataset",
    "default_scale",
    "sample_degree_sequence",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Full-size statistics of one Table 4 dataset."""

    abbr: str
    full_name: str
    num_vertices: int
    num_edges: int
    #: degree distribution family used by the synthetic stand-in
    family: str  # "power_law" | "uniform" | "regular_ish"
    #: power-law exponent for skewed datasets
    exponent: float = 2.2
    #: maximum in-degree of the original dataset (hub cap for stand-ins);
    #: None = uncapped
    max_degree: int | None = None

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_vertices


@dataclass(frozen=True)
class Dataset:
    """A loaded (possibly scaled) dataset: synthetic graph + original spec."""

    graph: CSRGraph
    spec: DatasetSpec
    scale: float

    @property
    def abbr(self) -> str:
        return self.spec.abbr

    #: Statistics the workload heuristics should reason about — the original
    #: full-size workload, not the scaled stand-in.
    @property
    def full_num_vertices(self) -> int:
        return self.spec.num_vertices

    @property
    def full_avg_degree(self) -> float:
        return self.spec.avg_degree


# Table 4 of the paper, verbatim (K = thousand, M = million).
_SPECS = [
    DatasetSpec("CS", "Citeseer", 3_300, 9_200, "uniform"),
    DatasetSpec("CR", "Cora", 2_700, 10_500, "uniform"),
    DatasetSpec("PD", "Pubmed", 19_700, 88_600, "power_law", 2.4, 172),
    DatasetSpec("OA", "Ogbn-arxiv", 169_000, 1_100_000, "regular_ish"),
    DatasetSpec("PI", "PPI", 56_000, 1_600_000, "power_law", 2.3, 721),
    DatasetSpec("DD", "DD", 334_000, 1_600_000, "uniform"),
    DatasetSpec("OH", "Ovcar-8h", 1_800_000, 3_900_000, "uniform"),
    DatasetSpec("CL", "Collab", 372_000, 24_900_000, "power_law", 2.3, 1_600),
    DatasetSpec("ON", "Ogbn-protein", 132_000, 79_000_000, "power_law", 2.5, 7_750),
    DatasetSpec("RD", "Reddit", 232_000, 114_000_000, "power_law", 2.2, 21_657),
    DatasetSpec("OT", "Ogbn-product", 2_400_000, 123_700_000, "power_law", 2.4, 17_481),
]

DATASETS: dict[str, DatasetSpec] = {s.abbr: s for s in _SPECS}
#: Table order used throughout the paper (sorted by edge count).
DATASET_ORDER = [s.abbr for s in _SPECS]
#: The "four largest graphs" of Figures 11 and 12.
LARGE_FOUR = ["CL", "ON", "RD", "OT"]
#: The seven datasets GNNAdvisor completes on (Figure 8 / Table 5 dashes).
FIG8_SEVEN = ["CS", "CR", "PD", "OA", "PI", "DD", "OH"]


def sample_degree_sequence(
    abbr: str, *, seed: int = 7, scale: float = 1.0
) -> "np.ndarray":
    """In-degree sequence of the (optionally scaled) dataset, full fidelity.

    Degrees alone drive the vertex-parallel cost model, so experiments like
    Figure 11 can evaluate *full-size* workloads (hundreds of millions of
    edges) without materializing the edge arrays: one multinomial draw over
    the generator's vertex weights yields the exact degree distribution the
    edge-level generator would produce.
    """
    if abbr not in DATASETS:
        raise KeyError(f"unknown dataset {abbr!r}")
    spec = DATASETS[abbr]
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n = max(64, int(round(spec.num_vertices * scale)))
    m = max(n, int(round(spec.num_edges * scale)))
    rng = np.random.default_rng(seed + zlib.crc32(abbr.encode()) % 10_000)
    if spec.family == "power_law":
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-1.0 / (spec.exponent - 1.0))
        weights /= weights.sum()
        if spec.max_degree is not None:
            cap = spec.max_degree / m
            for _ in range(4):
                over = weights > cap
                if not over.any():
                    break
                weights = np.minimum(weights, cap)
                weights /= weights.sum()
        deg = rng.multinomial(m, weights).astype(np.int64)
        return deg[rng.permutation(n)]
    if spec.family == "regular_ish":
        base = max(int(spec.avg_degree * 0.7), 1)
        extra = max(m - base * n, 0)
        deg = np.full(n, base, dtype=np.int64)
        deg += rng.multinomial(extra, np.full(n, 1.0 / n)).astype(np.int64)
        return deg
    return rng.multinomial(m, np.full(n, 1.0 / n)).astype(np.int64)


def default_scale(spec: DatasetSpec, *, max_edges: int = 2_000_000) -> float:
    """Largest power-of-two downscale keeping the graph under ``max_edges``.

    Small datasets load at full size; the giant ones (CL/ON/RD/OT) are scaled
    so the pure-Python harness stays tractable.  Returns a value in (0, 1].
    """
    scale = 1.0
    while spec.num_edges * scale > max_edges and spec.num_vertices * scale > 64:
        scale /= 2.0
    return scale


def load_dataset(
    abbr: str,
    *,
    scale: float | None = None,
    max_edges: int = 2_000_000,
    seed: int = 7,
) -> Dataset:
    """Load (generate) the synthetic stand-in for dataset ``abbr``.

    Parameters
    ----------
    abbr:
        Table 4 abbreviation, e.g. ``"RD"`` for Reddit.
    scale:
        Fraction of the original vertex count to generate.  ``None`` picks
        :func:`default_scale` based on ``max_edges``.  Average degree is
        preserved, so edge count scales by the same factor.
    seed:
        RNG seed; loading the same dataset twice yields an identical graph.
    """
    if abbr not in DATASETS:
        raise KeyError(f"unknown dataset {abbr!r}; known: {sorted(DATASETS)}")
    spec = DATASETS[abbr]
    if scale is None:
        scale = default_scale(spec, max_edges=max_edges)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n = max(64, int(round(spec.num_vertices * scale)))
    m = max(n, int(round(spec.num_edges * scale)))
    rng = np.random.default_rng(seed + zlib.crc32(abbr.encode()) % 10_000)
    if spec.family == "power_law":
        # The hub cap stays absolute: average degree is preserved under
        # scaling, so keeping max degree preserves the max/mean shape of the
        # distribution (what balance and occupancy effects react to).  The
        # hub's *share* of total work grows at small scale — a documented
        # artifact bounded by running the big-graph experiments at the
        # default (largest) scale.
        graph = generators.power_law(
            n, m, exponent=spec.exponent, max_degree=spec.max_degree,
            seed=rng, name=abbr,
        )
    elif spec.family == "regular_ish":
        # OA-like: narrow degree distribution — mix of regular and uniform.
        base = int(spec.avg_degree * 0.7)
        reg = generators.regular(n, max(base, 1), seed=rng, name=abbr)
        extra = m - reg.num_edges
        if extra > 0:
            er = generators.erdos_renyi(n, extra, seed=rng, name=abbr)
            src = np.concatenate([reg.edge_list()[0], er.edge_list()[0]])
            dst = np.concatenate([reg.edge_list()[1], er.edge_list()[1]])
            from .csr import from_edge_list

            graph = from_edge_list(src, dst, n, name=abbr)
        else:
            graph = reg
    else:
        graph = generators.erdos_renyi(n, m, seed=rng, name=abbr)
    return Dataset(graph=graph, spec=spec, scale=scale)
