"""Graph substrate: CSR container, generators, dataset registry, reordering,
and a lightweight partitioner."""

from .csr import CSRGraph, from_edge_list, from_scipy
from .datasets import (
    DATASET_ORDER,
    DATASETS,
    FIG8_SEVEN,
    LARGE_FOUR,
    Dataset,
    DatasetSpec,
    default_scale,
    load_dataset,
    sample_degree_sequence,
)
from .generators import (
    chain,
    complete,
    empty,
    erdos_renyi,
    power_law,
    regular,
    rmat,
    star,
)
from .hetero import HeteroGraph, random_hetero
from .io import (
    from_networkx,
    load_dataset_file,
    load_graph,
    save_dataset,
    save_graph,
    to_networkx,
)
from .partition import Partition, edge_cut, partition_kway
from .reorder import ReorderResult, bfs_locality, degree_sort, identity_order

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_scipy",
    "Dataset",
    "DatasetSpec",
    "DATASETS",
    "DATASET_ORDER",
    "LARGE_FOUR",
    "FIG8_SEVEN",
    "load_dataset",
    "default_scale",
    "sample_degree_sequence",
    "erdos_renyi",
    "power_law",
    "rmat",
    "regular",
    "star",
    "chain",
    "complete",
    "empty",
    "HeteroGraph",
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset_file",
    "from_networkx",
    "to_networkx",
    "random_hetero",
    "Partition",
    "partition_kway",
    "edge_cut",
    "ReorderResult",
    "degree_sort",
    "bfs_locality",
    "identity_order",
]
