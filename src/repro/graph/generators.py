"""Vectorized synthetic graph generators.

The paper evaluates on real datasets; with no network access we synthesize
graphs that preserve the statistics the paper's claims depend on: vertex
count, edge count / average degree, and degree skew.  All generators are
deterministic given ``seed`` and produce in-neighbour :class:`CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, from_edge_list

__all__ = [
    "rng_from",
    "erdos_renyi",
    "power_law",
    "rmat",
    "regular",
    "star",
    "chain",
    "complete",
    "empty",
]


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Canonical seed → :class:`numpy.random.Generator` coercion.

    Accepts an int seed, an existing generator (passed through, so callers
    can thread one stream through several draws), or None (OS entropy —
    never use None on a simulated path; see DESIGN.md "Determinism rules").
    Shared by every graph generator here and by the serving layer's
    arrival-trace generators (:mod:`repro.serve.workload`), so one seed
    convention covers all synthetic randomness in the repo.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: back-compat alias (pre-serving internal name)
_rng = rng_from


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int | None = 0,
    allow_self_loops: bool = False,
    name: str = "erdos_renyi",
) -> CSRGraph:
    """Uniform random directed multigraph with exactly ``num_edges`` edges."""
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    if not allow_self_loops and num_vertices > 1:
        loops = src == dst
        # Rotate self-loop targets by one; keeps |E| fixed and stays uniform
        # enough for our purposes.
        dst[loops] = (dst[loops] + 1) % num_vertices
    return from_edge_list(src, dst, num_vertices, name=name)


def power_law(
    num_vertices: int,
    num_edges: int,
    *,
    exponent: float = 2.1,
    max_degree: int | None = None,
    seed: int | None = 0,
    name: str = "power_law",
) -> CSRGraph:
    """Directed graph whose in-degrees follow a truncated power law.

    Destination vertices are sampled proportionally to ``rank^-1/(exponent-1)``
    (Zipf-like), giving the heavy-tailed degree distribution that makes
    vertex-parallel workloads imbalanced — the property the paper's hybrid
    workload balancing targets.  ``max_degree`` caps the *expected* degree of
    the hottest vertex so scaled-down stand-ins keep the hub share of the
    original dataset instead of over-concentrating.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    if max_degree is not None and num_edges > 0:
        cap = max_degree / num_edges
        for _ in range(4):  # cap-and-renormalize until stable
            over = weights > cap
            if not over.any():
                break
            weights = np.minimum(weights, cap)
            weights /= weights.sum()
    dst = rng.choice(num_vertices, size=num_edges, p=weights).astype(np.int64)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    if num_vertices > 1:
        loops = src == dst
        src[loops] = (src[loops] + 1) % num_vertices
    # Shuffle vertex ids so the hubs are not the low ids; keeps locality
    # effects realistic for the reordering experiments.
    perm = rng.permutation(num_vertices).astype(np.int64)
    return from_edge_list(perm[src], perm[dst], num_vertices, name=name)


def rmat(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
    name: str = "rmat",
) -> CSRGraph:
    """R-MAT generator (Graph500-style) — ``2**scale`` vertices.

    Vectorized over all edges at once: each of the ``scale`` bit positions is
    drawn for every edge in one shot.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a+b+c must be in (0,1)")
    rng = _rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _bit in range(scale):
        r = rng.random(m)
        src_bit = (r >= a + b).astype(np.int64)
        r2 = rng.random(m)
        # Conditional on the source bit, pick the destination bit from the
        # matching quadrant probabilities.
        p_top = np.where(src_bit == 0, a / (a + b), c / (1.0 - a - b))
        dst_bit = (r2 >= p_top).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    if n > 1:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % n
    return from_edge_list(src, dst, n, name=name)


def regular(
    num_vertices: int,
    degree: int,
    *,
    seed: int | None = 0,
    name: str = "regular",
) -> CSRGraph:
    """Every vertex has exactly ``degree`` in-neighbours (random sources)."""
    rng = _rng(seed)
    dst = np.repeat(np.arange(num_vertices, dtype=np.int64), degree)
    src = rng.integers(0, num_vertices, size=num_vertices * degree, dtype=np.int64)
    if num_vertices > 1:
        loops = src == dst
        src[loops] = (src[loops] + 1) % num_vertices
    return from_edge_list(src, dst, num_vertices, name=name)


def star(num_vertices: int, *, name: str = "star") -> CSRGraph:
    """All other vertices point at vertex 0 — maximal degree skew."""
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    src = np.arange(1, num_vertices, dtype=np.int64)
    dst = np.zeros(num_vertices - 1, dtype=np.int64)
    return from_edge_list(src, dst, num_vertices, name=name)


def chain(num_vertices: int, *, name: str = "chain") -> CSRGraph:
    """Path graph i -> i+1 — perfectly balanced degree-1 workload."""
    src = np.arange(0, num_vertices - 1, dtype=np.int64)
    dst = src + 1
    return from_edge_list(src, dst, num_vertices, name=name)


def complete(num_vertices: int, *, name: str = "complete") -> CSRGraph:
    """Complete directed graph without self loops."""
    v = np.arange(num_vertices, dtype=np.int64)
    src = np.repeat(v, num_vertices)
    dst = np.tile(v, num_vertices)
    keep = src != dst
    return from_edge_list(src[keep], dst[keep], num_vertices, name=name)


def empty(num_vertices: int, *, name: str = "empty") -> CSRGraph:
    """Graph with no edges (kernel edge-case exercise)."""
    return CSRGraph(
        indptr=np.zeros(num_vertices + 1, dtype=np.int64),
        indices=np.zeros(0, dtype=np.int64),
        num_vertices=num_vertices,
        name=name,
    )
