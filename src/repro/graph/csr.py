"""Compressed sparse row graph container.

The whole reproduction operates on an in-neighbour CSR view: for a
destination vertex ``u``, ``indices[indptr[u]:indptr[u+1]]`` lists the
source vertices whose features ``u`` gathers during graph convolution.
This mirrors the ``indptr[des_v]`` indexing in the paper's Figure 7 code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np
import scipy.sparse as sp

__all__ = ["CSRGraph", "from_edge_list", "from_scipy"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable directed graph in CSR (in-neighbour) form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; row pointer of the
        in-adjacency of each destination vertex.
    indices:
        ``int64`` array of length ``num_edges``; the source vertex of each
        edge, grouped by destination.
    num_vertices:
        Number of vertices.
    name:
        Optional human-readable label (dataset abbreviation in tables).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_vertices: int
    name: str = "graph"
    _degree_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if len(indptr) != self.num_vertices + 1:
            raise ValueError(
                f"indptr length {len(indptr)} != num_vertices+1 "
                f"({self.num_vertices + 1})"
            )
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indptr[-1] != len(indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= self.num_vertices
        ):
            raise ValueError("indices contain out-of-range vertex ids")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges (gather operations)."""
        return int(self.indices.shape[0])

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (length ``num_vertices``)."""
        if "in" not in self._degree_cache:
            self._degree_cache["in"] = np.diff(self.indptr)
        return self._degree_cache["in"]

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (length ``num_vertices``)."""
        if "out" not in self._degree_cache:
            self._degree_cache["out"] = np.bincount(
                self.indices, minlength=self.num_vertices
            ).astype(np.int64)
        return self._degree_cache["out"]

    @property
    def avg_degree(self) -> float:
        """Average in-degree, the quantity the paper's heuristics use."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def max_degree(self) -> int:
        return int(self.in_degrees.max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of vertex ``v`` (a view, not a copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def fingerprint(self, values: np.ndarray | None = None) -> str:
        """Content sha256 over the CSR arrays (memoized on the instance).

        Identifies the graph by *structure*, not by name: two loads of the
        same dataset (or two aliased configs) fingerprint identically.
        ``values`` optionally folds a per-edge value array into the hash
        (edge weights live in workloads, not in the graph itself).
        """
        if values is not None:
            values = np.ascontiguousarray(values)
            if values.shape[:1] != (self.num_edges,):
                raise ValueError("values must have one entry per edge")
            h = hashlib.sha256(self.fingerprint().encode())
            h.update(repr((values.shape, str(values.dtype))).encode())
            h.update(values.tobytes())
            return h.hexdigest()
        fp = self._degree_cache.get("fingerprint")
        if fp is None:
            h = hashlib.sha256()
            h.update(np.int64(self.num_vertices).tobytes())
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            fp = self._degree_cache["fingerprint"] = h.hexdigest()
        return fp

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_scipy(self, weights: np.ndarray | None = None) -> sp.csr_matrix:
        """Return the adjacency as a ``scipy.sparse.csr_matrix``.

        Row ``u`` holds the in-neighbours of ``u``, so ``A @ X`` performs the
        pull-style gather-sum the kernels implement.
        """
        data = (
            np.ones(self.num_edges, dtype=np.float32)
            if weights is None
            else np.asarray(weights, dtype=np.float32)
        )
        if data.shape != (self.num_edges,):
            raise ValueError("weights must have one entry per edge")
        return sp.csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.num_vertices, self.num_vertices),
        )

    def reverse(self) -> "CSRGraph":
        """Graph with all edges flipped (out-neighbour CSR of this one)."""
        rev = self.to_scipy().T.tocsr()
        rev.sort_indices()
        return CSRGraph(
            indptr=rev.indptr.astype(np.int64),
            indices=rev.indices.astype(np.int64),
            num_vertices=self.num_vertices,
            name=f"{self.name}_rev",
        )

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays in CSR order (dst-major)."""
        dst = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.in_degrees)
        return self.indices.copy(), dst

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices so new id of old vertex ``v`` is ``perm[v]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_vertices,):
            raise ValueError("perm must have one entry per vertex")
        if not np.array_equal(np.sort(perm), np.arange(self.num_vertices)):
            raise ValueError("perm must be a permutation of vertex ids")
        src, dst = self.edge_list()
        return from_edge_list(
            perm[src], perm[dst], self.num_vertices, name=f"{self.name}_perm"
        )

    def subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Induced subgraph on ``vertices`` (relabelled to 0..k-1)."""
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        lut = np.full(self.num_vertices, -1, dtype=np.int64)
        lut[vertices] = np.arange(len(vertices))
        src, dst = self.edge_list()
        keep = (lut[src] >= 0) & (lut[dst] >= 0)
        return from_edge_list(
            lut[src[keep]], lut[dst[keep]], len(vertices), name=f"{self.name}_sub"
        )

    def stats(self) -> dict:
        """Summary statistics used by Table 4 and the hybrid heuristic."""
        deg = self.in_degrees
        return {
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "max_degree": self.max_degree,
            "degree_std": float(deg.std()) if len(deg) else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, avg_deg={self.avg_degree:.1f})"
        )


def from_edge_list(
    src: Iterable[int],
    dst: Iterable[int],
    num_vertices: int,
    *,
    name: str = "graph",
    dedup: bool = False,
) -> CSRGraph:
    """Build an in-neighbour CSR graph from parallel ``src``/``dst`` arrays."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same length")
    if len(src) and (
        min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_vertices
    ):
        raise ValueError("edge endpoints out of range")
    if dedup and len(src):
        key = dst * num_vertices + src
        _, first = np.unique(key, return_index=True)
        src, dst = src[first], dst[first]
    order = np.lexsort((src, dst))
    src, dst = src[order], dst[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(indptr, dst + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr=indptr, indices=src, num_vertices=num_vertices, name=name)


def from_scipy(mat: sp.spmatrix, *, name: str = "graph") -> CSRGraph:
    """Build from any scipy sparse matrix (row = destination vertex)."""
    csr = mat.tocsr()
    if csr.shape[0] != csr.shape[1]:
        raise ValueError("adjacency matrix must be square")
    csr.sort_indices()
    return CSRGraph(
        indptr=csr.indptr.astype(np.int64),
        indices=csr.indices.astype(np.int64),
        num_vertices=csr.shape[0],
        name=name,
    )
