"""Heterogeneous graphs — the paper's limitation #1, implemented.

"Our method is designed for GNN models on homogeneous graphs ... However,
our designs for the kernel is generic and should be also applicable to the
GNN models on heterogeneous graphs with reasonable modifications."

The reasonable modification: a heterogeneous graph is a dict of per-relation
homogeneous CSR graphs over a shared vertex space; an R-GCN-style
convolution runs the (unchanged) TLPGNN kernel once per relation and sums
the per-relation aggregates — still atomic-free, still one fused kernel per
relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph, from_edge_list

__all__ = ["HeteroGraph", "random_hetero"]


@dataclass(frozen=True)
class HeteroGraph:
    """Typed-edge graph: one CSR adjacency per relation, shared vertices."""

    num_vertices: int
    relations: dict[str, CSRGraph] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError("need at least one relation")
        for name, g in self.relations.items():
            if g.num_vertices != self.num_vertices:
                raise ValueError(
                    f"relation {name!r} has {g.num_vertices} vertices, "
                    f"expected {self.num_vertices}"
                )

    @property
    def relation_names(self) -> list[str]:
        return list(self.relations)

    @property
    def num_edges(self) -> int:
        return sum(g.num_edges for g in self.relations.values())

    def relation(self, name: str) -> CSRGraph:
        return self.relations[name]

    def merged(self) -> CSRGraph:
        """Union of all relations as one homogeneous graph (type-blind)."""
        srcs, dsts = [], []
        for g in self.relations.values():
            s, d = g.edge_list()
            srcs.append(s)
            dsts.append(d)
        return from_edge_list(
            np.concatenate(srcs), np.concatenate(dsts), self.num_vertices,
            name="hetero_merged",
        )


def random_hetero(
    num_vertices: int,
    edges_per_relation: dict[str, int],
    *,
    seed: int = 0,
) -> HeteroGraph:
    """Random heterogeneous graph with the given per-relation edge counts."""
    from .generators import erdos_renyi

    rng = np.random.default_rng(seed)
    rels = {
        name: erdos_renyi(
            num_vertices, m, seed=int(rng.integers(0, 2**31)), name=name
        )
        for name, m in edges_per_relation.items()
    }
    return HeteroGraph(num_vertices=num_vertices, relations=rels)
