"""Lightweight balanced graph partitioner (METIS substitute).

The paper's future-work section points at multi-GPU deployment "with the
help of graph partition techniques, e.g. METIS".  METIS is not available
offline, so we provide a BFS-grown balanced k-way partitioner with an
edge-cut report — enough substrate for the multi-GPU example to exercise
the partition → per-device convolution → halo exchange path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["Partition", "partition_kway", "edge_cut"]


@dataclass(frozen=True)
class Partition:
    """Assignment of every vertex to one of ``k`` parts."""

    assignment: np.ndarray  # part id per vertex
    k: int

    def part_vertices(self, p: int) -> np.ndarray:
        return np.flatnonzero(self.assignment == p)

    @property
    def sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.k)


def partition_kway(graph: CSRGraph, k: int, *, seed: int = 0) -> Partition:
    """Split the graph into ``k`` roughly equal parts with BFS region growing.

    Seeds are spread over the vertex range; each part greedily absorbs a BFS
    frontier until it reaches the size cap, which keeps parts connected-ish
    (low edge cut on locality-friendly graphs) and balanced within one vertex.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_vertices
    if k == 1:
        return Partition(np.zeros(n, dtype=np.int64), 1)
    if k > n:
        raise ValueError("cannot have more parts than vertices")
    rng = np.random.default_rng(seed)
    sym = graph.to_scipy()
    sym = (sym + sym.T).tocsr()
    cap = -(-n // k)  # ceil
    assignment = np.full(n, -1, dtype=np.int64)
    seeds = rng.choice(n, size=k, replace=False)
    frontiers = [[int(s)] for s in seeds]
    for p, s in enumerate(seeds):
        assignment[s] = p
    counts = np.ones(k, dtype=np.int64)
    progressed = True
    while progressed:
        progressed = False
        for p in range(k):
            if counts[p] >= cap or not frontiers[p]:
                continue
            nxt: list[int] = []
            for v in frontiers[p]:
                for u in sym.indices[sym.indptr[v] : sym.indptr[v + 1]]:
                    if assignment[u] == -1 and counts[p] < cap:
                        assignment[u] = p
                        counts[p] += 1
                        nxt.append(int(u))
            if nxt:
                progressed = True
            frontiers[p] = nxt
    # Orphans (unreached vertices) round-robin into the lightest parts.
    orphans = np.flatnonzero(assignment == -1)
    for v in orphans:
        p = int(np.argmin(counts))
        assignment[v] = p
        counts[p] += 1
    return Partition(assignment=assignment, k=k)


def edge_cut(graph: CSRGraph, partition: Partition) -> int:
    """Number of edges whose endpoints live in different parts."""
    src, dst = graph.edge_list()
    return int(np.count_nonzero(partition.assignment[src] != partition.assignment[dst]))
