"""Graph (de)serialization: save/load CSR graphs and generated datasets.

Generating the big synthetic stand-ins costs seconds; pipelines that sweep
many configurations can persist them as ``.npz`` and reload in
milliseconds.  The format stores exactly the CSR arrays plus metadata, so
round-trips are bit-exact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .csr import CSRGraph
from .datasets import DATASETS, Dataset

__all__ = [
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset_file",
    "from_networkx",
    "to_networkx",
]

_FORMAT_VERSION = 1


def save_graph(graph: CSRGraph, path: str | Path) -> Path:
    """Write a graph to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        meta=np.frombuffer(
            json.dumps(
                {
                    "version": _FORMAT_VERSION,
                    "num_vertices": graph.num_vertices,
                    "name": graph.name,
                }
            ).encode(),
            dtype=np.uint8,
        ),
    )
    return path


def load_graph(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_graph` (validated on load)."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {meta.get('version')}")
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            num_vertices=int(meta["num_vertices"]),
            name=str(meta["name"]),
        )


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Persist a loaded dataset stand-in (graph + scale + spec abbr)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        meta=np.frombuffer(
            json.dumps(
                {
                    "version": _FORMAT_VERSION,
                    "num_vertices": dataset.graph.num_vertices,
                    "name": dataset.graph.name,
                    "abbr": dataset.abbr,
                    "scale": dataset.scale,
                }
            ).encode(),
            dtype=np.uint8,
        ),
    )
    return path


def load_dataset_file(path: str | Path) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset file version {meta.get('version')}")
        abbr = meta["abbr"]
        if abbr not in DATASETS:
            raise ValueError(f"file references unknown dataset {abbr!r}")
        graph = CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            num_vertices=int(meta["num_vertices"]),
            name=str(meta["name"]),
        )
        return Dataset(graph=graph, spec=DATASETS[abbr], scale=float(meta["scale"]))


def from_networkx(nx_graph, *, name: str = "networkx") -> CSRGraph:
    """Convert a NetworkX (Di)Graph to the in-neighbour CSR this library uses.

    Node labels are mapped to dense ids in sorted order; undirected graphs
    become symmetric directed graphs (each edge in both directions), which is
    the convention GNN frameworks use.
    """
    import networkx as nx

    nodes = sorted(nx_graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    src, dst = [], []
    directed = nx_graph.is_directed()
    for u, v in nx_graph.edges():
        src.append(index[u])
        dst.append(index[v])
        if not directed and u != v:
            src.append(index[v])
            dst.append(index[u])
    from .csr import from_edge_list

    return from_edge_list(src, dst, len(nodes), name=name)


def to_networkx(graph: CSRGraph):
    """Convert to a NetworkX DiGraph (edge u->v means v gathers from u)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_list()
    g.add_edges_from(zip(src.tolist(), dst.tolist(), strict=True))
    return g
