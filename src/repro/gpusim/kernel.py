"""Kernel launch descriptions and hardware-counter containers.

A :class:`KernelStats` is what every kernel's ``analyze()`` produces: the
set of Nsight-style counters the paper profiles (memory load traffic,
atomic store traffic, sector-per-request, warp work distribution, ...).
:class:`PipelineStats` aggregates a multi-kernel pipeline the way the paper
reports DGL's 18-kernel GAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LaunchConfig", "KernelStats", "PipelineStats"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of one kernel launch."""

    num_blocks: int
    threads_per_block: int
    regs_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if not 1 <= self.regs_per_thread <= 255:
            raise ValueError("regs_per_thread must be in [1, 255]")

    @property
    def num_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def warps_per_block(self, threads_per_warp: int = 32) -> int:
        return -(-self.threads_per_block // threads_per_warp)

    def num_warps(self, threads_per_warp: int = 32) -> int:
        return self.num_blocks * self.warps_per_block(threads_per_warp)


@dataclass
class KernelStats:
    """Modeled hardware counters of one kernel launch.

    All traffic counters are in units of 32-byte *sectors* except the
    ``*_bytes`` helpers.  ``warp_cycles`` carries the per-warp serial cost in
    cycles — the scheduler turns it into a makespan; everything else is a
    device-wide aggregate.
    """

    name: str
    launch: LaunchConfig

    # DRAM memory traffic (sector counts, post-cache — what "GB moved" means)
    load_sectors: int = 0
    store_sectors: int = 0
    atomic_sectors: int = 0

    # L1TEX-level sector counts (pre-cache — what sector/request measures).
    # When left at 0 they default to the DRAM counts.
    l1_load_sectors: int = 0
    l1_store_sectors: int = 0
    l1_atomic_sectors: int = 0

    # warp-level request counts (for sector-per-request)
    load_requests: int = 0
    store_requests: int = 0
    atomic_requests: int = 0

    # number of atomic operations issued (serialization term)
    atomic_ops: int = 0
    #: fraction of atomic ops expected to collide on a hot address
    atomic_collision_rate: float = 0.0

    # warp-wide arithmetic instructions (device aggregate)
    instructions: int = 0

    #: per-scheduled-unit serial cost in cycles.  For hardware assignment the
    #: unit is one warp's whole workload; for the software pool it is one
    #: chunk.  Shape (n_units,), float64.
    warp_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0))

    #: branch-divergent warp-iterations (idle-lane work), for SM utilization
    divergent_lanes: int = 0

    #: bytes of intermediate global-memory workspace this kernel materializes
    workspace_bytes: int = 0

    sector_bytes: int = 32

    # ------------------------------------------------------------------
    @property
    def total_sectors(self) -> int:
        return self.load_sectors + self.store_sectors + self.atomic_sectors

    @property
    def load_bytes(self) -> int:
        return self.load_sectors * self.sector_bytes

    @property
    def store_bytes(self) -> int:
        return self.store_sectors * self.sector_bytes

    @property
    def atomic_bytes(self) -> int:
        return self.atomic_sectors * self.sector_bytes

    @property
    def total_bytes(self) -> int:
        return self.total_sectors * self.sector_bytes

    @property
    def total_requests(self) -> int:
        return self.load_requests + self.store_requests + self.atomic_requests

    @property
    def l1_total_sectors(self) -> int:
        """Pre-cache sector count; defaults to DRAM counts when not set."""
        l1 = self.l1_load_sectors + self.l1_store_sectors + self.l1_atomic_sectors
        return l1 if l1 > 0 else self.total_sectors

    @property
    def sectors_per_request(self) -> float:
        """Nsight's "sector/req" — avg L1TEX sectors per warp-level request."""
        req = self.total_requests
        return self.l1_total_sectors / req if req else 0.0

    def validate(self) -> None:
        """Internal consistency checks (used by tests and the profiler)."""
        for f in (
            "load_sectors",
            "store_sectors",
            "atomic_sectors",
            "l1_load_sectors",
            "l1_store_sectors",
            "l1_atomic_sectors",
            "load_requests",
            "store_requests",
            "atomic_requests",
            "atomic_ops",
            "instructions",
            "divergent_lanes",
            "workspace_bytes",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")
        if self.load_requests == 0 and self.load_sectors > 0:
            raise ValueError("load sectors without load requests")
        if self.store_requests == 0 and self.store_sectors > 0:
            raise ValueError("store sectors without store requests")
        if self.atomic_requests == 0 and self.atomic_sectors > 0:
            raise ValueError("atomic sectors without atomic requests")
        if not 0.0 <= self.atomic_collision_rate <= 1.0:
            raise ValueError("atomic_collision_rate must be in [0,1]")
        if np.any(self.warp_cycles < 0):
            raise ValueError("warp_cycles must be non-negative")


@dataclass
class PipelineStats:
    """Counters of a multi-kernel pipeline (e.g. DGL's 18-kernel GAT)."""

    name: str
    kernels: list[KernelStats] = field(default_factory=list)
    #: host-side pre-processing time (GNNAdvisor reordering etc.), seconds
    preprocess_seconds: float = 0.0

    def add(self, stats: KernelStats) -> None:
        stats.validate()
        self.kernels.append(stats)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def total_bytes(self) -> int:
        return sum(k.total_bytes for k in self.kernels)

    @property
    def load_bytes(self) -> int:
        return sum(k.load_bytes for k in self.kernels)

    @property
    def atomic_bytes(self) -> int:
        return sum(k.atomic_bytes for k in self.kernels)

    @property
    def workspace_bytes(self) -> int:
        """Peak intermediate global-memory footprint of the pipeline."""
        return max((k.workspace_bytes for k in self.kernels), default=0)

    @property
    def total_workspace_bytes(self) -> int:
        """Sum of all intermediates — the "global mem usage" Table 3 reports."""
        return sum(k.workspace_bytes for k in self.kernels)
