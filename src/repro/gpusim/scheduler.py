"""Work scheduling models: hardware block distributor and greedy makespan.

The paper's hybrid workload balancing (Section 5) contrasts two policies:

* **hardware** — launch one warp per vertex; the GPU's block distributor
  dynamically feeds blocks to SMs.  Fewer warps per block = better balance
  but more blocks to schedule (overhead); more warps per block = the
  opposite.
* **software** — launch a fixed resident grid; warps pull chunks of
  vertices from a global atomic counter (Algorithm 1).

Both reduce to computing a *makespan* over per-unit costs.  We provide an
exact greedy list-scheduling simulation (heap-based, used for tests and
small inputs) and a fast analytical bound used at scale; the tests pin the
bound to the simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..obs.events import get_event_sink
from .config import GPUSpec
from .kernel import LaunchConfig

__all__ = [
    "ScheduleResult",
    "greedy_makespan",
    "hardware_schedule",
    "static_schedule",
    "software_pool_schedule",
]

#: Above this many tasks the exact heap simulation falls back to the bound.
_EXACT_SIM_LIMIT = 250_000


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one kernel's work onto the device."""

    makespan_cycles: float
    #: total busy warp-cycles (for achieved occupancy)
    busy_warp_cycles: float
    #: scheduling overhead included in the makespan (cycles)
    overhead_cycles: float
    #: number of scheduled units (blocks or chunks)
    num_units: int
    policy: str


def _emit_summary(result: ScheduleResult) -> ScheduleResult:
    """Report a finished schedule to the observability event sink."""
    sink = get_event_sink()
    if sink is not None:
        sink.schedule_summary(
            policy=result.policy,
            num_units=result.num_units,
            makespan_cycles=result.makespan_cycles,
            overhead_cycles=result.overhead_cycles,
        )
    return result


def greedy_makespan(
    costs: np.ndarray,
    workers: int,
    *,
    per_task_overhead: float = 0.0,
    exact: bool | None = None,
) -> float:
    """Makespan of greedy list scheduling of ``costs`` onto ``workers``.

    Tasks are taken in order by whichever worker frees first — the behaviour
    of both the hardware block distributor and the software task pool.  The
    analytical fallback is the classic Graham bound interpolation
    ``max(mean_load, max_task) <= makespan <= mean_load + max_task`` taken at
    the mean-plus-tail point, which the tests show tracks the simulation
    within a few percent for GNN-shaped distributions.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = costs.size
    if n == 0:
        return 0.0
    eff = costs + per_task_overhead
    if exact is None:
        exact = n <= _EXACT_SIM_LIMIT
    if not exact:
        mean_load = float(eff.sum()) / workers
        max_task = float(eff.max())
        if n <= workers:
            return max_task
        # Graham's list-scheduling guarantee: mean load plus the residual of
        # the worst task landing late.  Tests pin this against the exact
        # heap simulation for GNN-shaped cost distributions.
        return max(mean_load + max_task * (1.0 - 1.0 / workers), max_task)
    if n <= workers:
        return float(eff.max())
    # Initialize: first `workers` tasks start immediately.
    heap = sorted(float(c) for c in eff[:workers])
    heapq.heapify(heap)
    for c in eff[workers:]:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(c))
    return float(max(heap))


def hardware_schedule(
    warp_cycles: np.ndarray,
    launch: LaunchConfig,
    spec: GPUSpec,
    *,
    slot_share: float = 1.0,
) -> ScheduleResult:
    """Hardware dynamic block scheduling of per-warp costs.

    Consecutive warps are grouped into blocks of ``launch.warps_per_block``;
    a block occupies its warp slots until its *slowest* warp finishes (the
    intra-block imbalance the paper tunes warps-per-block against).  Blocks
    are then greedily distributed over the device's concurrent block slots,
    paying ``block_schedule_cycles`` each.

    ``slot_share`` models concurrent-kernel residency (CUDA streams): a
    kernel co-resident with others only gets that fraction of the device's
    block slots, so its SM-side makespan stretches accordingly.
    """
    if not 0.0 < slot_share <= 1.0:
        raise ValueError("slot_share must be in (0, 1]")
    warp_cycles = np.asarray(warp_cycles, dtype=np.float64)
    wpb = launch.warps_per_block(spec.threads_per_warp)
    n_warps = warp_cycles.size
    if n_warps == 0:
        return ScheduleResult(0.0, 0.0, 0.0, 0, "hardware")
    n_blocks = -(-n_warps // wpb)
    pad = n_blocks * wpb - n_warps
    padded = np.pad(warp_cycles, (0, pad))
    block_cost = padded.reshape(n_blocks, wpb).max(axis=1)
    blocks_per_sm = spec.occupancy_limit_blocks(
        launch.threads_per_block, launch.regs_per_thread, launch.shared_mem_per_block
    )
    slots = max(spec.num_sms * max(blocks_per_sm, 1), 1)
    slots = max(int(slots * slot_share), 1)
    makespan = greedy_makespan(
        block_cost, slots, per_task_overhead=spec.block_schedule_cycles
    )
    overhead = spec.block_schedule_cycles * n_blocks / slots
    # Busy cycles: a block's warp slots are held for the block's duration,
    # but only `warp_cycles` of it is useful work.
    busy = float(warp_cycles.sum())
    return _emit_summary(ScheduleResult(
        makespan_cycles=float(makespan),
        busy_warp_cycles=busy,
        overhead_cycles=float(overhead),
        num_units=n_blocks,
        policy="hardware",
    ))


def static_schedule(
    warp_cycles: np.ndarray,
    launch: LaunchConfig,
    spec: GPUSpec,
) -> ScheduleResult:
    """Compile-time-fixed block→slot assignment (FeatGraph/TVM templates).

    Blocks are assigned round-robin to the device's concurrent block slots
    *before* execution, so a slot that drew heavy blocks cannot steal work
    from an idle one — the imbalance the paper blames for FeatGraph's low
    achieved occupancy (Figure 9).
    """
    warp_cycles = np.asarray(warp_cycles, dtype=np.float64)
    wpb = launch.warps_per_block(spec.threads_per_warp)
    n_warps = warp_cycles.size
    if n_warps == 0:
        return ScheduleResult(0.0, 0.0, 0.0, 0, "static")
    n_blocks = -(-n_warps // wpb)
    pad = n_blocks * wpb - n_warps
    block_cost = np.pad(warp_cycles, (0, pad)).reshape(n_blocks, wpb).max(axis=1)
    blocks_per_sm = spec.occupancy_limit_blocks(
        launch.threads_per_block, launch.regs_per_thread, launch.shared_mem_per_block
    )
    slots = max(spec.num_sms * max(blocks_per_sm, 1), 1)
    # round-robin: slot s runs blocks s, s+slots, s+2*slots, ...
    pad_b = (-n_blocks) % slots
    per_slot = np.pad(block_cost, (0, pad_b)).reshape(-1, slots).sum(axis=0)
    makespan = float(per_slot.max())
    return _emit_summary(ScheduleResult(
        makespan_cycles=makespan,
        busy_warp_cycles=float(warp_cycles.sum()),
        overhead_cycles=0.0,
        num_units=n_blocks,
        policy="static",
    ))


def software_pool_schedule(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    step: int = 8,
    resident_warps: int | None = None,
) -> ScheduleResult:
    """Software task-pool scheduling (Algorithm 1 of the paper).

    ``vertex_cycles`` holds the per-vertex cost; warps atomically pull
    ``step`` consecutive vertices at a time.  The resident grid is fixed at
    the device's maximum concurrent warps, so there is no block-scheduling
    overhead — only one ``atomicAdd`` on the pool counter per chunk.
    """
    vertex_cycles = np.asarray(vertex_cycles, dtype=np.float64)
    if step < 1:
        raise ValueError("step must be >= 1")
    n = vertex_cycles.size
    if n == 0:
        return ScheduleResult(0.0, 0.0, 0.0, 0, "software")
    if resident_warps is None:
        resident_warps = spec.max_resident_warps
    n_chunks = -(-n // step)
    pad = n_chunks * step - n
    padded = np.pad(vertex_cycles, (0, pad))
    chunk_cost = padded.reshape(n_chunks, step).sum(axis=1)
    # One atomic fetch-add per chunk; contention grows with resident warps
    # but is bounded by the L2 atomic turnaround.
    fetch_cost = spec.cycles_per_atomic + spec.cycles_per_request
    makespan = greedy_makespan(
        chunk_cost, resident_warps, per_task_overhead=fetch_cost
    )
    overhead = fetch_cost * n_chunks / resident_warps
    return _emit_summary(ScheduleResult(
        makespan_cycles=float(makespan),
        busy_warp_cycles=float(vertex_cycles.sum()),
        overhead_cycles=float(overhead),
        num_units=n_chunks,
        policy="software",
    ))
