"""Concurrent kernel execution on CUDA-like streams (serving tier).

The offline cost model times one kernel at a time: a kernel owns the whole
device and finishes in ``gpu_seconds = max(compute-side, memory-side)``.
Online inference breaks that assumption — several micro-batches are
resident at once, each on its own stream, sharing SM issue bandwidth and
DRAM bandwidth.  This module adds that missing axis as an *online*
discrete-event simulator with a fluid (processor-sharing) service model:

* A :class:`StreamKernel` carries two demands, both in device-seconds when
  run alone: ``comp_seconds`` (SM makespan / issue-throughput side) and
  ``mem_seconds`` (DRAM bandwidth / L2-atomic side).
  :func:`repro.gpusim.costmodel.stream_demands` derives them from a
  :class:`~repro.gpusim.costmodel.KernelTiming`, so a kernel alone
  completes in exactly its offline ``gpu_seconds`` — single-stream serving
  reduces to the offline model (pinned by the serve parity tests).
* Each device resource is shared **equally among the resident kernels that
  still have remaining demand on it**.  A compute-bound kernel co-resident
  with a memory-bound one overlaps almost perfectly (each saturates the
  resource the other barely touches); two kernels bound on the same
  resource halve each other's rate — the same first-order behaviour the
  Lew et al. simulator study reports for concurrent ML kernels.
* Streams serialize their own kernels (FIFO).  Device-wide co-residency is
  capped by ``max_concurrent`` (hardware limit:
  :attr:`GPUSpec.max_concurrent_kernels`).
* Kernel launches serialize on the **host**: one launch occupies the host
  for ``launch_seconds`` before the kernel may enter the device.  This is
  what makes a six-kernel-per-batch pipeline (DGL-sim) pay its launch tax
  under load while the fused one-kernel TLPGNN batch pays it once.

Everything runs on the *simulated* clock — no wall time is read anywhere
(see DESIGN.md, "Determinism rules").
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field, replace

from ..obs.events import get_event_sink

__all__ = ["StreamKernel", "StreamCompletion", "MultiStreamSimulator"]

#: remaining demand below this many seconds counts as finished (sub-femto
#: relative to the micro/millisecond kernel scale — pure fp-noise absorber)
_REM_EPS = 1e-15
#: comparison slack when matching event times
_T_EPS = 1e-12


@dataclass(frozen=True)
class StreamKernel:
    """One kernel submission: demands are alone-run device-seconds."""

    name: str
    comp_seconds: float
    mem_seconds: float
    launch_seconds: float = 0.0
    #: opaque payload threaded through to the completion (e.g. a batch id)
    tag: object = None
    #: request-level tracing context (a :class:`repro.obs.reqtrace.
    #: BatchContext` on the serving path); None outside request tracing
    ctx: object = None

    def __post_init__(self) -> None:
        if self.comp_seconds < 0 or self.mem_seconds < 0 or self.launch_seconds < 0:
            raise ValueError("kernel demands must be non-negative")

    @property
    def alone_seconds(self) -> float:
        """Modeled GPU time when the kernel owns the device."""
        return max(self.comp_seconds, self.mem_seconds)

    def with_tag(self, tag: object) -> "StreamKernel":
        return replace(self, tag=tag)

    def with_ctx(self, ctx: object) -> "StreamKernel":
        return replace(self, ctx=ctx)


@dataclass(frozen=True)
class StreamCompletion:
    """Lifecycle timestamps of one finished kernel (simulated seconds)."""

    kernel: StreamKernel
    stream: int
    enqueue_s: float
    #: host began issuing the launch (after host-serialization wait)
    launch_start_s: float
    #: launch done — kernel eligible for a device co-residency slot
    ready_s: float
    #: began executing on the device
    start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.enqueue_s

    @property
    def run_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def stretch(self) -> float:
        """Run time relative to the alone-run time (1.0 = no contention)."""
        alone = self.kernel.alone_seconds
        return self.run_s / alone if alone > 0 else 1.0


@dataclass
class _Resident:
    """Fluid state of one kernel currently executing on the device."""

    kernel: StreamKernel
    stream: int
    seq: int
    enqueue_s: float
    launch_start_s: float
    ready_s: float
    start_s: float
    rem_comp: float = field(default=0.0)
    rem_mem: float = field(default=0.0)

    @property
    def done(self) -> bool:
        return self.rem_comp <= _REM_EPS and self.rem_mem <= _REM_EPS


class MultiStreamSimulator:
    """Online event-driven device: submit kernels, advance simulated time.

    Usage::

        sim = MultiStreamSimulator(num_streams=2)
        sim.submit(k1, stream=0, at_s=0.0)
        sim.submit(k2, stream=1, at_s=0.0)
        sim.advance_to(1e-3)          # process everything due by t=1ms
        done = sim.take_completions() # per-stream completion times
        sim.drain()                   # run the backlog dry

    Submissions must be non-decreasing in time per stream and must not be
    in the simulator's past — the serving loop naturally satisfies both.
    """

    def __init__(self, *, num_streams: int = 1, max_concurrent: int | None = None):
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        self.num_streams = num_streams
        self.max_concurrent = (
            num_streams if max_concurrent is None else max(1, int(max_concurrent))
        )
        self.now = 0.0
        self._host_free = 0.0
        self._seq = 0
        #: not-yet-launched submissions, FIFO per stream: (enqueue_s, seq, kernel)
        self._queues: list[deque] = [deque() for _ in range(num_streams)]
        #: stream occupied by a launched-but-unfinished kernel
        self._stream_busy = [False] * num_streams
        #: launched kernels waiting for a device slot: (ready_s, seq, _Resident)
        self._ready: list[tuple] = []
        self._running: list[_Resident] = []
        self._completions: list[StreamCompletion] = []
        #: integral of resident-kernel count over time (avg concurrency)
        self._concurrency_integral = 0.0
        self._busy_horizon = 0.0  # last finish seen, for makespan

    # ------------------------------------------------------------------
    # submission / inspection
    # ------------------------------------------------------------------
    def submit(self, kernel: StreamKernel, *, stream: int, at_s: float) -> None:
        """Enqueue ``kernel`` on ``stream`` at simulated time ``at_s``."""
        if not 0 <= stream < self.num_streams:
            raise ValueError(f"stream {stream} out of range")
        if at_s < self.now - _T_EPS:
            raise ValueError(f"submission at {at_s} is in the simulator's past")
        q = self._queues[stream]
        if q and at_s < q[-1][0] - _T_EPS:
            raise ValueError("per-stream submissions must be time-ordered")
        self._seq += 1
        q.append((max(at_s, self.now), self._seq, kernel))

    @property
    def busy(self) -> bool:
        """Any kernel pending, launched, or running."""
        return bool(
            self._running or self._ready or any(self._queues)
        )

    @property
    def completions(self) -> list[StreamCompletion]:
        """All completions recorded so far (in finish order)."""
        return list(self._completions)

    def take_completions(self) -> list[StreamCompletion]:
        """Return and clear the completions recorded since the last take."""
        out = self._completions
        self._completions = []
        return out

    def pending_work_s(self, stream: int) -> float:
        """Alone-run seconds of work submitted to ``stream`` and unfinished
        (the serving loop's least-loaded stream-selection key)."""
        total = sum(k.alone_seconds + k.launch_seconds
                    for _, _, k in self._queues[stream])
        for _, _, res in self._ready:
            if res.stream == stream:
                total += res.kernel.alone_seconds
        for res in self._running:
            if res.stream == stream:
                total += max(res.rem_comp, res.rem_mem)
        return total

    @property
    def makespan_s(self) -> float:
        """Finish time of the last completed kernel."""
        return self._busy_horizon

    def avg_concurrency(self) -> float:
        """Time-average resident-kernel count up to the last completion."""
        if self._busy_horizon <= 0:
            return 0.0
        return self._concurrency_integral / self._busy_horizon

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def advance_to(self, t_target: float) -> None:
        """Process all launches, admissions and completions due by ``t_target``
        and move the simulated clock there."""
        if t_target < self.now - _T_EPS:
            raise ValueError("cannot advance into the past")
        guard = 0
        while True:
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - safety valve
                raise RuntimeError("stream simulator failed to converge")
            changed = self._start_launches()
            changed |= self._admit_ready()
            t_next = self._next_event_time(t_target)
            if t_next is None:  # idle and nothing due: jump straight to target
                if math.isfinite(t_target):
                    self.now = max(self.now, t_target)
                return
            if t_next > self.now + _T_EPS:
                if t_next > t_target + _T_EPS:
                    # next event is beyond the horizon: integrate up to the
                    # horizon and stop there
                    self._integrate(t_target - self.now)
                    self.now = t_target
                    return
                self._integrate(t_next - self.now)
                self.now = t_next
                changed = True
            changed |= self._collect_finished()
            if not changed and self.now >= t_target - _T_EPS:
                return

    def drain(self) -> None:
        """Advance until every submitted kernel has completed."""
        self.advance_to(math.inf)

    # ------------------------------------------------------------------
    def _start_launches(self) -> bool:
        """Issue host launches for every stream-head kernel due now.

        The host is a single serialized dispatcher: simultaneous launches
        queue behind each other for ``launch_seconds`` each, in
        (enqueue time, submission order) order.
        """
        launchable = []
        for stream in range(self.num_streams):
            if self._stream_busy[stream] or not self._queues[stream]:
                continue
            enqueue_s, seq, kernel = self._queues[stream][0]
            if enqueue_s <= self.now + _T_EPS:
                launchable.append((enqueue_s, seq, stream, kernel))
        if not launchable:
            return False
        for enqueue_s, seq, stream, kernel in sorted(launchable):
            self._queues[stream].popleft()
            self._stream_busy[stream] = True
            launch_start = max(self.now, self._host_free)
            ready = launch_start + kernel.launch_seconds
            self._host_free = ready
            res = _Resident(
                kernel=kernel, stream=stream, seq=seq, enqueue_s=enqueue_s,
                launch_start_s=launch_start, ready_s=ready, start_s=ready,
                rem_comp=kernel.comp_seconds, rem_mem=kernel.mem_seconds,
            )
            heapq.heappush(self._ready, (ready, seq, res))
        return True

    def _admit_ready(self) -> bool:
        """Move launched kernels into the resident set, capacity permitting."""
        changed = False
        while (
            self._ready
            and len(self._running) < self.max_concurrent
            and self._ready[0][0] <= self.now + _T_EPS
        ):
            _, _, res = heapq.heappop(self._ready)
            res.start_s = max(res.ready_s, self.now)
            self._running.append(res)
            changed = True
        return changed

    def _rates(self) -> tuple[dict[int, float], dict[int, float]]:
        """Per-resident progress rates under equal per-resource sharing."""
        comp_active = [r for r in self._running if r.rem_comp > _REM_EPS]
        mem_active = [r for r in self._running if r.rem_mem > _REM_EPS]
        comp_rate = {id(r): 1.0 / len(comp_active) for r in comp_active}
        mem_rate = {id(r): 1.0 / len(mem_active) for r in mem_active}
        return comp_rate, mem_rate

    def _next_event_time(self, t_target: float) -> float | None:
        """Earliest upcoming event, or None when the device is fully idle."""
        candidates: list[float] = []
        if self._running:
            comp_rate, mem_rate = self._rates()
            for r in self._running:
                if r.rem_comp > _REM_EPS:
                    candidates.append(self.now + r.rem_comp / comp_rate[id(r)])
                if r.rem_mem > _REM_EPS:
                    candidates.append(self.now + r.rem_mem / mem_rate[id(r)])
                if r.done:
                    candidates.append(self.now)
        if self._ready and len(self._running) < self.max_concurrent:
            candidates.append(max(self._ready[0][0], self.now))
        for stream in range(self.num_streams):
            if not self._stream_busy[stream] and self._queues[stream]:
                candidates.append(max(self._queues[stream][0][0], self.now))
        if not candidates:
            return None
        return min(candidates)

    def _integrate(self, dt: float) -> None:
        """Advance the fluid state by ``dt`` simulated seconds."""
        if dt <= 0 or not self._running:
            return
        comp_rate, mem_rate = self._rates()
        for r in self._running:
            rate = comp_rate.get(id(r))
            if rate is not None:
                r.rem_comp = max(0.0, r.rem_comp - rate * dt)
            rate = mem_rate.get(id(r))
            if rate is not None:
                r.rem_mem = max(0.0, r.rem_mem - rate * dt)
        self._concurrency_integral += len(self._running) * dt

    def _collect_finished(self) -> bool:
        done = [r for r in self._running if r.done]
        if not done:
            return False
        sink = get_event_sink()
        for r in sorted(done, key=lambda r: r.seq):
            self._running.remove(r)
            self._stream_busy[r.stream] = False
            completion = StreamCompletion(
                kernel=r.kernel, stream=r.stream, enqueue_s=r.enqueue_s,
                launch_start_s=r.launch_start_s, ready_s=r.ready_s,
                start_s=r.start_s, finish_s=self.now,
            )
            self._completions.append(completion)
            self._busy_horizon = max(self._busy_horizon, self.now)
            if sink is not None:
                fields = dict(
                    name=r.kernel.name, stream=r.stream,
                    enqueue_s=r.enqueue_s, start_s=r.start_s,
                    finish_s=self.now, stretch=completion.stretch,
                )
                ctx = r.kernel.ctx
                if ctx is not None:
                    # request-level attribution: which batch / requests
                    # this kernel served (see repro.obs.reqtrace)
                    fields["batch"] = getattr(ctx, "bid", None)
                    rids = getattr(ctx, "rids", None)
                    if rids is not None:
                        fields["rids"] = list(rids)
                sink.emit("stream_kernel", **fields)
        return True
