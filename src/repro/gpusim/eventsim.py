"""Discrete-event simulation of the GPU block scheduler (validation tier).

The analytical schedules (:func:`~repro.gpusim.scheduler.hardware_schedule`
and friends) summarize makespans with greedy bounds.  This module runs the
actual process — blocks queuing for SM slots, warps occupying warp slots
until they finish, the work distributor assigning the next block to the
first SM with room — and reports the same quantities, so the tests can pin
the analytical model against an executable ground truth (same role the
micro-simulator plays for memory counters).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..obs.events import get_event_sink
from .config import GPUSpec
from .kernel import LaunchConfig

__all__ = ["EventSimResult", "simulate_hardware_scheduler", "simulate_task_pool_warps"]


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven scheduling run."""

    makespan_cycles: float
    #: per-SM total busy (block-occupied) cycles
    sm_busy_cycles: np.ndarray
    #: time-average fraction of the device's warp slots occupied
    avg_occupancy: float
    num_blocks: int

    @property
    def sm_imbalance(self) -> float:
        """max/mean ratio of per-SM busy time (1.0 = perfectly balanced)."""
        mean = self.sm_busy_cycles.mean()
        return float(self.sm_busy_cycles.max() / mean) if mean > 0 else 1.0


def simulate_hardware_scheduler(
    warp_cycles: np.ndarray,
    launch: LaunchConfig,
    spec: GPUSpec,
    *,
    slot_share: float = 1.0,
) -> EventSimResult:
    """Event-driven run of the hardware work distributor.

    Blocks are assigned in launch order to whichever SM frees a block slot
    first; a block holds its slot (and its warps' durations contribute to
    occupancy) until its slowest warp finishes, plus the per-block
    scheduling cost.

    ``slot_share`` restricts the kernel to that fraction of the device's
    (SM, block-slot) servers — the event-level counterpart of the
    ``slot_share`` parameter of
    :func:`repro.gpusim.scheduler.hardware_schedule`, used to model
    co-resident kernels on concurrent streams.
    """
    if not 0.0 < slot_share <= 1.0:
        raise ValueError("slot_share must be in (0, 1]")
    warp_cycles = np.asarray(warp_cycles, dtype=np.float64)
    wpb = launch.warps_per_block(spec.threads_per_warp)
    n_warps = warp_cycles.size
    if n_warps == 0:
        return EventSimResult(0.0, np.zeros(spec.num_sms), 0.0, 0)
    n_blocks = -(-n_warps // wpb)
    pad = n_blocks * wpb - n_warps
    per_block = np.pad(warp_cycles, (0, pad)).reshape(n_blocks, wpb)
    block_cost = per_block.max(axis=1) + spec.block_schedule_cycles

    blocks_per_sm = max(
        spec.occupancy_limit_blocks(
            launch.threads_per_block, launch.regs_per_thread,
            launch.shared_mem_per_block,
        ),
        1,
    )
    # each (sm, slot) pair is one server; ties at t=0 break SM-first so the
    # distributor round-robins across SMs before stacking blocks, as the
    # hardware does
    servers = [
        (0.0, slot, sm)
        for slot in range(blocks_per_sm)
        for sm in range(spec.num_sms)
    ]
    servers = servers[: max(int(len(servers) * slot_share), 1)]
    heapq.heapify(servers)
    sink = get_event_sink()
    if sink is not None:
        sink.kernel_launch(
            "hardware_scheduler", num_blocks=n_blocks, num_warps=n_warps
        )
    sm_busy = np.zeros(spec.num_sms, dtype=np.float64)
    warp_slot_cycles = 0.0  # integral of active warps over time
    makespan = 0.0
    for b in range(n_blocks):
        t, slot, sm = heapq.heappop(servers)
        finish = t + block_cost[b]
        sm_busy[sm] += block_cost[b]
        warp_slot_cycles += float(per_block[b].sum())
        makespan = max(makespan, finish)
        heapq.heappush(servers, (finish, slot, sm))
        if sink is not None:
            sink.block_assigned(
                block=b, sm=sm, start_cycles=t, end_cycles=finish,
                warps=int(wpb if b < n_blocks - 1 else wpb - pad),
            )
            sink.warp_complete(unit=b, sm=sm, at_cycles=finish)
    occupancy = warp_slot_cycles / (makespan * spec.max_resident_warps)
    return EventSimResult(
        makespan_cycles=float(makespan),
        sm_busy_cycles=sm_busy,
        avg_occupancy=float(min(occupancy, 1.0)),
        num_blocks=n_blocks,
    )


def simulate_task_pool_warps(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    step: int = 8,
    resident_warps: int | None = None,
) -> EventSimResult:
    """Event-driven run of Algorithm 1 with a device-wide resident grid.

    Unlike :func:`repro.balance.software.simulate_task_pool` (which traces
    ownership), this variant tracks SM busy time and occupancy so it is
    directly comparable with :func:`simulate_hardware_scheduler`.
    """
    vertex_cycles = np.asarray(vertex_cycles, dtype=np.float64)
    if resident_warps is None:
        resident_warps = spec.max_resident_warps
    n = vertex_cycles.size
    if n == 0:
        return EventSimResult(0.0, np.zeros(spec.num_sms), 0.0, 0)
    n_chunks = -(-n // step)
    pad = n_chunks * step - n
    chunk_cost = (
        np.pad(vertex_cycles, (0, pad)).reshape(n_chunks, step).sum(axis=1)
        + spec.cycles_per_atomic
        + spec.cycles_per_request
    )
    warps = [(0.0, w) for w in range(resident_warps)]
    heapq.heapify(warps)
    sink = get_event_sink()
    if sink is not None:
        sink.kernel_launch(
            "task_pool", num_blocks=n_chunks, num_warps=resident_warps
        )
    sm_busy = np.zeros(spec.num_sms, dtype=np.float64)
    warps_per_sm = max(resident_warps // spec.num_sms, 1)
    busy_total = 0.0
    makespan = 0.0
    for c in range(n_chunks):
        t, w = heapq.heappop(warps)
        finish = t + chunk_cost[c]
        sm = min(w // warps_per_sm, spec.num_sms - 1)
        sm_busy[sm] += chunk_cost[c]
        busy_total += chunk_cost[c]
        makespan = max(makespan, finish)
        heapq.heappush(warps, (finish, w))
        if sink is not None:
            # one pool chunk = one warp's atomically-fetched work item
            sink.block_assigned(
                block=c, sm=sm, start_cycles=t, end_cycles=finish, warps=1
            )
            sink.warp_complete(unit=c, sm=sm, at_cycles=finish)
    occupancy = busy_total / (makespan * spec.max_resident_warps)
    return EventSimResult(
        makespan_cycles=float(makespan),
        sm_busy_cycles=sm_busy,
        avg_occupancy=float(min(occupancy, 1.0)),
        num_blocks=n_chunks,
    )
