"""Occupancy computation — theoretical and achieved.

Theoretical occupancy follows the CUDA occupancy-calculator rules (resident
warps limited by warp slots, registers, shared memory, block slots).
Achieved occupancy is derived from the scheduler's makespan: it is the
time-average fraction of warp slots doing useful work, which is how Nsight
defines it and why imbalanced workloads show low values (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import GPUSpec
from .kernel import LaunchConfig

__all__ = [
    "OccupancyReport",
    "theoretical_occupancy",
    "envelope_occupancy",
    "achieved_occupancy",
]


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy limits of one launch configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    theoretical: float
    limited_by: str


def theoretical_occupancy(launch: LaunchConfig, spec: GPUSpec) -> OccupancyReport:
    """Occupancy-calculator result for ``launch`` on ``spec``."""
    warps_per_block = launch.warps_per_block(spec.threads_per_warp)
    by_warps = spec.max_warps_per_sm // warps_per_block
    by_regs = spec.registers_per_sm // max(
        launch.regs_per_thread * launch.threads_per_block, 1
    )
    by_smem = (
        spec.shared_mem_per_sm // launch.shared_mem_per_block
        if launch.shared_mem_per_block > 0
        else spec.max_blocks_per_sm
    )
    by_slots = spec.max_blocks_per_sm
    limits = {
        "warps": by_warps,
        "registers": by_regs,
        "shared_memory": by_smem,
        "block_slots": by_slots,
    }
    limiter = min(limits, key=limits.get)
    blocks = max(min(limits.values()), 0)
    # A grid smaller than the device also caps resident blocks.
    grid_blocks_per_sm = -(-launch.num_blocks // spec.num_sms)
    if grid_blocks_per_sm < blocks:
        blocks = grid_blocks_per_sm
        limiter = "grid_size"
    warps = blocks * warps_per_block
    return OccupancyReport(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        theoretical=min(warps / spec.max_warps_per_sm, 1.0),
        limited_by=limiter,
    )


def envelope_occupancy(
    spec: GPUSpec,
    *,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> OccupancyReport:
    """Grid-independent occupancy of a block resource *envelope*.

    The static-lint variant of :func:`theoretical_occupancy`: no launch
    exists yet, so there is no grid-size cap — only the per-block resource
    footprint against the SM's structural limits.  Unlike
    :meth:`GPUSpec.occupancy_limit_blocks`, this never raises on oversized
    envelopes; it reports zero resident blocks and the binding limiter so
    the resource sanitizer can turn that into a finding.
    """
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be positive")
    warps_per_block = -(-threads_per_block // spec.threads_per_warp)
    limits = {
        "warps": spec.max_warps_per_sm // warps_per_block,
        "registers": spec.registers_per_sm
        // max(regs_per_thread * threads_per_block, 1),
        "shared_memory": (
            spec.shared_mem_per_sm // shared_mem_per_block
            if shared_mem_per_block > 0
            else spec.max_blocks_per_sm
        ),
        "block_slots": spec.max_blocks_per_sm,
    }
    limiter = min(limits, key=limits.get)
    blocks = max(min(limits.values()), 0)
    warps = blocks * warps_per_block
    return OccupancyReport(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        theoretical=min(warps / spec.max_warps_per_sm, 1.0),
        limited_by=limiter,
    )


def achieved_occupancy(
    warp_cycles: np.ndarray,
    makespan_cycles: float,
    spec: GPUSpec,
    *,
    resident_limit: float | None = None,
) -> float:
    """Time-average active-warp fraction over the kernel's execution.

    ``sum(warp_cycles)`` is total warp-busy time; dividing by the makespan
    and the device's warp-slot count gives the average occupied fraction —
    exactly Nsight's achieved-occupancy semantics.  ``resident_limit``
    optionally caps the value at the theoretical occupancy.
    """
    if makespan_cycles <= 0:
        return 0.0
    total = float(np.sum(warp_cycles))
    occ = total / (makespan_cycles * spec.max_resident_warps)
    if resident_limit is not None:
        occ = min(occ, resident_limit)
    return float(min(occ, 1.0))
