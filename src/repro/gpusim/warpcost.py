"""Per-warp cycle cost assembly.

Every kernel expresses the serial cost of one scheduled unit (a warp's
whole vertex workload, or one pool chunk) from four ingredients:
instructions issued, memory requests issued, sectors moved, and atomic
serialization.  Keeping this in one place makes kernels comparable and the
calibration auditable.
"""

from __future__ import annotations

import numpy as np

from .atomics import atomic_serialization_cycles
from .config import GPUSpec

__all__ = ["warp_cycles"]


def warp_cycles(
    spec: GPUSpec,
    *,
    instructions: np.ndarray | float,
    requests: np.ndarray | float,
    sectors: np.ndarray | float,
    atomic_ops: np.ndarray | float = 0.0,
    collision_rate: float = 0.0,
) -> np.ndarray:
    """Serial cycles for scheduled unit(s) with the given per-unit counters.

    All arguments broadcast; the result is a float64 array.  Atomic cost is
    charged per unit with the supplied collision rate (see
    :func:`repro.gpusim.atomics.atomic_serialization_cycles`).
    """
    instructions = np.asarray(instructions, dtype=np.float64)
    requests = np.asarray(requests, dtype=np.float64)
    sectors = np.asarray(sectors, dtype=np.float64)
    atomic_ops = np.asarray(atomic_ops, dtype=np.float64)
    base = (
        instructions * spec.cycles_per_instr
        + requests * spec.cycles_per_request
        + sectors * spec.cycles_per_sector
    )
    if np.any(atomic_ops > 0):
        per_op = atomic_serialization_cycles(1, collision_rate, spec)
        base = base + atomic_ops * per_op
    return np.atleast_1d(base.astype(np.float64))
