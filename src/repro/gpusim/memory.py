"""Memory-system math: sector/coalescing analysis and a small cache model.

The GPU memory controller services warp-level requests in 32-byte sectors;
how many sectors one request touches is exactly the "sector per request"
metric the paper profiles (Table 2).  The functions here compute sector
counts for the access patterns the kernels use, both analytically
(vectorized, used at scale) and from raw addresses (used by the
micro-simulator to validate the analytical formulas).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = [
    "sectors_for_span",
    "sectors_for_addresses",
    "contiguous_warp_sectors",
    "scattered_rows_sectors",
    "strided_column_sectors",
    "cached_dram_sectors",
    "SectorCache",
]


def sectors_for_span(
    start_bytes: np.ndarray | int, nbytes: np.ndarray | int, sector_bytes: int = 32
) -> np.ndarray | int:
    """Sectors touched by contiguous byte span(s) ``[start, start+nbytes)``.

    Vectorized over arrays of spans.  Zero-length spans touch zero sectors.
    """
    start = np.asarray(start_bytes, dtype=np.int64)
    n = np.asarray(nbytes, dtype=np.int64)
    if np.any(n < 0):
        raise ValueError("span lengths must be non-negative")
    first = start // sector_bytes
    last = (start + n - 1) // sector_bytes
    out = np.where(n > 0, last - first + 1, 0)
    if out.ndim == 0:
        return int(out)
    return out


def sectors_for_addresses(addresses: np.ndarray, itemsize: int, sector_bytes: int = 32) -> int:
    """Distinct sectors touched by one warp request at given byte addresses.

    ``addresses`` are the per-lane starting byte addresses; each lane reads
    ``itemsize`` bytes.  This is the exact computation the micro-simulator
    performs per request.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    firsts = addresses // sector_bytes
    lasts = (addresses + itemsize - 1) // sector_bytes
    if np.all(firsts == lasts):
        return int(np.unique(firsts).size)
    spans = np.concatenate(
        [np.arange(f, l + 1) for f, l in zip(firsts, lasts, strict=True)]
    )
    return int(np.unique(spans).size)


def contiguous_warp_sectors(
    active_lanes: int, itemsize: int = 4, sector_bytes: int = 32
) -> int:
    """Sectors for one warp request reading ``active_lanes`` consecutive items.

    The perfectly coalesced pattern of the paper's feature parallelism:
    lane ``t`` reads ``base + t*itemsize``.  Assumes sector-aligned base (the
    common case for feature rows; misalignment adds at most one sector and is
    covered by the micro-simulator).
    """
    if active_lanes <= 0:
        return 0
    return -(-active_lanes * itemsize // sector_bytes)


def scattered_rows_sectors(
    active_lanes: int, row_stride_bytes: int, itemsize: int = 4, sector_bytes: int = 32
) -> int:
    """Sectors for one warp request where each lane reads one item from a
    *different* feature row (the thread-per-vertex anti-pattern, Fig 3a).

    If rows are at least a sector apart the lanes hit ``active_lanes``
    distinct sectors (worst case); with tiny rows several lanes may share a
    sector.
    """
    if active_lanes <= 0:
        return 0
    if row_stride_bytes >= sector_bytes:
        return active_lanes
    lanes_per_sector = max(sector_bytes // max(row_stride_bytes, itemsize), 1)
    return -(-active_lanes // lanes_per_sector)


def strided_column_sectors(
    active_lanes: int, stride_bytes: int, itemsize: int = 4, sector_bytes: int = 32
) -> int:
    """Sectors for one warp request reading a strided column (lane ``t`` reads
    ``base + t*stride``)."""
    if active_lanes <= 0:
        return 0
    if stride_bytes >= sector_bytes:
        return active_lanes
    lanes_per_sector = sector_bytes // stride_bytes
    return -(-active_lanes // lanes_per_sector)


def cached_dram_sectors(
    touches: int, unique_sectors: int, l2_bytes: int, *, sector_bytes: int = 32,
    max_hit: float = 0.95,
) -> int:
    """DRAM sectors after L2 filtering of a random-gather access stream.

    ``touches`` sector accesses hit ``unique_sectors`` distinct sectors;
    every distinct sector misses at least once, and repeat accesses hit with
    probability ~ ``l2_capacity / working_set`` (capped).  This captures the
    neighbour-feature reuse real GNN kernels get from L2 — without it the
    modeled traffic of gather-heavy kernels would overshoot the paper's
    measurements by the reuse factor.
    """
    if touches < 0 or unique_sectors < 0:
        raise ValueError("counts must be non-negative")
    if touches == 0 or unique_sectors == 0:
        return 0
    unique_sectors = min(unique_sectors, touches)
    working_bytes = unique_sectors * sector_bytes
    hit = min(max_hit, l2_bytes / working_bytes)
    repeats = touches - unique_sectors
    return int(round(unique_sectors + repeats * (1.0 - hit)))


class SectorCache:
    """Tiny LRU sector cache used by the micro-simulator for L1/L2 hit rates.

    Tracks hits/misses at sector granularity.  ``capacity_bytes`` rounds down
    to whole sectors.
    """

    def __init__(self, capacity_bytes: int, sector_bytes: int = 32) -> None:
        if capacity_bytes < sector_bytes:
            raise ValueError("cache must hold at least one sector")
        self.sector_bytes = sector_bytes
        self.capacity = capacity_bytes // sector_bytes
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, sector_id: int) -> bool:
        """Access one sector; returns True on hit."""
        if sector_id in self._lru:
            self._lru.move_to_end(sector_id)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[sector_id] = None
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
        return False

    def access_bytes(self, address: int, nbytes: int) -> tuple[int, int]:
        """Access a byte span; returns (hit_sectors, miss_sectors)."""
        if nbytes <= 0:
            return (0, 0)
        first = address // self.sector_bytes
        last = (address + nbytes - 1) // self.sector_bytes
        hits = sum(self.access(s) for s in range(first, last + 1))
        total = last - first + 1
        return hits, total - hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
