"""Nsight-Compute-style profile reports.

Collects the metric set Section 2.3 of the paper uses — runtime, GPU time,
memory load traffic, atomic store traffic, sector/request, stall for long
scoreboard, SM utilization, achieved occupancy, kernel launches — into a
single report object that the tables/figures render directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry, get_registry
from .costmodel import PipelineTiming
from .kernel import PipelineStats

__all__ = ["ProfileReport"]


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.2f} {unit}"
        n /= 1024
    return f"{n:.2f} TB"


@dataclass
class ProfileReport:
    """The full profile of one graph-convolution execution."""

    system: str
    model: str
    dataset: str
    timing: PipelineTiming
    stats: PipelineStats
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # the paper's metric names
    # ------------------------------------------------------------------
    @property
    def runtime_ms(self) -> float:
        return self.timing.runtime_seconds * 1e3

    @property
    def gpu_time_ms(self) -> float:
        return self.timing.gpu_seconds * 1e3

    @property
    def launch_overhead_ms(self) -> float:
        """The "Runtime - GPU time" row of Table 3."""
        return self.timing.launch_seconds * 1e3

    @property
    def preprocess_ms(self) -> float:
        return self.timing.preprocess_seconds * 1e3

    @property
    def total_ms(self) -> float:
        return self.timing.total_seconds * 1e3

    @property
    def kernel_launches(self) -> int:
        return self.stats.num_kernels

    @property
    def mem_load_bytes(self) -> int:
        return self.stats.load_bytes

    @property
    def mem_atomic_store_bytes(self) -> int:
        return self.stats.atomic_bytes

    @property
    def mem_total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def global_mem_usage_bytes(self) -> int:
        """Workspace the pipeline materializes in DRAM (Table 3 row)."""
        return self.stats.total_workspace_bytes

    @property
    def sm_utilization(self) -> float:
        return self.timing.avg_sm_utilization

    @property
    def achieved_occupancy(self) -> float:
        return self.timing.avg_occupancy

    @property
    def stall_long_scoreboard(self) -> float:
        return self.timing.avg_stall_scoreboard

    @property
    def sectors_per_request(self) -> float:
        sectors = sum(k.total_sectors for k in self.stats.kernels)
        requests = sum(k.total_requests for k in self.stats.kernels)
        return sectors / requests if requests else 0.0

    def as_dict(self) -> dict:
        """Flat metric dict for table rendering / EXPERIMENTS.md records."""
        return {
            "system": self.system,
            "model": self.model,
            "dataset": self.dataset,
            "runtime_ms": self.runtime_ms,
            "gpu_time_ms": self.gpu_time_ms,
            "launch_overhead_ms": self.launch_overhead_ms,
            "preprocess_ms": self.preprocess_ms,
            "kernel_launches": self.kernel_launches,
            "mem_load_bytes": self.mem_load_bytes,
            "mem_atomic_store_bytes": self.mem_atomic_store_bytes,
            "mem_total_bytes": self.mem_total_bytes,
            "global_mem_usage_bytes": self.global_mem_usage_bytes,
            "sm_utilization": self.sm_utilization,
            "achieved_occupancy": self.achieved_occupancy,
            "stall_long_scoreboard": self.stall_long_scoreboard,
            "sectors_per_request": self.sectors_per_request,
            **self.extras,
        }

    def publish(self, registry: MetricsRegistry | None = None, **labels) -> None:
        """Publish this report into the metrics registry.

        Uses the installed global registry when none is passed; a no-op
        when metrics are disabled (the default).
        """
        registry = registry if registry is not None else get_registry()
        if registry is None:
            return
        registry.observe_report(self.as_dict(), **labels)

    def summary(self) -> str:
        """Human-readable one-block summary (quickstart example output)."""
        d = self.as_dict()
        lines = [
            f"{self.system} / {self.model} / {self.dataset}",
            f"  runtime            : {d['runtime_ms']:.3f} ms "
            f"(GPU {d['gpu_time_ms']:.3f} ms + host {d['launch_overhead_ms']:.3f} ms)",
            f"  kernel launches    : {d['kernel_launches']}",
            f"  mem load traffic   : {_fmt_bytes(d['mem_load_bytes'])}",
            f"  atomic store traffic: {_fmt_bytes(d['mem_atomic_store_bytes'])}",
            f"  sector/request     : {d['sectors_per_request']:.2f}",
            f"  SM utilization     : {100 * d['sm_utilization']:.1f}%",
            f"  achieved occupancy : {100 * d['achieved_occupancy']:.1f}%",
            f"  stall long scoreboard: {d['stall_long_scoreboard']:.1f} cycles",
        ]
        if d["preprocess_ms"] > 0:
            lines.append(f"  pre-processing     : {d['preprocess_ms']:.3f} ms")
        return "\n".join(lines)
