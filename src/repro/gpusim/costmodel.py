"""Counter → time cost model (roofline + makespan + host overhead).

The model mirrors how the paper's measurements decompose:

* **GPU time** per kernel = max(SM makespan, DRAM bandwidth time).  The
  makespan comes from the scheduling policy (hardware blocks or software
  pool) over per-warp cycle costs; the bandwidth term charges every 32-byte
  sector the kernel moves.
* **Runtime − GPU time** (Table 3's launch-overhead row) = per-kernel host
  launch cost, plus a per-kernel framework dispatch cost for systems driven
  through a Python framework loop (DGL).
* Profiler metrics (achieved occupancy, SM utilization, stall-for-long-
  scoreboard) are derived from the same quantities, with the same
  directional semantics Nsight gives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.events import get_event_sink
from ..obs.metrics import get_registry
from .config import GPUSpec
from .kernel import KernelStats, PipelineStats
from .occupancy import achieved_occupancy
from .scheduler import ScheduleResult

__all__ = [
    "KernelTiming",
    "PipelineTiming",
    "estimate_kernel",
    "estimate_pipeline",
    "stream_demands",
]


@dataclass(frozen=True)
class KernelTiming:
    """Modeled timing and profiler metrics of one kernel launch."""

    name: str
    makespan_cycles: float
    sm_seconds: float
    bandwidth_seconds: float
    atomic_seconds: float
    gpu_seconds: float
    launch_seconds: float
    occupancy: float
    sm_utilization: float
    stall_scoreboard_cycles: float
    sectors_per_request: float
    total_bytes: int
    atomic_bytes: int

    @property
    def runtime_seconds(self) -> float:
        return self.gpu_seconds + self.launch_seconds


@dataclass
class PipelineTiming:
    """Aggregated timing of a multi-kernel pipeline."""

    name: str
    kernels: list[KernelTiming] = field(default_factory=list)
    framework_seconds: float = 0.0
    preprocess_seconds: float = 0.0

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def gpu_seconds(self) -> float:
        return sum(k.gpu_seconds for k in self.kernels)

    @property
    def launch_seconds(self) -> float:
        return sum(k.launch_seconds for k in self.kernels) + self.framework_seconds

    @property
    def runtime_seconds(self) -> float:
        """Kernel time + host overhead (excludes one-off pre-processing)."""
        return self.gpu_seconds + self.launch_seconds

    @property
    def total_seconds(self) -> float:
        """End-to-end including pre-processing."""
        return self.runtime_seconds + self.preprocess_seconds

    @property
    def total_bytes(self) -> int:
        return sum(k.total_bytes for k in self.kernels)

    @property
    def atomic_bytes(self) -> int:
        return sum(k.atomic_bytes for k in self.kernels)

    @property
    def avg_sm_utilization(self) -> float:
        """GPU-time-weighted average SM utilization across kernels."""
        total = self.gpu_seconds
        if total <= 0:
            return 0.0
        return sum(k.sm_utilization * k.gpu_seconds for k in self.kernels) / total

    @property
    def avg_occupancy(self) -> float:
        total = self.gpu_seconds
        if total <= 0:
            return 0.0
        return sum(k.occupancy * k.gpu_seconds for k in self.kernels) / total

    @property
    def avg_stall_scoreboard(self) -> float:
        total = self.gpu_seconds
        if total <= 0:
            return 0.0
        return (
            sum(k.stall_scoreboard_cycles * k.gpu_seconds for k in self.kernels)
            / total
        )


def estimate_kernel(
    stats: KernelStats,
    schedule: ScheduleResult,
    spec: GPUSpec,
    *,
    theoretical_occupancy: float | None = None,
) -> KernelTiming:
    """Convert one kernel's counters + schedule into modeled time & metrics."""
    stats.validate()
    makespan = schedule.makespan_cycles
    sm_seconds = makespan / spec.clock_hz
    bandwidth_seconds = stats.total_bytes / spec.mem_bandwidth_bytes_per_s
    # Device-level atomic-unit serialization: scatter kernels funnel every
    # read-modify-write through the L2 atomic pipeline (Observation I).
    eff_ops = stats.atomic_ops * (
        1.0
        + stats.atomic_collision_rate * (spec.atomic_contention_factor - 1.0)
    )
    atomic_seconds = eff_ops / (spec.atomic_ops_per_cycle * spec.clock_hz)
    # SM issue-throughput bound: resident warps share each SM's issue slots,
    # so aggregate warp-busy cycles cannot retire faster than the device-wide
    # issue bandwidth even when no single warp is the critical path.
    issue_seconds = schedule.busy_warp_cycles / (
        spec.num_sms * spec.issue_slots_per_sm * spec.clock_hz
    )

    # Achieved occupancy measures *scheduling quality*: the time-average
    # active-warp fraction over the SM-side makespan (a bandwidth-stretched
    # kernel keeps its warps resident, so stretching must not dilute it).
    occupancy = achieved_occupancy(
        stats.warp_cycles
        if stats.warp_cycles.size
        else np.array([schedule.busy_warp_cycles]),
        max(schedule.makespan_cycles, 1.0),
        spec,
        resident_limit=theoretical_occupancy,
    )

    # Little's law: DRAM bandwidth is only reachable with enough warps in
    # flight to cover the memory latency.  Poorly scheduled kernels (static
    # mapping, huge blocks) run tails at low occupancy and leave bandwidth
    # on the table — the mechanism behind the paper's Figure 9/10 gaps.
    bw_efficiency = min(1.0, 0.05 + occupancy / spec.bw_occupancy_knee)
    bandwidth_seconds = bandwidth_seconds / bw_efficiency

    gpu_seconds = max(sm_seconds, issue_seconds, bandwidth_seconds, atomic_seconds)
    eff_makespan = gpu_seconds * spec.clock_hz

    # SM utilization: fraction of SM pipeline bandwidth doing useful work —
    # arithmetic issue plus the address/memory pipes the requests occupy.
    issue_cycles = (
        stats.instructions + 0.5 * stats.total_requests
    ) * spec.cycles_per_instr * 5.0
    denom = max(eff_makespan * spec.num_sms, 1.0)
    sm_utilization = float(min(issue_cycles / denom, 1.0))

    # Stall-for-long-scoreboard: average cycles a warp sits on a memory
    # dependency.  Scales with DRAM pressure (bandwidth utilization) and with
    # how badly coalesced the requests are (sectors/request above the
    # fully-coalesced 4).
    # Stall-for-long-scoreboard: how many cycles a warp typically sits on a
    # memory dependency.  Driven by memory intensity (DRAM bytes moved per
    # warp instruction — lean kernels wait less) and worsened by uncoalesced
    # requests (sector/request above the fully-coalesced 4).
    intensity = stats.total_bytes / max(stats.instructions, 1)
    spr = stats.sectors_per_request
    coalesce_penalty = max(spr / 4.0, 1.0) ** 0.5 if spr > 0 else 1.0
    stall = (
        spec.mem_latency_cycles
        * (intensity / (intensity + 64.0))
        * coalesce_penalty
    )

    timing = KernelTiming(
        name=stats.name,
        makespan_cycles=float(eff_makespan),
        sm_seconds=sm_seconds,
        bandwidth_seconds=bandwidth_seconds,
        atomic_seconds=atomic_seconds,
        gpu_seconds=gpu_seconds,
        launch_seconds=spec.kernel_launch_seconds,
        occupancy=occupancy,
        sm_utilization=sm_utilization,
        stall_scoreboard_cycles=float(stall),
        sectors_per_request=spr,
        total_bytes=stats.total_bytes,
        atomic_bytes=stats.atomic_bytes,
    )
    registry = get_registry()
    if registry is not None:
        registry.observe_kernel_timing(stats.name, timing, stats)
    sink = get_event_sink()
    if sink is not None and stats.atomic_ops:
        sink.atomic_serialization(
            kernel=stats.name,
            atomic_ops=stats.atomic_ops,
            collision_rate=stats.atomic_collision_rate,
            atomic_seconds=atomic_seconds,
        )
    return timing


def stream_demands(timing: KernelTiming) -> tuple[float, float]:
    """Split one kernel's modeled GPU time into (compute, memory) demands
    for concurrent-stream simulation (:mod:`repro.gpusim.streams`).

    The memory side is what the kernel needs from DRAM bandwidth and the L2
    atomic unit; the compute side covers the SM makespan and device issue
    throughput.  A kernel alone completes in the max of the two — exactly
    its ``gpu_seconds`` — so single-stream serving reduces to the offline
    model (the serve parity tests pin this).
    """
    mem = max(timing.bandwidth_seconds, timing.atomic_seconds)
    # gpu_seconds = max(sm, issue, bandwidth, atomic): when the binding term
    # is compute-side it is gpu_seconds itself (sm or issue); otherwise the
    # compute side contributes its makespan only.
    comp = timing.gpu_seconds if timing.gpu_seconds > mem else timing.sm_seconds
    return comp, mem


def estimate_pipeline(
    pipeline: PipelineStats,
    timings: list[KernelTiming],
    spec: GPUSpec,
    *,
    framework_dispatch: bool = False,
) -> PipelineTiming:
    """Assemble per-kernel timings into a pipeline total.

    ``framework_dispatch=True`` adds the per-kernel Python-framework
    dispatch cost the paper measures for DGL ("Runtime - GPU time").
    """
    fw = (
        spec.framework_dispatch_seconds * len(timings)
        if framework_dispatch
        else 0.0
    )
    return PipelineTiming(
        name=pipeline.name,
        kernels=list(timings),
        framework_seconds=fw,
        preprocess_seconds=pipeline.preprocess_seconds,
    )
