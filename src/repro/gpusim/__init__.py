"""GPU execution model: hardware spec, memory/coalescing math, occupancy,
block/pool scheduling, atomics, cost model, profiler, and an exact
micro-simulator used to validate the analytical counters."""

from .atomics import (
    atomic_serialization_cycles,
    expected_warp_conflicts,
    scatter_collision_rate,
)
from .config import A100, V100, GPUSpec, scaled_spec
from .costmodel import (
    KernelTiming,
    PipelineTiming,
    estimate_kernel,
    estimate_pipeline,
    stream_demands,
)
from .kernel import KernelStats, LaunchConfig, PipelineStats
from .memory import (
    cached_dram_sectors,
    SectorCache,
    contiguous_warp_sectors,
    scattered_rows_sectors,
    sectors_for_addresses,
    sectors_for_span,
    strided_column_sectors,
)
from .eventsim import (
    EventSimResult,
    simulate_hardware_scheduler,
    simulate_task_pool_warps,
)
from .microsim import AddressMap, MicroSim
from .occupancy import OccupancyReport, achieved_occupancy, theoretical_occupancy
from .profiler import ProfileReport
from .roofline import RooflinePoint, machine_balance, roofline
from .scheduler import (
    ScheduleResult,
    greedy_makespan,
    hardware_schedule,
    software_pool_schedule,
    static_schedule,
)
from .streams import MultiStreamSimulator, StreamCompletion, StreamKernel
from .warpcost import warp_cycles

__all__ = [
    "GPUSpec",
    "V100",
    "scaled_spec",
    "A100",
    "LaunchConfig",
    "KernelStats",
    "PipelineStats",
    "KernelTiming",
    "PipelineTiming",
    "estimate_kernel",
    "estimate_pipeline",
    "stream_demands",
    "StreamKernel",
    "StreamCompletion",
    "MultiStreamSimulator",
    "OccupancyReport",
    "theoretical_occupancy",
    "achieved_occupancy",
    "ScheduleResult",
    "greedy_makespan",
    "hardware_schedule",
    "software_pool_schedule",
    "static_schedule",
    "sectors_for_span",
    "sectors_for_addresses",
    "contiguous_warp_sectors",
    "scattered_rows_sectors",
    "strided_column_sectors",
    "SectorCache",
    "cached_dram_sectors",
    "AddressMap",
    "MicroSim",
    "EventSimResult",
    "simulate_hardware_scheduler",
    "simulate_task_pool_warps",
    "ProfileReport",
    "RooflinePoint",
    "roofline",
    "machine_balance",
    "scatter_collision_rate",
    "atomic_serialization_cycles",
    "expected_warp_conflicts",
    "warp_cycles",
]
