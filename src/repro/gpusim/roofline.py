"""Roofline classification of modeled kernels.

Answers "what is this kernel limited by?" from the same quantities the cost
model uses: arithmetic intensity vs the machine balance point, plus the
atomic-unit and issue-throughput ceilings.  The examples and the ablation
benches use this to explain *why* a configuration wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GPUSpec
from .costmodel import KernelTiming
from .kernel import KernelStats

__all__ = ["RooflinePoint", "roofline", "machine_balance"]


def machine_balance(spec: GPUSpec) -> float:
    """FLOP/byte at which compute and bandwidth ceilings intersect.

    Instruction throughput is taken as one warp-wide instruction per issue
    slot per cycle (32 lane-ops each).
    """
    flops_per_s = (
        spec.num_sms * spec.issue_slots_per_sm * spec.threads_per_warp * spec.clock_hz
    )
    return flops_per_s / spec.mem_bandwidth_bytes_per_s


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against the device's ceilings."""

    name: str
    #: warp-instruction lane-ops per DRAM byte
    arithmetic_intensity: float
    #: which ceiling binds: "bandwidth" | "compute" | "atomic" | "latency"
    bound_by: str
    #: fraction of the binding ceiling actually achieved
    ceiling_utilization: float
    gpu_seconds: float

    def describe(self) -> str:
        return (
            f"{self.name}: {self.bound_by}-bound "
            f"(AI={self.arithmetic_intensity:.2f} lane-ops/B, "
            f"{100 * self.ceiling_utilization:.0f}% of ceiling, "
            f"{self.gpu_seconds * 1e3:.3f} ms)"
        )


def roofline(stats: KernelStats, timing: KernelTiming, spec: GPUSpec) -> RooflinePoint:
    """Place one analyzed kernel on the roofline."""
    lane_ops = stats.instructions * spec.threads_per_warp
    ai = lane_ops / max(stats.total_bytes, 1)

    terms = {
        "bandwidth": timing.bandwidth_seconds,
        "atomic": timing.atomic_seconds,
        "latency": timing.sm_seconds,  # per-warp serial chains / imbalance
    }
    compute_seconds = lane_ops / (
        spec.num_sms
        * spec.issue_slots_per_sm
        * spec.threads_per_warp
        * spec.clock_hz
    )
    terms["compute"] = compute_seconds
    bound_by = max(terms, key=terms.get)
    # how close the kernel runs to the ceiling that binds it
    util = terms[bound_by] / timing.gpu_seconds if timing.gpu_seconds > 0 else 0.0
    return RooflinePoint(
        name=stats.name,
        arithmetic_intensity=float(ai),
        bound_by=bound_by,
        ceiling_utilization=float(min(util, 1.0)),
        gpu_seconds=timing.gpu_seconds,
    )
