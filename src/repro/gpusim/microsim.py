"""Exact warp-level trace simulator (validation tier).

At small scale we can afford to step every warp of a kernel and count real
memory transactions from real byte addresses.  The kernels' vectorized
``analyze()`` formulas are validated against these counts in the test
suite, which keeps the large-scale analytical model honest.

The simulator exposes warp-level request primitives; kernel modules provide
``trace(graph, feat_dim, sim)`` functions that replay their access pattern
through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import GPUSpec
from .memory import SectorCache, sectors_for_addresses

__all__ = ["AddressMap", "MicroSim"]


def _align_up(x: int, align: int) -> int:
    return -(-x // align) * align


@dataclass(frozen=True)
class AddressMap:
    """Byte layout of the kernel's device arrays.

    All arrays are 128-byte aligned, feature/output rows are ``4*feat_dim``
    bytes, index elements are 4 bytes (CUDA ``int``), matching the layout
    the analytical formulas assume.
    """

    num_vertices: int
    num_edges: int
    feat_dim: int
    feat_base: int
    out_base: int
    indptr_base: int
    indices_base: int
    edge_val_base: int
    itemsize: int = 4

    @classmethod
    def create(
        cls, num_vertices: int, num_edges: int, feat_dim: int, *, align: int = 128
    ) -> "AddressMap":
        feat_base = 0
        row = 4 * feat_dim
        out_base = _align_up(feat_base + num_vertices * row, align)
        indptr_base = _align_up(out_base + num_vertices * row, align)
        indices_base = _align_up(indptr_base + 4 * (num_vertices + 1), align)
        edge_val_base = _align_up(indices_base + 4 * num_edges, align)
        return cls(
            num_vertices=num_vertices,
            num_edges=num_edges,
            feat_dim=feat_dim,
            feat_base=feat_base,
            out_base=out_base,
            indptr_base=indptr_base,
            indices_base=indices_base,
            edge_val_base=edge_val_base,
        )

    # address helpers ---------------------------------------------------
    def feat_addr(self, vertex, dim=0):
        return self.feat_base + (np.asarray(vertex) * self.feat_dim + dim) * 4

    def out_addr(self, vertex, dim=0):
        return self.out_base + (np.asarray(vertex) * self.feat_dim + dim) * 4

    def indptr_addr(self, i):
        return self.indptr_base + np.asarray(i) * 4

    def indices_addr(self, i):
        return self.indices_base + np.asarray(i) * 4

    def edge_val_addr(self, i):
        return self.edge_val_base + np.asarray(i) * 4


@dataclass
class MicroSim:
    """Transaction counter fed by warp-level request primitives."""

    spec: GPUSpec = field(default_factory=GPUSpec)
    l1: SectorCache | None = None

    load_sectors: int = 0
    store_sectors: int = 0
    atomic_sectors: int = 0
    load_requests: int = 0
    store_requests: int = 0
    atomic_requests: int = 0
    atomic_ops: int = 0
    instructions: int = 0
    divergent_lanes: int = 0

    def with_l1(self) -> "MicroSim":
        """Enable the L1 sector cache (hit counting only; DRAM-sector
        counters still report pre-cache transactions so they stay comparable
        with the analytical formulas)."""
        self.l1 = SectorCache(self.spec.l1_bytes, self.spec.sector_bytes)
        return self

    # ------------------------------------------------------------------
    def _count(self, addresses: np.ndarray, itemsize: int) -> int:
        addresses = np.atleast_1d(np.asarray(addresses, dtype=np.int64))
        if addresses.size > self.spec.threads_per_warp:
            raise ValueError("a warp request carries at most 32 lane addresses")
        n = sectors_for_addresses(addresses, itemsize, self.spec.sector_bytes)
        if self.l1 is not None:
            firsts = addresses // self.spec.sector_bytes
            lasts = (addresses + itemsize - 1) // self.spec.sector_bytes
            for f, l in zip(firsts, lasts, strict=True):
                for s in range(int(f), int(l) + 1):
                    self.l1.access(s)
        return n

    def warp_load(self, addresses, itemsize: int = 4) -> None:
        """One warp-level load request at the given per-lane byte addresses."""
        self.load_requests += 1
        self.load_sectors += self._count(addresses, itemsize)

    def warp_store(self, addresses, itemsize: int = 4) -> None:
        self.store_requests += 1
        self.store_sectors += self._count(addresses, itemsize)

    def warp_atomic(self, addresses, itemsize: int = 4) -> None:
        """One warp-level atomic RMW request; each lane address is one op."""
        addresses = np.atleast_1d(np.asarray(addresses, dtype=np.int64))
        self.atomic_requests += 1
        self.atomic_ops += int(addresses.size)
        self.atomic_sectors += self._count(addresses, itemsize)

    def issue(self, n: int = 1) -> None:
        """Count ``n`` warp-wide arithmetic instructions."""
        self.instructions += n

    def diverge(self, idle_lanes: int) -> None:
        """Record idle lanes in a divergent warp-instruction."""
        self.divergent_lanes += idle_lanes

    # ------------------------------------------------------------------
    @property
    def total_sectors(self) -> int:
        return self.load_sectors + self.store_sectors + self.atomic_sectors

    @property
    def total_requests(self) -> int:
        return self.load_requests + self.store_requests + self.atomic_requests

    @property
    def sectors_per_request(self) -> float:
        return self.total_sectors / self.total_requests if self.total_requests else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate if self.l1 is not None else 0.0
