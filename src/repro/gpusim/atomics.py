"""Atomic-operation cost model.

Atomic read-modify-write traffic is the villain of the paper's Observation I:
push / edge-centric / GNNAdvisor all scatter per-edge partial results with
``atomicAdd``, turning parallel updates into serialized L2 transactions.
This module estimates (a) how many atomic ops a scatter pattern issues,
(b) the expected same-address collision rate, and (c) the serialization
cycles those collisions cost.
"""

from __future__ import annotations

import numpy as np

from .config import GPUSpec

__all__ = [
    "scatter_collision_rate",
    "atomic_serialization_cycles",
    "expected_warp_conflicts",
]


def scatter_collision_rate(in_degrees: np.ndarray, window: int = 32) -> float:
    """Expected fraction of atomic updates that collide on a hot address.

    When edges update destination features concurrently, two updates to the
    same destination inside one scheduling window serialize.  For a vertex
    of in-degree ``d`` whose ``d`` updates land across the kernel, the chance
    any given update shares its window with another update to the same
    address grows as ``d / (d + window)``.  We take the edge-weighted mean,
    which makes hub-heavy graphs (Reddit-like) collide almost always and
    near-regular sparse graphs rarely — matching the paper's observation
    that atomics hurt most on skewed, dense graphs.
    """
    deg = np.asarray(in_degrees, dtype=np.float64)
    total = deg.sum()
    if total <= 0:
        return 0.0
    per_vertex = deg / (deg + float(window))
    return float((per_vertex * deg).sum() / total)


def expected_warp_conflicts(num_lanes: int, num_targets: int) -> float:
    """Expected max multiplicity when ``num_lanes`` lanes atomically hit
    ``num_targets`` uniformly-random addresses (intra-warp serialization
    depth, birthday-problem style)."""
    if num_lanes <= 1 or num_targets <= 0:
        return 1.0
    if num_targets == 1:
        return float(num_lanes)
    # Expected number of lanes per occupied address as a serialization proxy.
    occupied = num_targets * (1.0 - (1.0 - 1.0 / num_targets) ** num_lanes)
    return max(num_lanes / occupied, 1.0)


def atomic_serialization_cycles(
    n_ops: int, collision_rate: float, spec: GPUSpec
) -> float:
    """Total extra cycles serialization adds for ``n_ops`` atomic operations."""
    if n_ops <= 0:
        return 0.0
    if not 0.0 <= collision_rate <= 1.0:
        raise ValueError("collision_rate must be in [0, 1]")
    base = n_ops * spec.cycles_per_atomic
    contended = base * collision_rate * (spec.atomic_contention_factor - 1.0)
    return float(base + contended)
