"""GPU hardware description and cost-model constants.

Defaults describe an NVIDIA Tesla V100 (SXM2 32GB), the device the paper
profiles on (80 SMs, 64 KB registers per SM, up to 64 resident warps per
SM, 32-byte memory sectors, 128-byte cache lines, ~900 GB/s HBM2).

The cycle/latency constants below are a *model*, calibrated so that the
counter-level effects the paper measures (atomic serialization, coalescing,
launch overhead, scheduling overhead) translate into runtime ratios of the
magnitude the paper reports.  They are all overridable per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "V100", "A100", "scaled_spec"]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware limits and cost constants of the modeled device."""

    name: str = "V100-SXM2-32GB"

    # ---- structural limits -------------------------------------------------
    num_sms: int = 80
    threads_per_warp: int = 32
    max_warps_per_sm: int = 64
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_mem_per_sm: int = 96 * 1024
    dram_bytes: int = 32 * 1024**3
    #: device limit on concurrently resident kernels (CUDA concurrent-kernel
    #: execution; V100/A100 allow 128 streams' worth of co-residency)
    max_concurrent_kernels: int = 128

    # ---- memory system -----------------------------------------------------
    sector_bytes: int = 32
    cache_line_bytes: int = 128
    l1_bytes: int = 128 * 1024
    l2_bytes: int = 6 * 1024**2
    mem_bandwidth_bytes_per_s: float = 900e9
    mem_latency_cycles: float = 400.0

    # ---- clocks ------------------------------------------------------------
    clock_hz: float = 1.38e9

    # ---- per-warp cycle costs (cost model) ---------------------------------
    #: issue cost of one warp-level memory request (address gen + MIO queue)
    cycles_per_request: float = 1.0
    #: SM-side cost per 32B sector moved (L2/DRAM service, amortized)
    cycles_per_sector: float = 0.4
    #: one warp-wide arithmetic instruction
    cycles_per_instr: float = 0.4
    #: extra serialization per atomic memory operation (read-modify-write
    #: turnaround at the L2 atomic unit)
    cycles_per_atomic: float = 24.0
    #: additional contention multiplier applied to atomics that collide on
    #: the same address within a warp window
    atomic_contention_factor: float = 2.0
    #: device-wide L2 atomic-unit throughput (independent-address ops/cycle);
    #: the serialization bottleneck of scatter-style kernels (Observation I)
    atomic_ops_per_cycle: float = 96.0

    # ---- scheduling & launch costs ------------------------------------------
    #: hardware work-distributor cost to place one block on an SM
    block_schedule_cycles: float = 60.0
    #: host-side cost of one kernel launch (driver + runtime), seconds
    kernel_launch_seconds: float = 8e-6
    #: extra per-kernel host overhead when driven through a Python framework
    #: dispatcher (DGL-style); the paper measures this as "Runtime - GPU time"
    framework_dispatch_seconds: float = 60e-6

    #: latency-hiding: fraction of memory latency hidden per extra resident
    #: warp beyond the first (used for the stall / occupancy interplay)
    latency_hiding_per_warp: float = 0.94
    #: warp-instruction issue slots per SM per cycle (device-wide issue
    #: throughput bound = num_sms * issue_slots_per_sm)
    issue_slots_per_sm: float = 4.0
    #: achieved occupancy at which resident warps can saturate DRAM
    #: bandwidth (Little's-law knee)
    bw_occupancy_knee: float = 0.35

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy with the given constants replaced."""
        return replace(self, **kwargs)

    # ---- derived -----------------------------------------------------------
    @property
    def max_resident_warps(self) -> int:
        """Device-wide resident-warp ceiling."""
        return self.num_sms * self.max_warps_per_sm

    @property
    def sectors_per_line(self) -> int:
        return self.cache_line_bytes // self.sector_bytes

    def occupancy_limit_blocks(self, threads_per_block: int, regs_per_thread: int,
                               smem_per_block: int = 0) -> int:
        """Max concurrent blocks per SM given the block's resource footprint."""
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if threads_per_block > self.max_threads_per_block:
            raise ValueError(
                f"threads_per_block {threads_per_block} exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        warps = -(-threads_per_block // self.threads_per_warp)
        by_warps = self.max_warps_per_sm // warps
        by_regs = (
            self.registers_per_sm // max(regs_per_thread * threads_per_block, 1)
        )
        by_smem = (
            self.shared_mem_per_sm // smem_per_block
            if smem_per_block > 0
            else self.max_blocks_per_sm
        )
        return max(0, min(by_warps, by_regs, by_smem, self.max_blocks_per_sm))


def scaled_spec(spec: "GPUSpec", scale: float) -> "GPUSpec":
    """Shrink the device together with a scaled-down dataset.

    When a dataset stand-in carries ``scale < 1`` of the original graph,
    shrinking the throughput-side resources (SMs, L2, bandwidth, atomic
    units) by the same factor preserves the work-to-machine ratios the
    paper's effects depend on — and makes the modeled milliseconds directly
    comparable to full-size measurements.  Host-side costs (kernel launch,
    framework dispatch) stay absolute, as they are on real hardware.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if scale == 1.0:
        return spec
    return spec.with_overrides(
        num_sms=max(2, round(spec.num_sms * scale)),
        l2_bytes=max(64 * 1024, int(spec.l2_bytes * scale)),
        mem_bandwidth_bytes_per_s=spec.mem_bandwidth_bytes_per_s * scale,
        atomic_ops_per_cycle=max(2.0, spec.atomic_ops_per_cycle * scale),
    )


#: The paper's evaluation device.
V100 = GPUSpec()

#: A100-SXM4-40GB preset — for checking that the paper's conclusions carry
#: to a newer part (more SMs, much larger L2, HBM2e bandwidth, faster
#: atomics).  Structural limits per the A100 whitepaper; cost constants
#: inherit the V100 calibration.
A100 = GPUSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    registers_per_sm=65536,
    shared_mem_per_sm=164 * 1024,
    dram_bytes=40 * 1024**3,
    l2_bytes=40 * 1024**2,
    mem_bandwidth_bytes_per_s=1555e9,
    clock_hz=1.41e9,
    atomic_ops_per_cycle=160.0,
)
