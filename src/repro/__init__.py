"""TLPGNN reproduction: a lightweight two-level parallelism paradigm for
GNN computation, on a modeled GPU.

Subpackages
-----------
graph       CSR container, generators, Table-4 dataset registry, reorder,
            partitioner.
gpusim      GPU execution model (spec, memory, occupancy, scheduling,
            atomics, cost model, profiler, micro-simulator).
kernels     Graph-convolution kernels: TLPGNN and the baselines the paper
            profiles (push, edge-centric, pull thread/warp, neighbor-group).
balance     Hybrid dynamic workload assignment (Section 5).
models      GCN / GIN / GraphSAGE / GAT conv semantics and layers.
frameworks  System baselines: DGL-like, GNNAdvisor-like, FeatGraph-like,
            and the TLPGNN engine.
bench       Table/figure regeneration harness.
obs         Observability: span tracer, event sink, metrics registry,
            Chrome-trace timelines, profile archive + regression diff.
"""

__version__ = "1.0.0"

from . import balance, bench, frameworks, graph, gpusim, kernels, models, obs

__all__ = [
    "graph",
    "gpusim",
    "kernels",
    "balance",
    "models",
    "frameworks",
    "bench",
    "obs",
    "__version__",
]
