"""Declarative kernel effect tables: what a kernel reads, writes, and merges.

Every :class:`~repro.plan.KernelOp` carries a :class:`KernelEffects`
describing the op against *named device buffers* — the standard convolution
inputs (``indptr``, ``indices``, ``feat``, ``edge_vals``, ``att``,
``group_table``), the pipeline output (``out``), and pipeline-transient
intermediates (``tmp:*`` — buffers that exist only between two launches of
the same plan).  Each buffer access is a read, an exclusive write (every
scheduled unit owns disjoint rows — TLPGNN's warp-per-vertex contract), or
an atomic merge (read-modify-write; many units may target the same row).

The table is the *claim*; three things keep it honest:

* the hazard analysis (:mod:`repro.lint.hazards`) rejects plans whose
  claims are inconsistent (non-exclusive writes without a declared atomic
  merge, reads of never-written transients, rng reads under a content
  fingerprint),
* the resource analysis (:mod:`repro.lint.resources`) checks the declared
  launch envelope against :class:`~repro.gpusim.config.GPUSpec` limits,
* :func:`cross_validate_effects` replays the kernel through the exact
  micro-simulator and the vectorized counter model and requires the
  declared ``atomic_ops`` to match both, op for op.

This module must not import :mod:`repro.plan` (the plan IR imports *us* to
type its ``effects`` field); everything here depends only on ``gpusim``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..gpusim.config import V100, GPUSpec
from ..gpusim.microsim import MicroSim

__all__ = [
    "TRANSIENT_PREFIX",
    "BufferEffect",
    "LaunchEnvelope",
    "KernelEffects",
    "effect_table",
    "conv_read_buffers",
    "is_transient",
    "cross_validate_effects",
]

#: buffers with this prefix exist only between kernels of one plan; every
#: other name is a plan input or the plan output
TRANSIENT_PREFIX = "tmp:"

_MODES = ("read", "write", "atomic")


def is_transient(buffer: str) -> bool:
    """Whether ``buffer`` is a pipeline-transient intermediate."""
    return buffer.startswith(TRANSIENT_PREFIX)


@dataclass(frozen=True)
class BufferEffect:
    """One access of one named buffer.

    ``exclusive`` applies to writes only: True claims every scheduled unit
    writes disjoint elements (warp-per-vertex ownership); False admits that
    units may collide on rows — legal *only* together with a declared
    atomic merge of the same buffer, otherwise it is an undeclared race.
    """

    buffer: str
    mode: str  # "read" | "write" | "atomic"
    dtype: str = "f32"
    exclusive: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if not self.buffer:
            raise ValueError("buffer name must be non-empty")


@dataclass(frozen=True)
class LaunchEnvelope:
    """Worst-case per-block resource footprint of a kernel's launches.

    An *envelope*, not the exact grid: dynamic assignment may pick smaller
    blocks at run time, but never larger — the resource sanitizer validates
    the envelope against the device's structural limits.
    """

    threads_per_block: int
    regs_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be positive")
        if self.regs_per_thread < 1:
            raise ValueError("regs_per_thread must be positive")
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be non-negative")


@dataclass(frozen=True)
class KernelEffects:
    """The full declared effect table of one kernel op."""

    buffers: tuple[BufferEffect, ...] = ()
    launch: LaunchEnvelope | None = None
    #: total element-level atomic RMW operations the launch performs
    #: (must equal ``KernelStats.atomic_ops`` / the micro-sim count)
    atomic_ops: int = 0
    #: the op consumes host randomness — unsafe under a content fingerprint
    reads_rng: bool = False

    def __post_init__(self) -> None:
        if self.atomic_ops < 0:
            raise ValueError("atomic_ops must be non-negative")
        if self.atomic_ops > 0 and not self.atomics:
            raise ValueError(
                "atomic_ops declared without any atomic buffer effect"
            )

    # -- named-buffer views -------------------------------------------------
    @property
    def reads(self) -> tuple[str, ...]:
        return tuple(b.buffer for b in self.buffers if b.mode == "read")

    @property
    def writes(self) -> tuple[str, ...]:
        return tuple(b.buffer for b in self.buffers if b.mode == "write")

    @property
    def atomics(self) -> tuple[str, ...]:
        return tuple(b.buffer for b in self.buffers if b.mode == "atomic")

    def summary(self) -> str:
        """One-line rendering for ``ExecutionPlan.describe()``."""
        parts = []
        if self.reads:
            parts.append("reads " + ",".join(self.reads))
        if self.writes:
            parts.append("writes " + ",".join(self.writes))
        if self.atomics:
            parts.append(
                "atomic " + ",".join(self.atomics)
                + f" ({self.atomic_ops} ops)"
            )
        if self.reads_rng:
            parts.append("reads rng")
        return " -> ".join(parts) if parts else "no declared effects"


def effect_table(
    *,
    reads: tuple[str, ...] = (),
    writes: tuple[str, ...] = (),
    atomics: tuple[str, ...] = (),
    launch: LaunchEnvelope | None = None,
    atomic_ops: int = 0,
    reads_rng: bool = False,
) -> KernelEffects:
    """Build a well-formed effect table (writes are exclusive by design;
    racy non-exclusive writes must be constructed by hand — they are what
    the hazard detector exists to reject)."""
    buffers = [BufferEffect(b, "read") for b in reads]
    buffers += [BufferEffect(b, "write") for b in writes]
    buffers += [BufferEffect(b, "atomic", exclusive=False) for b in atomics]
    return KernelEffects(
        buffers=tuple(buffers),
        launch=launch,
        atomic_ops=atomic_ops,
        reads_rng=reads_rng,
    )


def conv_read_buffers(workload: Any, *, indptr: bool = True) -> tuple[str, ...]:
    """Standard input buffers a convolution kernel reads for ``workload``."""
    reads = ["indptr", "indices", "feat"] if indptr else ["indices", "feat"]
    if workload.attention is not None:
        reads.append("att")
    elif workload.edge_weights is not None:
        reads.append("edge_vals")
    return tuple(reads)


# ----------------------------------------------------------------------
# cross-validation against the counter model and the micro-simulator
# ----------------------------------------------------------------------
def cross_validate_effects(kernel: Any, workload: Any, spec: GPUSpec = V100) -> list[str]:
    """Check a ConvKernel's declared effects against its two models.

    Returns a list of human-readable mismatches (empty = the declaration is
    honest).  The declared ``atomic_ops`` must equal the vectorized counter
    model's ``KernelStats.atomic_ops`` exactly, and — where the kernel has a
    micro-sim ``trace`` — the op count the exact simulator observes.
    Intended for micro-sim-sized graphs (the trace replays warp by warp).
    """
    decl = getattr(kernel, "effects", None)
    eff = decl(workload) if callable(decl) else None
    if eff is None:
        return [f"{kernel.name}: kernel declares no effect table"]
    problems = []
    stats, _sched = kernel.analyze(workload, spec)
    if int(stats.atomic_ops) != int(eff.atomic_ops):
        problems.append(
            f"{kernel.name}: declared atomic_ops {eff.atomic_ops} != "
            f"counter-model atomic_ops {stats.atomic_ops}"
        )
    if (int(stats.atomic_ops) > 0) != bool(eff.atomics):
        problems.append(
            f"{kernel.name}: atomic buffer declaration ({eff.atomics!r}) "
            f"disagrees with counter-model atomic_ops {stats.atomic_ops}"
        )
    sim = MicroSim(spec=spec)
    try:
        kernel.trace(workload, sim)
    except NotImplementedError:
        return problems  # kernel has no micro-sim replay
    if int(sim.atomic_ops) != int(eff.atomic_ops):
        problems.append(
            f"{kernel.name}: declared atomic_ops {eff.atomic_ops} != "
            f"micro-sim atomic_ops {sim.atomic_ops}"
        )
    return problems
