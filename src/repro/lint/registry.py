"""Central finding-code registry: every lint rule in one table.

Each rule id maps to its fixed severity, a one-line summary, and the
README anchor documenting the family.  The analyses construct findings
through :func:`make_finding` so a code's severity lives in exactly one
place; the CLI ``--explain CODE`` helper and the README finding-code
table render from the same entries.

Like every lint module, this one never imports :mod:`repro.plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import Finding

__all__ = ["RULES", "RuleInfo", "explain", "make_finding", "rule_info"]


@dataclass(frozen=True)
class RuleInfo:
    """One registered finding code."""

    code: str
    severity: str  # "error" | "warning" | "info"
    summary: str  # one line, shared by --explain and the README table
    anchor: str  # README heading anchor documenting the family


def _rules(*infos: RuleInfo) -> dict[str, RuleInfo]:
    return {info.code: info for info in infos}


RULES: dict[str, RuleInfo] = _rules(
    # -- hazards (def-use races, cache safety) --------------------------
    RuleInfo(
        "HAZ001", "error",
        "op declares no effect table — nothing about it can be checked",
        "hazards-haz",
    ),
    RuleInfo(
        "HAZ002", "error",
        "non-exclusive write without a declared atomic merge (write-write race)",
        "hazards-haz",
    ),
    RuleInfo(
        "HAZ003", "error",
        "read of a tmp:* transient no earlier op produced (RAW across fusion)",
        "hazards-haz",
    ),
    RuleInfo(
        "HAZ004", "error",
        "rng-consuming op inside a content-fingerprinted plan (stale cache replay)",
        "hazards-haz",
    ),
    # -- resources (launch envelope vs GPUSpec) -------------------------
    RuleInfo(
        "RES001", "error",
        "block size exceeds the device's max threads per block",
        "resources-res",
    ),
    RuleInfo(
        "RES002", "error",
        "registers per thread exceed the device limit",
        "resources-res",
    ),
    RuleInfo(
        "RES003", "error",
        "shared memory per block exceeds the SM's capacity",
        "resources-res",
    ),
    RuleInfo(
        "RES004", "error",
        "launch envelope admits zero resident blocks per SM",
        "resources-res",
    ),
    RuleInfo(
        "RES005", "warning",
        "theoretical occupancy below 25% — latency hiding degrades",
        "resources-res",
    ),
    # -- determinism ----------------------------------------------------
    RuleInfo(
        "DET001", "warning",
        "atomic float merge — addition order follows hardware arrival order",
        "determinism-det",
    ),
    RuleInfo(
        "DET002", "warning",
        "op consumes host randomness — reproducible only under a pinned generator",
        "determinism-det",
    ),
    # -- access patterns (coalescing / divergence / bounds) -------------
    RuleInfo(
        "ACC001", "error",
        "effects-declared buffer has no access pattern (or no table at all)",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "ACC002", "warning",
        "gather-random read: per-lane indirect rows defeat coalescing",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "ACC003", "warning",
        "strided access: lane stride splits each request across sectors",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "ACC004", "warning",
        "scattered write/atomic: indirect row targets collide across units",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "DIV001", "warning",
        "per-lane degree-dependent trip count — intra-warp divergence",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "DIV002", "info",
        "recurring tail masking: loop rounds leave lanes idle",
        "access-patterns-accdivoob",
    ),
    RuleInfo(
        "OOB001", "error",
        "symbolic index range exceeds the declared buffer shape",
        "access-patterns-accdivoob",
    ),
    # -- whole-plan dataflow (shape/dtype inference) --------------------
    RuleInfo(
        "SHAPE001", "error",
        "producer and consumer disagree on a buffer's inferred shape",
        "dataflow-shapelive",
    ),
    RuleInfo(
        "SHAPE002", "error",
        "dtype-conflicting write/read: a narrower dtype silently truncates",
        "dataflow-shapelive",
    ),
    RuleInfo(
        "SHAPE003", "error",
        "under-allocated transient: a consumer reads past the producer's extent",
        "dataflow-shapelive",
    ),
    RuleInfo(
        "SHAPE004", "error",
        "plan I/O contract violation: a standard buffer's shape contradicts the workload",
        "dataflow-shapelive",
    ),
    # -- liveness / peak device memory ----------------------------------
    RuleInfo(
        "LIVE001", "error",
        "peak live footprint exceeds the device's HBM capacity",
        "dataflow-shapelive",
    ),
    RuleInfo(
        "LIVE002", "warning",
        "peak live footprint above 80% of HBM — allocator headroom is gone",
        "dataflow-shapelive",
    ),
    # -- cross-stream happens-before races ------------------------------
    RuleInfo(
        "RACE001", "error",
        "unordered cross-stream write-write on a shared buffer",
        "cross-stream-races-race",
    ),
    RuleInfo(
        "RACE002", "error",
        "unordered cross-stream read-write on a shared buffer",
        "cross-stream-races-race",
    ),
    RuleInfo(
        "RACE003", "warning",
        "cross-stream atomic-atomic merge — safe but order-nondeterministic",
        "cross-stream-races-race",
    ),
    # -- plan equivalence (translation validation) ----------------------
    RuleInfo(
        "EQ001", "error",
        "kernel or op carries no derivable normal form — equivalence unprovable",
        "verification-eq",
    ),
    RuleInfo(
        "EQ002", "error",
        "output producer terms diverge — the rewrite changes what is computed",
        "verification-eq",
    ),
    RuleInfo(
        "EQ003", "warning",
        "reduction-order-only divergence — equivalent modulo float reassociation, not bit-exact",
        "verification-eq",
    ),
    RuleInfo(
        "EQ004", "error",
        "stale or tampered equivalence certificate — content address does not verify",
        "verification-eq",
    ),
)


def rule_info(code: str) -> RuleInfo:
    """The registry entry for ``code`` (KeyError for unknown codes)."""
    return RULES[code]


def make_finding(
    code: str, message: str, *, op: str | None = None, buffer: str | None = None
) -> Finding:
    """Build a finding whose severity comes from the registry."""
    return Finding(
        severity=RULES[code].severity,
        rule=code,
        message=message,
        op=op,
        buffer=buffer,
    )


def explain(code: str) -> str:
    """Multi-line human rendering of one registry entry (CLI --explain)."""
    info = RULES[code]
    return (
        f"{info.code} [{info.severity}]\n"
        f"  {info.summary}\n"
        f"  docs: README.md#{info.anchor}"
    )
