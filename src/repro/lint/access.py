"""Symbolic per-lane memory-access analysis: coalescing, divergence, bounds.

TLPGNN's headline numbers are access-pattern numbers: warp-per-vertex
execution with consecutive-lane feature reads keeps sectors-per-request
near the 4-sector ideal, while thread-per-vertex pulls and scatter/push
designs spread each warp request across the whole cache line space
(PAPER §4.2, Figure 7).  This module makes those patterns *declarative*:
every kernel states, per buffer, an :class:`AccessPattern` — an affine
expression over the ``(lane, iter)`` symbols of one scheduled unit plus
an optional indirection — and the analyzer classifies each pattern
symbolically, with no execution:

* **ACC001** (error) — an effects-declared buffer has no access pattern
  (the HAZ001 analogue for the access layer: new kernels must declare).
* **ACC002** (warning) — gather-random read: each lane addresses its own
  indirected row, so one warp request touches up to 32 distinct sectors.
* **ACC003** (warning) — strided access: a constant per-lane stride > 1
  element splits the request across ``stride``-spaced sectors (the
  thread-per-vertex ``out[v, j]`` row-pitch walk).
* **ACC004** (warning) — scattered write/atomic: the *row* target is
  indirected, so distinct units collide on destination rows (push /
  edge-centric ``atomicAdd``, DGL's COO scatter-spmm).
* **DIV001** (warning) — a degree-dependent trip count that varies per
  *lane*: intra-warp divergence (Table 2's thread-per-vertex pull).
* **DIV002** (info) — recurring tail masking: feature rounds or edge
  tiles whose last round leaves lanes idle.
* **OOB001** (error) — the symbolic index range provably exceeds the
  declared buffer shape.

:func:`cross_validate_access` pins the symbolic layer to the other two
models: the static sector class must agree with the measured
sectors-per-request of both the vectorized counter model and the exact
micro-simulator — coalesced classes must measure at or under
:data:`COALESCED_SPR_MAX`, uncoalesced classes must show excess sectors
or masked lanes (idle lanes are the other face of lane-spread: a gather
that keeps few lanes active produces few sectors *and* much divergence).

Nothing here imports :mod:`repro.plan`; :func:`access_findings`
duck-types its plan (``.ops`` with ``.name``/``.effects``/``.access``)
exactly like the sibling analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..gpusim.config import V100, GPUSpec
from ..gpusim.microsim import MicroSim
from .registry import make_finding
from .report import Finding

__all__ = [
    "COALESCED_SPR_MAX",
    "SECTOR_CLASSES",
    "Affine",
    "AccessPattern",
    "KernelAccess",
    "access_findings",
    "broadcast",
    "conv_access",
    "conv_shapes",
    "cross_validate_access",
    "gather",
    "lane_stream",
    "op_sector_class",
    "scatter",
    "sector_class",
]

#: ranked least to most scattered; an op's class is its worst pattern
SECTOR_CLASSES = ("broadcast", "coalesced", "strided", "gather")

#: measured sectors/request at or under this is "coalesced" traffic; a
#: float32 warp request needs >= 4 sectors (128 B), and broadcast index
#: loads pull the average well under it — uncoalesced patterns sit far
#: above (up to 32 sectors, one per lane)
COALESCED_SPR_MAX = 4.5

_ROLES = ("read", "write", "atomic")
_ROWS = ("unit", "lane_unit", "indirect", "flat")
_TRIPS = ("degree", "feat_rounds", "edge_tiles", "dims", "chunk")


@dataclass(frozen=True)
class Affine:
    """Element-offset expression ``const + lane*<lane> + iter*<iter>``.

    Coefficients are in *elements* of the accessed buffer; ``iter`` is
    the innermost declared loop symbol (a feature round or a dimension
    counter).  ``Affine()`` — all zero — is a warp-uniform (broadcast)
    address.
    """

    const: int = 0
    lane: int = 0
    iter: int = 0


@dataclass(frozen=True)
class AccessPattern:
    """How one kernel touches one named buffer, per scheduled unit.

    ``row`` selects the 2-D row expression:

    * ``"unit"`` — the unit's own row (warp-per-vertex ownership),
    * ``"lane_unit"`` — each *lane* owns its own row (thread-per-vertex:
      the per-lane address stride becomes the row pitch),
    * ``"indirect"`` — a row read through ``via`` (e.g. ``indices``);
      warp-uniform unless ``row_per_lane`` is set,
    * ``"flat"`` — the buffer is 1-D / streamed (index arrays, edge
      values, transient workspaces).

    ``col`` is the within-row element offset over ``(lane, iter)``;
    ``trips`` names the loop structure multiplying the access (degree
    loops, feature rounds, edge tiles) and ``trips_per`` whether those
    trip counts vary per scheduled unit or per *lane* (the divergence
    axis).  ``span`` optionally bounds the elements a flat access can
    reach (for the bounds check on 1-D buffers).
    """

    buffer: str
    role: str = "read"
    row: str = "unit"
    via: str | None = None  # index buffer backing an indirect row
    row_per_lane: bool = False  # each lane indirects its own row
    col: Affine = field(default_factory=Affine)
    lanes: int = 32  # consecutive lanes participating per request
    trips: tuple[str, ...] = ()
    trips_per: str = "unit"  # "unit" | "lane"
    span: int | None = None  # flat rows: max element index + 1
    elem_bytes: int = 4

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise ValueError(f"role must be one of {_ROLES}, got {self.role!r}")
        if self.row not in _ROWS:
            raise ValueError(f"row must be one of {_ROWS}, got {self.row!r}")
        if self.trips_per not in ("unit", "lane"):
            raise ValueError("trips_per must be 'unit' or 'lane'")
        for t in self.trips:
            if t not in _TRIPS:
                raise ValueError(f"unknown trip kind {t!r} (expected {_TRIPS})")
        if self.row == "indirect" and self.via is None:
            raise ValueError("row='indirect' requires a via= index buffer")
        if self.lanes < 1 or self.lanes > 32:
            raise ValueError("lanes must be in 1..32")


@dataclass(frozen=True)
class KernelAccess:
    """The full declared access table of one kernel op.

    ``shapes`` maps buffer names to ``(rows, cols)`` element shapes (1-D
    buffers are ``(n, 1)``); ``unit_rows`` bounds the ``row="unit"`` /
    ``"lane_unit"`` expressions; ``value_ranges`` bounds the *values* an
    index buffer may hold (the CSR contract ``indices[e] < n``).  Buffers
    absent from ``shapes`` (transients of modeled pipelines) skip the
    bounds check — their extents are not statically declared.
    """

    patterns: tuple[AccessPattern, ...] = ()
    shapes: dict[str, tuple[int, int]] = field(default_factory=dict)
    unit_rows: int = 0
    value_ranges: dict[str, int] = field(default_factory=dict)

    def for_buffer(self, buffer: str, role: str) -> tuple[AccessPattern, ...]:
        return tuple(
            p for p in self.patterns if p.buffer == buffer and p.role == role
        )

    def summary(self) -> str:
        """One line of per-buffer sector classes (diagnostics / describe)."""
        parts = [
            f"{p.buffer}:{sector_class(p, self.shapes)}" for p in self.patterns
        ]
        return " ".join(parts) if parts else "no declared access"


# ----------------------------------------------------------------------
# pattern constructors (the grammar kernels actually write)
# ----------------------------------------------------------------------
def broadcast(
    buffer: str,
    *,
    role: str = "read",
    row: str = "flat",
    via: str | None = None,
    trips: tuple[str, ...] = (),
    span: int | None = None,
) -> AccessPattern:
    """Warp-uniform scalar access (index loads, CSR bounds, edge scalars)."""
    return AccessPattern(
        buffer, role=role, row=row, via=via, trips=tuple(trips), span=span
    )


def lane_stream(
    buffer: str,
    *,
    role: str = "read",
    row: str = "unit",
    via: str | None = None,
    lanes: int = 32,
    trips: tuple[str, ...] = (),
    span: int | None = None,
) -> AccessPattern:
    """Consecutive lanes touch consecutive elements — the coalesced ideal.

    When the loop sweeps feature rounds, the per-round column advance is
    the lane count (``col = lane + lanes*iter``, Figure 5's layout).
    """
    trips = tuple(trips)
    return AccessPattern(
        buffer,
        role=role,
        row=row,
        via=via,
        col=Affine(lane=1, iter=lanes if "feat_rounds" in trips else 0),
        lanes=lanes,
        trips=trips,
        span=span,
    )


def gather(
    buffer: str,
    *,
    role: str = "read",
    row: str = "indirect",
    via: str | None = "indices",
    trips: tuple[str, ...] = (),
    per: str = "unit",
) -> AccessPattern:
    """Each lane indirects its own row — the gather-random anti-pattern."""
    return AccessPattern(
        buffer,
        role=role,
        row=row,
        via=via if row == "indirect" else None,
        row_per_lane=True,
        trips=tuple(trips),
        trips_per=per,
    )


def scatter(
    buffer: str,
    *,
    role: str = "atomic",
    via: str = "indices",
    lanes: int = 32,
    trips: tuple[str, ...] = (),
) -> AccessPattern:
    """Lane-coalesced row write through an indirection: the request is
    contiguous, but the *row* target scatters across units (push/COO)."""
    trips = tuple(trips)
    return AccessPattern(
        buffer,
        role=role,
        row="indirect",
        via=via,
        col=Affine(lane=1, iter=lanes if "feat_rounds" in trips else 0),
        lanes=lanes,
        trips=trips,
    )


def conv_shapes(workload: Any) -> dict[str, tuple[int, int]]:
    """Element shapes of the standard convolution buffers for ``workload``."""
    g = workload.graph
    n, e, f = g.num_vertices, g.num_edges, workload.feat_dim
    shapes = {
        "feat": (n, f),
        "out": (n, f),
        "indptr": (n + 1, 1),
        "indices": (e, 1),
    }
    if workload.attention is not None:
        shapes["att"] = (n, 2)
    elif workload.edge_weights is not None:
        shapes["edge_vals"] = (e, 1)
    return shapes


def conv_access(
    workload: Any,
    *patterns: AccessPattern,
    extra_shapes: dict[str, tuple[int, int]] | None = None,
) -> KernelAccess:
    """Assemble a conv kernel's access table with the standard shapes and
    the CSR value contract (``indices`` holds vertex ids below ``n``)."""
    shapes = conv_shapes(workload)
    if extra_shapes:
        shapes.update(extra_shapes)
    return KernelAccess(
        patterns=tuple(patterns),
        shapes=shapes,
        unit_rows=workload.graph.num_vertices,
        value_ranges={"indices": workload.graph.num_vertices},
    )


# ----------------------------------------------------------------------
# symbolic classification
# ----------------------------------------------------------------------
def sector_class(
    pattern: AccessPattern, shapes: dict[str, tuple[int, int]] | None = None
) -> str:
    """The predicted sectors-per-request class of one pattern."""
    if pattern.row_per_lane:
        return "gather"
    if pattern.row == "lane_unit":
        # each lane owns a row: the effective per-lane stride is the pitch
        cols = (shapes or {}).get(pattern.buffer, (0, 32))[1]
        stride = max(cols, abs(pattern.col.lane))
        return "coalesced" if stride <= 1 else "strided"
    stride = abs(pattern.col.lane)
    if stride == 0:
        return "broadcast"
    if stride == 1:
        return "coalesced"
    return "strided"


def op_sector_class(access: KernelAccess) -> str:
    """Worst pattern class of one op (the Figure 7 axis)."""
    worst = 0
    for p in access.patterns:
        worst = max(worst, SECTOR_CLASSES.index(sector_class(p, access.shapes)))
    return SECTOR_CLASSES[worst]


def _divergent(pattern: AccessPattern) -> bool:
    """Degree-dependent trip count evaluated per lane — warp divergence."""
    return pattern.trips_per == "lane" and "degree" in pattern.trips


# ----------------------------------------------------------------------
# the analyzer: ACC / DIV / OOB findings for one plan
# ----------------------------------------------------------------------
def _col_bound(pattern: AccessPattern, cols: int) -> int:
    """Largest column index the pattern can touch within a ``cols``-wide row.

    A standard round sweep (``col = lane + lanes*iter`` over feature
    rounds) masks its tail lanes, so it covers exactly ``[const, const +
    cols)``; any other shape is bounded by the loop extents.
    """
    c = pattern.col
    if "feat_rounds" in pattern.trips and c.lane == 1 and c.iter == pattern.lanes:
        return c.const + cols - 1
    if "feat_rounds" in pattern.trips:
        rounds = -(-cols // pattern.lanes)
    elif "dims" in pattern.trips:
        rounds = cols  # per-dimension scalar loop: iter sweeps the row
    else:
        rounds = 1
    return c.const + abs(c.lane) * (pattern.lanes - 1) + abs(c.iter) * (rounds - 1)


def _bounds_findings(access: KernelAccess, op_name: str) -> list[Finding]:
    findings: list[Finding] = []
    for p in access.patterns:
        shape = access.shapes.get(p.buffer)
        if shape is None:
            continue  # undeclared extent (transient): nothing to verify
        rows, cols = shape
        if p.row == "flat":
            total = rows * cols
            if p.span is not None and p.span > total:
                findings.append(
                    make_finding(
                        "OOB001",
                        f"flat access spans {p.span} elements of "
                        f"'{p.buffer}' but the buffer holds {total}",
                        op=op_name,
                        buffer=p.buffer,
                    )
                )
            continue
        if p.row in ("unit", "lane_unit"):
            row_bound = access.unit_rows - 1
        else:  # indirect
            limit = access.value_ranges.get(p.via or "")
            row_bound = None if limit is None else limit - 1
        if row_bound is not None and row_bound >= rows:
            findings.append(
                make_finding(
                    "OOB001",
                    f"row index can reach {row_bound} but '{p.buffer}' "
                    f"has {rows} rows",
                    op=op_name,
                    buffer=p.buffer,
                )
            )
        col_bound = _col_bound(p, cols)
        if p.col.const < 0 or col_bound >= cols:
            findings.append(
                make_finding(
                    "OOB001",
                    f"column expression reaches element {col_bound} but "
                    f"'{p.buffer}' rows hold {cols}",
                    op=op_name,
                    buffer=p.buffer,
                )
            )
    return findings


def _pattern_findings(access: KernelAccess, op_name: str) -> list[Finding]:
    findings: list[Finding] = []
    div_lane: list[str] = []  # buffers with per-lane degree trips
    div_tail: list[str] = []  # buffers with recurring tail masking
    for p in access.patterns:
        cls = sector_class(p, access.shapes)
        if p.role == "read":
            if cls == "gather":
                findings.append(
                    make_finding(
                        "ACC002",
                        f"gather-random read of '{p.buffer}': each lane "
                        "indirects its own row — up to one sector per lane "
                        "per request",
                        op=op_name,
                        buffer=p.buffer,
                    )
                )
            elif cls == "strided":
                findings.append(
                    make_finding(
                        "ACC003",
                        f"strided read of '{p.buffer}': the per-lane stride "
                        "splits each warp request across spaced sectors",
                        op=op_name,
                        buffer=p.buffer,
                    )
                )
        else:  # write / atomic
            if p.row == "indirect" or (p.row == "flat" and p.row_per_lane):
                findings.append(
                    make_finding(
                        "ACC004",
                        f"scattered {p.role} to '{p.buffer}' through "
                        f"'{p.via or 'per-lane indices'}': destination rows "
                        "collide across scheduled units",
                        op=op_name,
                        buffer=p.buffer,
                    )
                )
            elif cls == "strided":
                findings.append(
                    make_finding(
                        "ACC003",
                        f"strided {p.role} to '{p.buffer}': the per-lane "
                        "stride splits each warp request across spaced "
                        "sectors",
                        op=op_name,
                        buffer=p.buffer,
                    )
                )
        if _divergent(p):
            div_lane.append(p.buffer)
        cols = access.shapes.get(p.buffer, (0, 0))[1]
        if "edge_tiles" in p.trips or (
            "feat_rounds" in p.trips and cols and cols % p.lanes
        ):
            div_tail.append(p.buffer)
    if div_lane:
        findings.append(
            make_finding(
                "DIV001",
                "degree-dependent trip count per lane over "
                f"{','.join(sorted(set(div_lane)))} — lanes of one warp "
                "idle behind the longest neighbor list",
                op=op_name,
                buffer=sorted(set(div_lane))[0],
            )
        )
    if div_tail:
        findings.append(
            make_finding(
                "DIV002",
                "tail rounds mask lanes over "
                f"{','.join(sorted(set(div_tail)))} — partial warps every "
                "final round",
                op=op_name,
                buffer=sorted(set(div_tail))[0],
            )
        )
    return findings


def access_findings(plan: Any) -> list[Finding]:
    """ACC/DIV/OOB findings of one lowered plan (duck-typed like hazards)."""
    findings: list[Finding] = []
    for op in plan.ops:
        eff = getattr(op, "effects", None)
        if eff is None:
            continue  # HAZ001 already covers the fully-undeclared op
        access = getattr(op, "access", None)
        if access is None:
            findings.append(
                make_finding(
                    "ACC001",
                    "op declares effects but no access table — coalescing, "
                    "divergence and bounds analysis are impossible",
                    op=op.name,
                )
            )
            continue
        declared = {(p.buffer, p.role) for p in access.patterns}
        for b in eff.buffers:
            if (b.buffer, b.mode) not in declared:
                findings.append(
                    make_finding(
                        "ACC001",
                        f"effect-declared {b.mode} of '{b.buffer}' has no "
                        "access pattern",
                        op=op.name,
                        buffer=b.buffer,
                    )
                )
        findings += _pattern_findings(access, op.name)
        findings += _bounds_findings(access, op.name)
    return findings


# ----------------------------------------------------------------------
# cross-validation against the counter model and the micro-simulator
# ----------------------------------------------------------------------
def _static_bucket(cls: str) -> str:
    return "coalesced" if cls in ("broadcast", "coalesced") else "uncoalesced"


def _check_bucket(
    kernel_name: str,
    bucket: str,
    spr: float,
    divergent_lanes: int,
    source: str,
) -> list[str]:
    if bucket == "coalesced":
        if spr > COALESCED_SPR_MAX:
            return [
                f"{kernel_name}: statically coalesced but {source} measures "
                f"{spr:.2f} sectors/request (> {COALESCED_SPR_MAX})"
            ]
        return []
    if spr <= COALESCED_SPR_MAX and divergent_lanes == 0:
        return [
            f"{kernel_name}: statically uncoalesced but {source} measures "
            f"{spr:.2f} sectors/request with no masked lanes"
        ]
    return []


def cross_validate_access(kernel: Any, workload: Any, spec: GPUSpec = V100) -> list[str]:
    """Pin a kernel's static sector class to its two measured models.

    Returns human-readable disagreements (empty = the declaration, the
    vectorized counter model, and the micro-simulator tell one story).
    A statically *coalesced* kernel must measure at or under
    :data:`COALESCED_SPR_MAX` sectors/request in both models; a
    statically *uncoalesced* one must show excess sectors or masked
    lanes (a gather over few live lanes produces few sectors but much
    divergence — the two observable faces of lane-spread).  A declared
    per-lane degree loop (DIV001) must also surface as measured
    divergence.  Intended for micro-sim-sized graphs.
    """
    decl = getattr(kernel, "access_patterns", None)
    access = decl(workload) if callable(decl) else None
    if access is None:
        return [f"{kernel.name}: kernel declares no access table"]
    problems: list[str] = []
    bucket = _static_bucket(op_sector_class(access))
    predicts_divergence = any(_divergent(p) for p in access.patterns)

    stats, _sched = kernel.analyze(workload, spec)
    requests = int(stats.load_requests + stats.store_requests + stats.atomic_requests)
    sectors = int(
        stats.l1_load_sectors + stats.l1_store_sectors + stats.l1_atomic_sectors
    )
    if requests:
        problems += _check_bucket(
            kernel.name,
            bucket,
            sectors / requests,
            int(stats.divergent_lanes),
            "the counter model",
        )
    measured_divergence = int(stats.divergent_lanes) > 0

    sim = MicroSim(spec=spec)
    try:
        kernel.trace(workload, sim)
    except NotImplementedError:
        sim = None  # kernel has no micro-sim replay
    if sim is not None and sim.total_requests:
        problems += _check_bucket(
            kernel.name,
            bucket,
            sim.sectors_per_request,
            sim.divergent_lanes,
            "the micro-sim",
        )
        measured_divergence = measured_divergence or sim.divergent_lanes > 0
    if predicts_divergence and not measured_divergence:
        problems.append(
            f"{kernel.name}: declares a per-lane degree loop (DIV001) but "
            "neither model observes masked lanes"
        )
    return problems
