"""Resource sanitizer: declared launch envelopes vs GPUSpec limits.

Checks every op's :class:`~repro.lint.effects.LaunchEnvelope` against the
device's structural limits *before* any costing runs — the counter models
assume a schedulable launch and would happily cost an impossible one
(``GPUSpec.occupancy_limit_blocks`` raises on oversized blocks, so the
structural checks here run first).

* **RES001/RES002/RES003** (errors) — block size, registers per thread, or
  shared memory per block exceed the device's hard limits.
* **RES004** (error) — the envelope leaves zero resident blocks per SM
  (e.g. register file exhausted): the kernel cannot launch.
* **RES005** (warning) — theoretical occupancy below 25%: launchable, but
  the latency-hiding assumptions of the cost model degrade (Figure 9's
  regime).
"""

from __future__ import annotations

from typing import Any

from ..gpusim.config import GPUSpec
from ..gpusim.occupancy import envelope_occupancy
from .registry import make_finding
from .report import Finding

__all__ = ["resource_findings", "LOW_OCCUPANCY_THRESHOLD"]

#: theoretical occupancy below this draws a RES005 warning
LOW_OCCUPANCY_THRESHOLD = 0.25


def resource_findings(plan: Any, spec: GPUSpec) -> list[Finding]:
    """Structural and occupancy checks of every declared launch envelope."""
    findings: list[Finding] = []
    for op in plan.ops:
        eff = op.effects
        if eff is None or eff.launch is None:
            continue  # HAZ001 covers the fully-undeclared case
        env = eff.launch
        structural = []
        if env.threads_per_block > spec.max_threads_per_block:
            structural.append(
                make_finding(
                    "RES001",
                    f"block size {env.threads_per_block} exceeds device "
                    f"limit {spec.max_threads_per_block}",
                    op=op.name,
                )
            )
        if env.regs_per_thread > spec.max_registers_per_thread:
            structural.append(
                make_finding(
                    "RES002",
                    f"{env.regs_per_thread} registers/thread exceeds "
                    f"device limit {spec.max_registers_per_thread}",
                    op=op.name,
                )
            )
        if env.shared_mem_per_block > spec.shared_mem_per_sm:
            structural.append(
                make_finding(
                    "RES003",
                    f"{env.shared_mem_per_block} B shared memory/block "
                    f"exceeds the SM's {spec.shared_mem_per_sm} B",
                    op=op.name,
                )
            )
        if structural:
            findings.extend(structural)
            continue  # occupancy math is meaningless past a hard limit
        occ = envelope_occupancy(
            spec,
            threads_per_block=env.threads_per_block,
            regs_per_thread=env.regs_per_thread,
            shared_mem_per_block=env.shared_mem_per_block,
        )
        if occ.blocks_per_sm < 1:
            findings.append(
                make_finding(
                    "RES004",
                    "launch envelope admits zero resident blocks per SM "
                    f"(limited by {occ.limited_by}) — the kernel cannot "
                    "launch",
                    op=op.name,
                )
            )
        elif occ.theoretical < LOW_OCCUPANCY_THRESHOLD:
            findings.append(
                make_finding(
                    "RES005",
                    f"theoretical occupancy {occ.theoretical:.0%} "
                    f"(limited by {occ.limited_by}) is below "
                    f"{LOW_OCCUPANCY_THRESHOLD:.0%} — latency hiding "
                    "degrades",
                    op=op.name,
                )
            )
    return findings
