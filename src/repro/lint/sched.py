"""Cross-stream happens-before race detection over scheduled plans.

The serving tier (:mod:`repro.serve`) runs whole plans concurrently on
CUDA-like streams via :class:`~repro.gpusim.streams.MultiStreamSimulator`.
The per-plan analyses cannot see that composition; this module checks it.

**The happens-before model.**  Two device-side accesses are ordered iff
they are connected in the HB graph, whose only edges are

* *program order within a stream*: a stream executes its kernels FIFO,
  so every access of launch *i* on stream *s* happens-before every
  access of launch *j > i* on stream *s*;

and nothing else.  In particular **serialized host launches do not order
device execution** — the host issuing launch A before launch B only
orders the *launch starts*; B may still run concurrently with (or even
complete before) A on another stream.  Two conflicting accesses on
different streams are therefore always unordered unless an explicit
cross-stream dependency exists (the serving tier creates none).

**Sharing model.**  Each scheduled entry (one plan submission) owns a
private arena for its buffers — serving allocates outputs and transients
per batch — except the buffers it declares ``shared``.  By default
(:func:`default_shared`) the shared set is exactly the plan's read-only
inputs: non-transient buffers no op ever writes (the graph structure and
features every batch maps).  Under that default TLPGNN serving is
race-free *by construction* — the paper's §3.1 claim, now machine
checked — while a schedule that shares a written buffer (a misconfigured
in-place output arena) is flagged:

* **RACE001** (error) — unordered cross-stream write-write (or
  write-atomic) on a shared buffer,
* **RACE002** (error) — unordered cross-stream read-write,
* **RACE003** (warning) — cross-stream atomic-atomic merge: memory-safe,
  but the combine order follows hardware arrival order (the dynamic
  face of DET001).

**Dynamic cross-validation.**  :func:`cross_validate_races` replays the
schedule through the stream simulator (one seeded
:class:`~repro.gpusim.streams.StreamKernel` per op) and feeds the
completions to a :class:`VectorClockChecker` — per-stream vector clocks
with no cross-stream edges, so clock incomparability *is* HB
concurrency.  The dynamic verdict must reproduce the static one exactly;
a mismatch means the detector (not the plan) is wrong.  Same
triangulation discipline as ``cross_validate_effects``.

Like every lint module, nothing here imports :mod:`repro.plan` — plans
are duck-typed (``.ops`` with ``.name``/``.effects``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..gpusim.streams import MultiStreamSimulator, StreamCompletion, StreamKernel
from .effects import is_transient
from .registry import make_finding
from .report import Finding, LintReport, sort_findings

__all__ = [
    "ScheduledPlan",
    "StreamSchedule",
    "VectorClockChecker",
    "cross_validate_races",
    "default_shared",
    "lint_schedule",
    "race_findings",
    "replay_schedule",
    "serving_schedule",
    "static_race_keys",
]


# ----------------------------------------------------------------------
# the schedule IR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduledPlan:
    """One plan submission: a whole plan enqueued on one stream.

    ``shared`` names the buffers this entry maps from the *global* arena;
    everything else is private to the entry (allocated per batch).
    """

    plan: Any
    stream: int
    label: str
    shared: frozenset[str]


@dataclass(frozen=True)
class StreamSchedule:
    """A set of concurrent plan submissions across ``num_streams``."""

    entries: tuple[ScheduledPlan, ...]
    num_streams: int

    def __post_init__(self) -> None:
        for e in self.entries:
            if not 0 <= e.stream < self.num_streams:
                raise ValueError(
                    f"entry '{e.label}' on stream {e.stream}, but the "
                    f"schedule has {self.num_streams} stream(s)"
                )

    @property
    def label(self) -> str:
        return f"{len(self.entries)} plan(s) on {self.num_streams} stream(s)"


def default_shared(plan: Any) -> frozenset[str]:
    """The plan's read-only inputs: non-transient buffers no op writes.

    These are what concurrent batches genuinely share (graph structure,
    features); outputs and transients are allocated per submission.
    """
    written: set[str] = set()
    touched: set[str] = set()
    for op in plan.ops:
        eff = getattr(op, "effects", None)
        if eff is None:
            continue
        for b in eff.buffers:
            touched.add(b.buffer)
            if b.mode in ("write", "atomic"):
                written.add(b.buffer)
    return frozenset(
        b for b in touched if not is_transient(b) and b not in written
    )


def serving_schedule(
    plan: Any,
    *,
    num_streams: int = 2,
    batches: int = 2,
    shared: frozenset[str] | None = None,
) -> StreamSchedule:
    """The schedule ``repro serve`` would run: ``batches`` submissions of
    one plan, each assigned to the least-loaded stream (by pending op
    count — the same greedy rule :meth:`InferenceService.dispatch` uses
    with ``pending_work_s``; for identical plans the two agree).
    """
    if shared is None:
        shared = default_shared(plan)
    load = [0] * num_streams
    entries = []
    ops = len(plan.ops)
    for i in range(batches):
        stream = min(range(num_streams), key=lambda s: (load[s], s))
        load[stream] += max(ops, 1)
        entries.append(
            ScheduledPlan(
                plan=plan,
                stream=stream,
                label=f"batch{i}",
                shared=shared,
            )
        )
    return StreamSchedule(entries=tuple(entries), num_streams=num_streams)


# ----------------------------------------------------------------------
# the static detector
# ----------------------------------------------------------------------
def _classify(mode_a: str, mode_b: str) -> str | None:
    """Rule code for one unordered conflicting access pair (None = no
    conflict).  Shared by the static detector and the vector-clock
    checker so the two verdicts use one definition of "race"."""
    if mode_a == "read" and mode_b == "read":
        return None
    if mode_a == "atomic" and mode_b == "atomic":
        return "RACE003"
    if "read" in (mode_a, mode_b):
        return "RACE002"
    return "RACE001"  # write-write or write-atomic


def _shared_accesses(
    schedule: StreamSchedule,
) -> tuple[dict[str, dict[int, set[str]]], dict[str, dict[int, str]]]:
    """Per shared buffer: the access modes each stream performs, plus a
    representative op name per (buffer, stream) for the messages."""
    modes: dict[str, dict[int, set[str]]] = {}
    reps: dict[str, dict[int, str]] = {}
    for entry in schedule.entries:
        for op in entry.plan.ops:
            eff = getattr(op, "effects", None)
            if eff is None:
                continue
            for b in eff.buffers:
                if b.buffer not in entry.shared:
                    continue
                modes.setdefault(b.buffer, {}).setdefault(
                    entry.stream, set()
                ).add(b.mode)
                reps.setdefault(b.buffer, {}).setdefault(
                    entry.stream, f"{entry.label}/{op.name}"
                )
    return modes, reps


def race_findings(schedule: StreamSchedule) -> list[Finding]:
    """Unordered conflicting cross-stream accesses to shared buffers.

    One finding per (rule, buffer): the HB graph has no cross-stream
    edges, so any two conflicting accesses on distinct streams of one
    shared buffer are racy — enumerating every pair adds noise, not
    information.
    """
    findings: list[Finding] = []
    modes, reps = _shared_accesses(schedule)
    for buffer in sorted(modes):
        by_stream = modes[buffer]
        if len(by_stream) < 2:
            continue  # one stream: program order covers every pair
        writers = sorted(s for s, m in by_stream.items() if "write" in m)
        atomics = sorted(s for s, m in by_stream.items() if "atomic" in m)
        readers = sorted(s for s, m in by_stream.items() if "read" in m)
        mutators = sorted(set(writers) | set(atomics))

        def pair(a: list[int], b: list[int]) -> tuple[int, int] | None:
            for s in a:
                for t in b:
                    if s != t:
                        return (s, t)
            return None

        ww = pair(writers, mutators)
        if ww is not None:
            s, t = ww
            findings.append(
                make_finding(
                    "RACE001",
                    f"shared buffer '{buffer}': unordered write on stream "
                    f"{s} ({reps[buffer][s]}) vs write/atomic on stream "
                    f"{t} ({reps[buffer][t]}) — no happens-before edge "
                    "crosses streams",
                    op=reps[buffer][s],
                    buffer=buffer,
                )
            )
        rw = pair(readers, mutators)
        if rw is not None:
            s, t = rw
            findings.append(
                make_finding(
                    "RACE002",
                    f"shared buffer '{buffer}': read on stream {s} "
                    f"({reps[buffer][s]}) unordered against write/atomic "
                    f"on stream {t} ({reps[buffer][t]})",
                    op=reps[buffer][s],
                    buffer=buffer,
                )
            )
        aa = pair(atomics, atomics)
        if aa is not None:
            s, t = aa
            findings.append(
                make_finding(
                    "RACE003",
                    f"shared buffer '{buffer}': atomic merges on streams "
                    f"{s} and {t} — memory-safe, but the combine order "
                    "follows hardware arrival order",
                    op=reps[buffer][s],
                    buffer=buffer,
                )
            )
    return findings


def static_race_keys(schedule: StreamSchedule) -> set[tuple[str, str]]:
    """The static verdict as a comparable set of (rule, buffer)."""
    return {(f.rule, f.buffer or "") for f in race_findings(schedule)}


def lint_schedule(schedule: StreamSchedule) -> LintReport:
    """Race findings packaged as a report (the ``serve --lint`` path)."""
    return LintReport(
        plan_label=schedule.label,
        findings=tuple(sort_findings(race_findings(schedule))),
    )


# ----------------------------------------------------------------------
# dynamic cross-validation: seeded replay + vector clocks
# ----------------------------------------------------------------------
def replay_schedule(
    schedule: StreamSchedule, *, seed: int = 0
) -> list[StreamCompletion]:
    """Replay the schedule on the stream simulator: one tiny seeded
    kernel per op, tagged ``(entry_index, op_index)`` so completions map
    back to effect tables.  The seed perturbs the per-kernel demands, so
    different seeds exercise different interleavings of the same HB
    graph."""
    rng = random.Random(seed)
    sim = MultiStreamSimulator(num_streams=schedule.num_streams)
    for ei, entry in enumerate(schedule.entries):
        for oi, op in enumerate(entry.plan.ops):
            sim.submit(
                StreamKernel(
                    name=f"{entry.label}/{op.name}",
                    comp_seconds=rng.uniform(0.5, 1.5) * 1e-6,
                    mem_seconds=rng.uniform(0.2, 1.2) * 1e-6,
                    launch_seconds=1e-7,
                    tag=(ei, oi),
                ),
                stream=entry.stream,
                at_s=0.0,
            )
    sim.drain()
    return sim.take_completions()


def _concurrent(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Vector-clock concurrency: neither clock dominates the other."""
    a_le_b = all(x <= y for x, y in zip(a, b))
    b_le_a = all(y <= x for x, y in zip(a, b))
    return not a_le_b and not b_le_a


@dataclass
class VectorClockChecker:
    """Race detection over a completion trace via per-stream vector
    clocks.

    Each stream carries a clock; a kernel's event clock is its stream's
    clock after ticking the stream's own component.  The serving tier
    creates no cross-stream synchronization, so no component is ever
    merged across streams — two events are concurrent exactly when they
    ran on different streams, which is precisely the static HB relation.
    Every pair of concurrent conflicting accesses to one shared buffer
    is classified with the same :func:`_classify` rule the static
    detector uses.
    """

    schedule: StreamSchedule
    #: (rule, buffer) pairs observed racy during :meth:`check`
    races: set[tuple[str, str]] = field(default_factory=set)

    def check(
        self, completions: list[StreamCompletion]
    ) -> set[tuple[str, str]]:
        """Process a completion trace; return the (rule, buffer) races."""
        n = self.schedule.num_streams
        clocks: list[tuple[int, ...]] = [(0,) * n for _ in range(n)]
        #: arena key -> [(event clock, mode, shared?)]
        history: dict[object, list[tuple[tuple[int, ...], str, bool]]] = {}
        self.races = set()
        for comp in completions:
            tag = comp.kernel.tag
            if not isinstance(tag, tuple) or len(tag) != 2:
                continue
            ei, oi = tag
            entry = self.schedule.entries[ei]
            s = comp.stream
            vc = list(clocks[s])
            vc[s] += 1
            clock = tuple(vc)
            clocks[s] = clock
            eff = getattr(entry.plan.ops[oi], "effects", None)
            if eff is None:
                continue
            for b in eff.buffers:
                shared = b.buffer in entry.shared
                # private buffers live in the entry's own arena: they can
                # only ever see same-entry (same-stream, ordered) events,
                # but we track them anyway — a race on one would expose a
                # bug in the detector itself, which is what this dynamic
                # mode exists to catch.
                key: object = b.buffer if shared else (ei, b.buffer)
                events = history.setdefault(key, [])
                for prev_clock, prev_mode, _ in events:
                    if not _concurrent(prev_clock, clock):
                        continue
                    rule = _classify(prev_mode, b.mode)
                    if rule is not None:
                        name = b.buffer if shared else f"private:{b.buffer}"
                        self.races.add((rule, name))
                events.append((clock, b.mode, shared))
        return self.races


def cross_validate_races(
    schedule: StreamSchedule, *, seed: int = 0
) -> list[str]:
    """Static verdict vs seeded dynamic replay; [] = they agree.

    Any mismatch string names a (rule, buffer) one side reports and the
    other does not — a detector bug, since both sides implement the same
    HB relation over the same effect tables.
    """
    static = static_race_keys(schedule)
    dynamic = VectorClockChecker(schedule).check(replay_schedule(schedule, seed=seed))
    problems = []
    for rule, buffer in sorted(static - dynamic):
        problems.append(
            f"static-only: {rule} on '{buffer}' not reproduced by the "
            f"vector-clock replay (seed={seed})"
        )
    for rule, buffer in sorted(dynamic - static):
        problems.append(
            f"dynamic-only: {rule} on '{buffer}' seen in the replay "
            f"(seed={seed}) but missed statically"
        )
    return problems
