"""Whole-plan dataflow verification: shapes, dtypes, liveness, footprint.

The per-op analyses (hazards, resources, access) check each launch in
isolation; this module checks the plan as a *program*.  Two analyses:

* a **shape/dtype abstract interpreter** — every buffer's element shape
  is resolved symbolically (in terms of the workload sizes ``n`` vertices,
  ``m`` edges, ``f`` feature dims) from the declared access tables, the
  flat-access spans, and the standard convolution vocabulary, then walked
  forward over the op list:

  - **SHAPE001** (error) — a producer and a later consumer disagree on a
    buffer's inferred element count (an ill-formed user spec that passed
    ``MessageSpec.validate()`` but lowered inconsistently),
  - **SHAPE002** (error) — a dtype conflict between a write and a later
    access (a narrower write silently truncates; a wider read
    misinterprets),
  - **SHAPE003** (error) — an under-allocated transient: a consumer's
    extent exceeds what the producing launch materialized,
  - **SHAPE004** (error) — a plan I/O contract violation: a *standard*
    buffer (``out``, ``feat``, ``indptr``, ``indices``, ``edge_vals``,
    ``att``) is declared with a shape that contradicts the workload.

* a **liveness / peak-memory analysis** — per-buffer live ranges over the
  launch order, and the peak resident footprint (bytes, with a symbolic
  rendering) checked against the device's HBM capacity:

  - **LIVE001** (error) — the peak footprint exceeds ``GPUSpec.dram_bytes``
    (the plan cannot be resident; the GNNAdvisor-style capacity failures
    of Table 5 become a static verdict),
  - **LIVE002** (warning) — the peak is above 80% of HBM (allocator
    headroom is gone; fragmentation or a second resident plan kills it).

:func:`live_ranges` / :func:`dead_transients` are exported to the
optimizer: :class:`~repro.opt.rewrites.DeadIntermediateElimination`
proves its legality with this liveness instead of an ad-hoc unread-
``tmp:*`` scan.

Like every lint module, nothing here imports :mod:`repro.plan` — the
plan argument is duck-typed (``.ops`` with ``.name``/``.effects``/
``.access``/``.workload``, ``.compute.workload``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..gpusim.config import V100, GPUSpec
from .effects import is_transient
from .registry import make_finding
from .report import Finding

__all__ = [
    "DTYPE_BYTES",
    "HBM_WARN_FRACTION",
    "BufferView",
    "FootprintReport",
    "LiveRange",
    "PlanSymbols",
    "dead_transients",
    "infer_buffer_shapes",
    "live_ranges",
    "liveness_findings",
    "peak_footprint",
    "plan_symbols",
    "shape_findings",
]

#: element width of every dtype the effect tables may declare
DTYPE_BYTES = {
    "f64": 8, "i64": 8, "u64": 8,
    "f32": 4, "i32": 4, "u32": 4,
    "f16": 2, "bf16": 2, "i16": 2, "u16": 2,
    "i8": 1, "u8": 1, "bool": 1,
}

#: LIVE002 fires above this fraction of the device's HBM
HBM_WARN_FRACTION = 0.8


def _dtype_bytes(dtype: str) -> int:
    """Element width of ``dtype`` (unknown dtypes default to 4 bytes)."""
    return DTYPE_BYTES.get(dtype, 4)


# ----------------------------------------------------------------------
# the symbol table: workload sizes every shape is expressed in
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanSymbols:
    """The workload sizes (``n``, ``m``, ``f``) shapes are resolved against."""

    n: int  # vertices
    m: int  # edges
    f: int  # feature dims

    def render(self, elements: int) -> str:
        """Symbolic rendering of an element count (falls back to digits)."""
        named = [
            (self.n * self.f, "n*f"),
            (2 * self.m, "2m"),
            (self.m, "m"),
            (2 * self.n, "2n"),
            (self.n + 1, "n+1"),
            (self.n, "n"),
            (self.f, "f"),
        ]
        for value, name in named:
            if elements == value and value > 1:
                return name
        return str(elements)


def plan_symbols(plan: Any) -> PlanSymbols | None:
    """Extract the (n, m, f) symbol table from a duck-typed plan.

    The compute step's workload is authoritative (every lowering carries
    one); conv ops are consulted as a fallback for hand-built plans.
    """
    candidates = [getattr(getattr(plan, "compute", None), "workload", None)]
    candidates += [getattr(op, "workload", None) for op in plan.ops]
    for wl in candidates:
        graph = getattr(wl, "graph", None)
        if graph is None:
            continue
        return PlanSymbols(
            n=int(graph.num_vertices),
            m=int(graph.num_edges),
            f=int(getattr(wl, "feat_dim", 1)),
        )
    return None


def _contract_shapes(sym: PlanSymbols) -> dict[str, tuple[int, int]]:
    """The standard-buffer shapes the workload implies (SHAPE004's table)."""
    return {
        "out": (sym.n, sym.f),
        "feat": (sym.n, sym.f),
        "indptr": (sym.n + 1, 1),
        "indices": (sym.m, 1),
        "edge_vals": (sym.m, 1),
        "att": (sym.n, 2),
    }


# ----------------------------------------------------------------------
# per-op buffer views (the abstract state the interpreter walks)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BufferView:
    """One op's resolved view of one buffer."""

    buffer: str
    op: str
    mode: str  # "read" | "write" | "atomic"
    dtype: str
    shape: tuple[int, int] | None  # None = statically unknown extent

    @property
    def elements(self) -> int | None:
        if self.shape is None:
            return None
        return self.shape[0] * self.shape[1]


def _resolve_shape(
    op: Any, buffer: str, sym: PlanSymbols | None
) -> tuple[int, int] | None:
    """One op's declared extent of ``buffer``: access shapes first, then
    the widest flat-access span, then the standard vocabulary."""
    access = getattr(op, "access", None)
    if access is not None:
        shape = access.shapes.get(buffer)
        if shape is not None:
            return (int(shape[0]), int(shape[1]))
        spans = [
            p.span
            for p in access.patterns
            if p.buffer == buffer and p.row == "flat" and p.span is not None
        ]
        if spans:
            return (int(max(spans)), 1)
    if sym is not None and not is_transient(buffer):
        return _contract_shapes(sym).get(buffer)
    return None


def infer_buffer_shapes(plan: Any) -> list[BufferView]:
    """Every op's resolved (buffer, mode, dtype, shape) view, in launch
    order — the event stream both dataflow analyses interpret."""
    sym = plan_symbols(plan)
    views: list[BufferView] = []
    for op in plan.ops:
        eff = getattr(op, "effects", None)
        if eff is None:
            continue
        for b in eff.buffers:
            views.append(
                BufferView(
                    buffer=b.buffer,
                    op=op.name,
                    mode=b.mode,
                    dtype=b.dtype,
                    shape=_resolve_shape(op, b.buffer, sym),
                )
            )
    return views


# ----------------------------------------------------------------------
# the shape/dtype abstract interpreter (SHAPE001-004)
# ----------------------------------------------------------------------
def shape_findings(plan: Any) -> list[Finding]:
    """Forward shape/dtype inference over one lowered plan."""
    sym = plan_symbols(plan)
    findings: list[Finding] = []

    # SHAPE004: standard buffers must match the workload-derived contract
    contract = _contract_shapes(sym) if sym is not None else {}
    contract_flagged: set[str] = set()

    #: buffer -> (elements, producing/first op, shape) established so far
    env: dict[str, tuple[int, str, tuple[int, int]]] = {}
    #: buffer -> (dtype, op that established it)
    dt_env: dict[str, tuple[str, str]] = {}

    for view in infer_buffer_shapes(plan):
        b, elements = view.buffer, view.elements

        # dtype interpretation: a write fixes the buffer's dtype; any
        # later access under a different width is a silent reinterpret
        known = dt_env.get(b)
        if known is not None and known[0] != view.dtype:
            old_w, new_w = _dtype_bytes(known[0]), _dtype_bytes(view.dtype)
            if new_w != old_w or known[0] != view.dtype:
                kind = "narrowing" if new_w < old_w else "conflicting"
                findings.append(
                    make_finding(
                        "SHAPE002",
                        f"{kind} dtype on '{b}': '{known[1]}' established "
                        f"{known[0]} ({old_w} B) but this op {view.mode}s it "
                        f"as {view.dtype} ({new_w} B)",
                        op=view.op,
                        buffer=b,
                    )
                )
        if view.mode in ("write", "atomic") and known is None:
            dt_env[b] = (view.dtype, view.op)

        if elements is None:
            continue

        if b in contract and b not in contract_flagged:
            want = contract[b]
            if elements != want[0] * want[1]:
                contract_flagged.add(b)
                findings.append(
                    make_finding(
                        "SHAPE004",
                        f"standard buffer '{b}' declared as "
                        f"{view.shape[0]}x{view.shape[1]} but the workload "
                        f"implies {want[0]}x{want[1]} "
                        f"({sym.render(want[0] * want[1])} elements)"
                        if view.shape is not None and sym is not None
                        else f"standard buffer '{b}' contradicts the workload",
                        op=view.op,
                        buffer=b,
                    )
                )
                continue  # the contract mismatch subsumes pairwise checks

        prior = env.get(b)
        if prior is None:
            env[b] = (elements, view.op, view.shape or (elements, 1))
            continue
        prior_elements, prior_op, _prior_shape = prior
        if elements == prior_elements:
            continue
        rendered = (
            f"{sym.render(prior_elements)} vs {sym.render(elements)}"
            if sym is not None
            else f"{prior_elements} vs {elements}"
        )
        if (
            is_transient(b)
            and view.mode == "read"
            and elements > prior_elements
        ):
            findings.append(
                make_finding(
                    "SHAPE003",
                    f"under-allocated transient '{b}': '{prior_op}' "
                    f"materialized {sym.render(prior_elements) if sym else prior_elements} "
                    f"element(s) but this op reads "
                    f"{sym.render(elements) if sym else elements}",
                    op=view.op,
                    buffer=b,
                )
            )
        else:
            findings.append(
                make_finding(
                    "SHAPE001",
                    f"shape disagreement on '{b}': '{prior_op}' declared "
                    f"{rendered} elements",
                    op=view.op,
                    buffer=b,
                )
            )
        # keep the larger extent so one bad op does not cascade
        if elements > prior_elements:
            env[b] = (elements, view.op, view.shape or (elements, 1))
    return findings


# ----------------------------------------------------------------------
# liveness and the peak-footprint bound (LIVE001/LIVE002)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LiveRange:
    """One buffer's lifetime over the plan's op list."""

    buffer: str
    first: int  # op index of the first access (def for transients)
    last: int  # op index of the last access
    bytes: int  # allocation size (0 = statically unknown)
    pinned: bool  # plan input/output: resident for the whole plan

    def live_at(self, op_index: int) -> bool:
        if self.pinned:
            return True
        return self.first <= op_index <= self.last


def _collect_readers(plan: Any) -> set[str]:
    """Every buffer some op consumes: effect reads/atomics, access read
    patterns, and index buffers backing an indirection."""
    read: set[str] = set()
    for op in plan.ops:
        eff = getattr(op, "effects", None)
        if eff is not None:
            read.update(eff.reads)
            read.update(eff.atomics)  # RMW also consumes
        access = getattr(op, "access", None)
        if access is not None:
            for pat in access.patterns:
                if pat.role == "read":
                    read.add(pat.buffer)
                via = getattr(pat, "via", None)
                if via:
                    read.add(via)
    return read


def dead_transients(plan: Any) -> frozenset[str]:
    """Transients some op writes but nothing ever reads.

    This is the liveness fact :class:`~repro.opt.rewrites.
    DeadIntermediateElimination` needs: a transient whose live range
    ends at its own definition has no consumer, so the launch that
    materializes it (and nothing else) is removable.
    """
    read = _collect_readers(plan)
    written: set[str] = set()
    for op in plan.ops:
        eff = getattr(op, "effects", None)
        if eff is None:
            continue
        written.update(eff.writes)
        written.update(eff.atomics)
    return frozenset(
        b for b in written if is_transient(b) and b not in read
    )


def live_ranges(plan: Any) -> list[LiveRange]:
    """Per-buffer live ranges over the plan's op list.

    Plan inputs (non-transient reads never produced by the plan) and the
    plan output(s) are *pinned* — resident for the whole plan.  A
    transient is live from the op that materializes it through its last
    consumer (its def alone when nothing reads it).
    """
    sym = plan_symbols(plan)
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    produced: set[str] = set()
    sizes: dict[str, int] = {}
    dtypes: dict[str, str] = {}
    for i, op in enumerate(plan.ops):
        eff = getattr(op, "effects", None)
        if eff is None:
            continue
        for b in eff.buffers:
            first.setdefault(b.buffer, i)
            last[b.buffer] = i
            if b.mode in ("write", "atomic"):
                produced.add(b.buffer)
            shape = _resolve_shape(op, b.buffer, sym)
            if shape is not None:
                elements = shape[0] * shape[1]
                sizes[b.buffer] = max(sizes.get(b.buffer, 0), elements)
            dtypes.setdefault(b.buffer, b.dtype)
    ranges = []
    for b in first:
        pinned = not is_transient(b) and (b not in produced or b == "out")
        ranges.append(
            LiveRange(
                buffer=b,
                first=first[b],
                last=last[b],
                bytes=sizes.get(b, 0) * _dtype_bytes(dtypes.get(b, "f32")),
                pinned=pinned,
            )
        )
    return sorted(ranges, key=lambda r: (r.first, r.buffer))


@dataclass(frozen=True)
class FootprintReport:
    """The plan's peak resident footprint and where it occurs."""

    peak_bytes: int
    peak_op_index: int
    peak_op: str
    #: buffers live at the peak, largest first: (name, bytes)
    resident: tuple[tuple[str, int], ...]
    #: symbolic rendering of the peak ("(n*f + m + n+1)*4B" style)
    expression: str

    def render(self) -> str:
        mib = self.peak_bytes / (1024 * 1024)
        return (
            f"peak footprint {mib:.1f} MiB = {self.expression} "
            f"at op [{self.peak_op_index}] {self.peak_op}"
        )


def peak_footprint(plan: Any) -> FootprintReport:
    """Peak sum of live-buffer bytes over the plan's launch order."""
    ranges = live_ranges(plan)
    sym = plan_symbols(plan)
    num_ops = max(len(plan.ops), 1)
    peak, peak_i = 0, 0
    for i in range(num_ops):
        total = sum(r.bytes for r in ranges if r.live_at(i))
        if total > peak:
            peak, peak_i = total, i
    resident = sorted(
        ((r.buffer, r.bytes) for r in ranges if r.live_at(peak_i) and r.bytes),
        key=lambda item: (-item[1], item[0]),
    )
    terms = []
    for name, nbytes in resident:
        width = 4
        elements = nbytes // width if nbytes % width == 0 else nbytes
        terms.append(
            f"{sym.render(elements)}" if sym is not None else str(elements)
        )
    expression = (
        "(" + " + ".join(terms) + ")*4B" if terms else "0B"
    )
    op_name = (
        plan.ops[peak_i].name if plan.ops else "<empty>"
    )
    return FootprintReport(
        peak_bytes=peak,
        peak_op_index=peak_i,
        peak_op=op_name,
        resident=tuple(resident),
        expression=expression,
    )


def liveness_findings(plan: Any, spec: GPUSpec = V100) -> list[Finding]:
    """LIVE001/LIVE002: the symbolic peak footprint vs HBM capacity."""
    report = peak_footprint(plan)
    if report.peak_bytes <= 0:
        return []
    cap = int(spec.dram_bytes)
    if report.peak_bytes > cap:
        return [
            make_finding(
                "LIVE001",
                f"{report.render()} exceeds the device's "
                f"{cap / (1024 ** 3):.1f} GiB HBM — the plan cannot be "
                "resident",
                op=report.peak_op,
            )
        ]
    if report.peak_bytes > cap * HBM_WARN_FRACTION:
        return [
            make_finding(
                "LIVE002",
                f"{report.render()} is {report.peak_bytes / cap:.0%} of the "
                f"device's {cap / (1024 ** 3):.1f} GiB HBM — allocator "
                "headroom is gone",
                op=report.peak_op,
            )
        ]
    return []
