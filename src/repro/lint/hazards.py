"""Race / hazard detection over a plan's declared effect tables.

Walks the op list in launch order, building the def-use relation between
ops through their named buffers:

* **HAZ001** — an op with no effect table at all: nothing about it can be
  checked, which is itself an error (new kernels must declare).
* **HAZ002** — a non-exclusive write without a declared atomic merge of the
  same buffer: two scheduled units may write the same element and the last
  one silently wins.  This is exactly the bug class of a push/scatter
  kernel that dropped its ``atomicAdd``.
* **HAZ003** — a read of a ``tmp:*`` transient no earlier op produced: a
  read-after-write hazard across a fusion boundary (the producer was fused
  away or reordered) or a plain use-before-def.
* **HAZ004** — an rng-consuming op inside a content-fingerprinted plan:
  the :class:`~repro.plan.cache.PlanCache` key cannot capture host
  randomness, so a warm hit would silently replay stale random state.

The plan argument is duck-typed (``.ops`` with ``.name``/``.effects``,
``.fingerprint``) so this module never imports :mod:`repro.plan`.
"""

from __future__ import annotations

from typing import Any

from .effects import is_transient
from .registry import make_finding
from .report import Finding

__all__ = ["hazard_findings"]


def hazard_findings(plan: Any) -> list[Finding]:
    """Def-use and cache-safety hazards of one lowered plan."""
    findings: list[Finding] = []
    defined: set[str] = set()  # transients materialized by earlier ops
    for op in plan.ops:
        eff = op.effects
        if eff is None:
            findings.append(
                make_finding(
                    "HAZ001",
                    "op declares no effect table; hazard, resource and "
                    "determinism analysis are impossible",
                    op=op.name,
                )
            )
            continue
        atomics = set(eff.atomics)
        for b in eff.buffers:
            if b.mode == "read" and is_transient(b.buffer) and b.buffer not in defined:
                findings.append(
                    make_finding(
                        "HAZ003",
                        f"reads transient '{b.buffer}' that no earlier "
                        "kernel wrote — read-after-write hazard across a "
                        "fusion boundary (or use-before-def)",
                        op=op.name,
                        buffer=b.buffer,
                    )
                )
            if b.mode == "write" and not b.exclusive and b.buffer not in atomics:
                findings.append(
                    make_finding(
                        "HAZ002",
                        f"non-exclusive write to '{b.buffer}' without a "
                        "declared atomic merge — write-write race on "
                        "shared output rows",
                        op=op.name,
                        buffer=b.buffer,
                    )
                )
        if eff.reads_rng and plan.fingerprint is not None:
            findings.append(
                make_finding(
                    "HAZ004",
                    "op consumes host randomness inside a "
                    "content-fingerprinted plan — a warm PlanCache hit "
                    "would replay stale random state",
                    op=op.name,
                )
            )
        for b in eff.buffers:
            if b.mode in ("write", "atomic"):
                defined.add(b.buffer)
    return findings
