"""Determinism lint: bitwise reproducibility of a plan's output.

TLPGNN's aggregation is atomic-free by construction (warp-per-vertex, each
warp owns its output row), so its float addition order is fixed and runs
are bitwise reproducible.  Scatter-style baselines merge rows with
``atomicAdd`` on floats: the hardware serializes colliding updates in
arrival order, which varies run to run — same math, different rounding.

* **DET001** (warning) — an atomic merge on a float buffer: the plan's
  output is order-nondeterministic.  Every DGL-sim GAT plan (the
  ``spmm_coo_atomic`` path) and every GNNAdvisor neighbor-group plan draws
  this; TLPGNN plans must not.
* **DET002** (warning) — an rng-consuming op: reproducible only when the
  caller pins the generator (the cache-safety side is HAZ004).
"""

from __future__ import annotations

from typing import Any

from .registry import make_finding
from .report import Finding

__all__ = ["determinism_findings"]


def determinism_findings(plan: Any) -> list[Finding]:
    """Order-nondeterminism warnings for one lowered plan."""
    findings: list[Finding] = []
    for op in plan.ops:
        eff = op.effects
        if eff is None:
            continue  # HAZ001 covers undeclared ops
        for b in eff.buffers:
            if b.mode == "atomic" and b.dtype.startswith("f"):
                findings.append(
                    make_finding(
                        "DET001",
                        f"atomic float merge into '{b.buffer}' "
                        f"({eff.atomic_ops} ops): addition order follows "
                        "hardware arrival order — output is "
                        "order-nondeterministic",
                        op=op.name,
                        buffer=b.buffer,
                    )
                )
        if eff.reads_rng:
            findings.append(
                make_finding(
                    "DET002",
                    "op consumes host randomness — reproducible only "
                    "under a caller-pinned generator",
                    op=op.name,
                )
            )
    return findings
