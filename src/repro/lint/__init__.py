"""Static hazard, resource, and determinism analysis over ExecutionPlans.

The paper's central invariants are structural — warp-per-vertex
aggregation needs no atomics, scatter baselines *must* merge with
``atomicAdd``, and every launch must fit the device's occupancy limits
(§3.1, §3.4, Figure 8).  This package checks them at compile time, from
the declarative effect tables every kernel op carries:

* :mod:`~repro.lint.effects` — the effect-table vocabulary and the
  micro-sim cross-validation that keeps declarations honest,
* :mod:`~repro.lint.hazards` — def-use races, fusion-boundary RAW
  hazards, plan-cache-unsafe rng reads (HAZ001-HAZ004, errors),
* :mod:`~repro.lint.resources` — launch envelopes vs GPUSpec limits
  (RES001-RES004 errors, RES005 low-occupancy warning),
* :mod:`~repro.lint.determinism` — atomic float reductions and rng reads
  as order-nondeterminism warnings (DET001/DET002),
* :mod:`~repro.lint.report` — severity-ranked findings and rendering.

Entry points: :func:`lint_plan` (used by ``python -m repro lint`` and the
``lint="strict"`` gate on :meth:`~repro.frameworks.base.GNNSystem.run`).

Nothing in this package imports :mod:`repro.plan` — the plan IR imports
the effect vocabulary from here, and ``lint_plan`` duck-types its plan.
"""

from ..gpusim.config import V100, GPUSpec
from .determinism import determinism_findings
from .effects import (
    TRANSIENT_PREFIX,
    BufferEffect,
    KernelEffects,
    LaunchEnvelope,
    conv_read_buffers,
    cross_validate_effects,
    effect_table,
    is_transient,
)
from .hazards import hazard_findings
from .report import (
    Finding,
    LintReport,
    PlanLintError,
    severity_rank,
    sort_findings,
)
from .resources import resource_findings

__all__ = [
    "BufferEffect",
    "KernelEffects",
    "LaunchEnvelope",
    "TRANSIENT_PREFIX",
    "Finding",
    "LintReport",
    "PlanLintError",
    "conv_read_buffers",
    "cross_validate_effects",
    "determinism_findings",
    "effect_table",
    "hazard_findings",
    "is_transient",
    "lint_plan",
    "resource_findings",
    "severity_rank",
    "sort_findings",
]


def lint_plan(plan, spec: GPUSpec = V100) -> LintReport:
    """Run all three analyses over one lowered plan."""
    findings = hazard_findings(plan)
    findings += resource_findings(plan, spec)
    findings += determinism_findings(plan)
    label = f"{plan.system}/{plan.model} on {plan.graph_name}"
    return LintReport(plan_label=label, findings=tuple(sort_findings(findings)))
