"""Static hazard, resource, and determinism analysis over ExecutionPlans.

The paper's central invariants are structural — warp-per-vertex
aggregation needs no atomics, scatter baselines *must* merge with
``atomicAdd``, and every launch must fit the device's occupancy limits
(§3.1, §3.4, Figure 8).  This package checks them at compile time, from
the declarative effect tables every kernel op carries:

* :mod:`~repro.lint.effects` — the effect-table vocabulary and the
  micro-sim cross-validation that keeps declarations honest,
* :mod:`~repro.lint.access` — the symbolic per-lane access-pattern IR:
  static coalescing classes, divergence sources, and bounds verification
  (ACC001 error, ACC002-ACC004 warnings, DIV001/DIV002, OOB001 error),
* :mod:`~repro.lint.hazards` — def-use races, fusion-boundary RAW
  hazards, plan-cache-unsafe rng reads (HAZ001-HAZ004, errors),
* :mod:`~repro.lint.resources` — launch envelopes vs GPUSpec limits
  (RES001-RES004 errors, RES005 low-occupancy warning),
* :mod:`~repro.lint.determinism` — atomic float reductions and rng reads
  as order-nondeterminism warnings (DET001/DET002),
* :mod:`~repro.lint.dataflow` — whole-plan shape/dtype abstract
  interpretation (SHAPE001-SHAPE004, errors) and liveness / peak-HBM
  bounds (LIVE001 error, LIVE002 warning), with the ``dead_transients``
  liveness export the optimizer's dead-intermediate elimination proves
  its legality with,
* :mod:`~repro.lint.sched` — cross-stream happens-before race detection
  over serving schedules (RACE001/RACE002 errors, RACE003 warning) plus
  the seeded vector-clock replay that pins the static verdicts,
* :mod:`~repro.lint.registry` — the one finding-code table (code →
  severity, summary, doc anchor) every analysis constructs through,
* :mod:`~repro.lint.report` — severity-ranked findings and rendering.

Entry points: :func:`lint_plan` (used by ``python -m repro lint`` and the
``lint="strict"`` gate on :meth:`~repro.frameworks.base.GNNSystem.run`).

Nothing in this package imports :mod:`repro.plan` — the plan IR imports
the effect vocabulary from here, and ``lint_plan`` duck-types its plan.
"""

from typing import Any

from ..gpusim.config import V100, GPUSpec
from .access import (
    COALESCED_SPR_MAX,
    SECTOR_CLASSES,
    AccessPattern,
    Affine,
    KernelAccess,
    access_findings,
    cross_validate_access,
    op_sector_class,
    sector_class,
)
from .dataflow import (
    BufferView,
    FootprintReport,
    LiveRange,
    PlanSymbols,
    dead_transients,
    infer_buffer_shapes,
    live_ranges,
    liveness_findings,
    peak_footprint,
    plan_symbols,
    shape_findings,
)
from .determinism import determinism_findings
from .effects import (
    TRANSIENT_PREFIX,
    BufferEffect,
    KernelEffects,
    LaunchEnvelope,
    conv_read_buffers,
    cross_validate_effects,
    effect_table,
    is_transient,
)
from .hazards import hazard_findings
from .registry import RULES, RuleInfo, explain, make_finding, rule_info
from .report import (
    Finding,
    LintReport,
    PlanLintError,
    finding_rows,
    severity_rank,
    sort_findings,
)
from .resources import resource_findings
from .sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_log, sarif_rules
from .sched import (
    ScheduledPlan,
    StreamSchedule,
    VectorClockChecker,
    cross_validate_races,
    default_shared,
    lint_schedule,
    race_findings,
    replay_schedule,
    serving_schedule,
    static_race_keys,
)

__all__ = [
    "COALESCED_SPR_MAX",
    "RULES",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "SECTOR_CLASSES",
    "AccessPattern",
    "Affine",
    "BufferEffect",
    "BufferView",
    "FootprintReport",
    "KernelAccess",
    "KernelEffects",
    "LaunchEnvelope",
    "LiveRange",
    "PlanSymbols",
    "RuleInfo",
    "ScheduledPlan",
    "StreamSchedule",
    "TRANSIENT_PREFIX",
    "VectorClockChecker",
    "Finding",
    "LintReport",
    "PlanLintError",
    "access_findings",
    "conv_read_buffers",
    "cross_validate_access",
    "cross_validate_effects",
    "cross_validate_races",
    "dead_transients",
    "default_shared",
    "determinism_findings",
    "effect_table",
    "explain",
    "finding_rows",
    "hazard_findings",
    "infer_buffer_shapes",
    "is_transient",
    "lint_plan",
    "lint_schedule",
    "live_ranges",
    "liveness_findings",
    "make_finding",
    "op_sector_class",
    "peak_footprint",
    "plan_symbols",
    "race_findings",
    "replay_schedule",
    "resource_findings",
    "rule_info",
    "sarif_log",
    "sarif_rules",
    "sector_class",
    "serving_schedule",
    "severity_rank",
    "shape_findings",
    "sort_findings",
    "static_race_keys",
]


def lint_plan(plan: Any, spec: GPUSpec = V100) -> LintReport:
    """Run all six per-plan analyses over one lowered plan.

    (Cross-stream race detection needs a :class:`StreamSchedule`, not a
    single plan — see :func:`lint_schedule` / ``serve --lint``.)
    """
    findings = hazard_findings(plan)
    findings += resource_findings(plan, spec)
    findings += determinism_findings(plan)
    findings += access_findings(plan)
    findings += shape_findings(plan)
    findings += liveness_findings(plan, spec)
    label = f"{plan.system}/{plan.model} on {plan.graph_name}"
    return LintReport(plan_label=label, findings=tuple(sort_findings(findings)))
