"""SARIF 2.1.0 encoding of lint and verification findings.

One static-analysis interchange format for both gates: ``repro lint
--format sarif`` and ``repro verify --format sarif`` emit the same log
shape, driven entirely by the shared finding registry — every registered
rule appears in the tool's rule table (with its severity mapped to a
SARIF level and its README anchor as the help URI), and every finding
row becomes one SARIF ``result`` addressed by a logical location
(plan label + op + buffer; there is no physical file to point at, the
"source" is a lowered plan).

Like every lint module this one imports no sibling analyses and nothing
from :mod:`repro.plan` — it consumes the stable JSON row encoding of
:func:`~repro.lint.report.finding_rows`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from .registry import RULES

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "sarif_log", "sarif_rules"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: registry severity -> SARIF reportingConfiguration.level
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def sarif_rules() -> list[dict[str, Any]]:
    """The tool-driver rule table: one entry per registered code, in
    registry order (``ruleIndex`` in results indexes this list)."""
    return [
        {
            "id": info.code,
            "shortDescription": {"text": info.summary},
            "helpUri": f"README.md#{info.anchor}",
            "defaultConfiguration": {"level": _LEVELS[info.severity]},
        }
        for info in RULES.values()
    ]


def _result(row: Mapping[str, str], rule_index: dict[str, int]) -> dict[str, Any]:
    code = row["code"]
    plan = row.get("plan", "")
    op = row.get("op", "")
    buffer = row.get("buffer", "")
    qualified = plan + (f"::{op}" if op else "")
    location: dict[str, Any] = {
        "logicalLocations": [
            {
                "name": op or plan,
                "fullyQualifiedName": qualified,
                "kind": "function" if op else "module",
            }
        ]
    }
    result: dict[str, Any] = {
        "ruleId": code,
        "level": _LEVELS.get(row.get("severity", ""), "none"),
        "message": {"text": row["message"]},
        "locations": [location],
        "properties": {"plan": plan, "op": op, "buffer": buffer},
    }
    if code in rule_index:
        result["ruleIndex"] = rule_index[code]
    return result


def sarif_log(
    rows: Iterable[Mapping[str, str]], *, tool_name: str = "repro-lint"
) -> dict[str, Any]:
    """A complete SARIF 2.1.0 log from finding rows.

    ``rows`` is the ``finding_rows`` encoding (plan / code / severity /
    op / buffer / message); an empty iterable yields a valid log with an
    empty ``results`` array — the "clean" CI upload.
    """
    rules = sarif_rules()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://github.com/paper-repro/tlpgnn"
                        ),
                        "rules": rules,
                    }
                },
                "results": [_result(row, rule_index) for row in rows],
            }
        ],
    }
