"""Lint findings, severity ranking, and report rendering.

Kept free of sibling imports (the analyses import *us*) and free of
:mod:`repro.plan` imports (the plan IR sits above the lint layer).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = [
    "SEVERITIES",
    "Finding",
    "LintReport",
    "PlanLintError",
    "finding_rows",
    "severity_rank",
    "sort_findings",
]

#: most severe first — the sort order of every report
SEVERITIES = ("error", "warning", "info")


def severity_rank(severity: str) -> int:
    """Position in :data:`SEVERITIES` (unknown severities sort last)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic against one op of one plan."""

    severity: str  # "error" | "warning" | "info"
    rule: str  # e.g. "HAZ002"
    message: str
    op: str | None = None  # offending KernelOp name (None = whole plan)
    buffer: str | None = None  # offending buffer name, where one exists

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")

    def render(self) -> str:
        where = f" @ {self.op}" if self.op else ""
        return f"[{self.severity}] {self.rule}{where}: {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Identity triple used by baseline suppression and --json."""
        return (self.rule, self.op or "", self.buffer or "")


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Severity-ranked, then stable by rule id, op, and buffer name."""
    return sorted(
        findings,
        key=lambda f: (severity_rank(f.severity), f.rule, f.op or "", f.buffer or ""),
    )


def finding_rows(plan_label: str, findings: Iterable[Finding]) -> list[dict[str, str]]:
    """The stable JSON row encoding of findings (``repro lint --json``).

    One dict per finding with exactly the fields plan / code / severity /
    op / buffer / message — the contract the baseline files and the
    registry round-trip test are written against.
    """
    return [
        {
            "plan": plan_label,
            "code": f.rule,
            "severity": f.severity,
            "op": f.op or "",
            "buffer": f.buffer or "",
            "message": f.message,
        }
        for f in findings
    ]


@dataclass(frozen=True)
class LintReport:
    """All findings of one linted plan, severity-ranked."""

    plan_label: str  # "System/model on graph"
    findings: tuple[Finding, ...] = ()

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings do not fail a plan)."""
        return not self.errors

    def render(self) -> str:
        if not self.findings:
            return f"{self.plan_label}: clean"
        head = (
            f"{self.plan_label}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        lines = [head]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)


class PlanLintError(RuntimeError):
    """Raised by the ``lint="strict"`` run gate on error-severity findings."""

    def __init__(self, report: LintReport) -> None:
        super().__init__(report.render())
        self.report = report
