"""End-to-end GCN training (manual gradients) on the reproduction substrate.

The paper times inference-side graph convolution, but the systems it
compares (DGL & co.) are training frameworks — so the reproduction ships a
minimal trainable model: a two-layer GCN node classifier with hand-derived
gradients (the normalized-adjacency operator is linear, so its adjoint is
the transposed operator) and plain SGD.  Numerical gradient checks in the
test suite pin the derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..graph.csr import CSRGraph
from . import functional as F
from .gcn import gcn_norm

__all__ = ["GCNClassifier", "cross_entropy", "normalized_adjacency"]


def normalized_adjacency(graph: CSRGraph) -> sp.csr_matrix:
    """Â = D̃^-1/2 (A + I) D̃^-1/2 as a sparse operator (float64)."""
    weights, self_coeff = gcn_norm(graph)
    adj = graph.to_scipy(weights=weights).astype(np.float64)
    return adj + sp.diags(self_coeff.astype(np.float64))


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean masked cross-entropy and its gradient w.r.t. the logits."""
    n = logits.shape[0]
    if mask is None:
        mask = np.ones(n, dtype=bool)
    probs = F.softmax(logits.astype(np.float64), axis=1)
    idx = np.arange(n)
    m = int(mask.sum())
    if m == 0:
        raise ValueError("mask selects no vertices")
    loss = -np.log(np.maximum(probs[idx[mask], labels[mask]], 1e-12)).mean()
    grad = probs.copy()
    grad[idx, labels] -= 1.0
    grad[~mask] = 0.0
    return float(loss), grad / m


@dataclass
class GCNClassifier:
    """Two-layer GCN node classifier: softmax(Â ReLU(Â X W1) W2)."""

    w1: np.ndarray
    w2: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False)

    @classmethod
    def init(
        cls, in_dim: int, hidden_dim: int, num_classes: int,
        rng: np.random.Generator,
    ) -> "GCNClassifier":
        return cls(
            w1=F.xavier_uniform((in_dim, hidden_dim), rng).astype(np.float64),
            w2=F.xavier_uniform((hidden_dim, num_classes), rng).astype(np.float64),
        )

    # ------------------------------------------------------------------
    def forward(self, graph: CSRGraph, X: np.ndarray) -> np.ndarray:
        A = normalized_adjacency(graph)
        X = X.astype(np.float64)
        AX = A @ X
        Z1 = AX @ self.w1
        H1 = np.maximum(Z1, 0.0)
        AH1 = A @ H1
        logits = AH1 @ self.w2
        self._cache = {"A": A, "AX": AX, "Z1": Z1, "H1": H1, "AH1": AH1}
        return logits

    def gradients(self, grad_logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backprop the cached forward; returns (dW1, dW2)."""
        c = self._cache
        if not c:
            raise RuntimeError("call forward() before gradients()")
        dW2 = c["AH1"].T @ grad_logits
        dAH1 = grad_logits @ self.w2.T
        dH1 = c["A"].T @ dAH1  # adjoint of the aggregation operator
        dZ1 = dH1 * (c["Z1"] > 0)
        dW1 = c["AX"].T @ dZ1
        return dW1, dW2

    # ------------------------------------------------------------------
    def train(
        self,
        graph: CSRGraph,
        X: np.ndarray,
        labels: np.ndarray,
        *,
        train_mask: np.ndarray | None = None,
        epochs: int = 100,
        lr: float = 0.1,
        weight_decay: float = 0.0,
        verbose: bool = False,
    ) -> list[float]:
        """Full-batch SGD; returns the loss trajectory."""
        losses = []
        for epoch in range(epochs):
            logits = self.forward(graph, X)
            loss, grad = cross_entropy(logits, labels, train_mask)
            dW1, dW2 = self.gradients(grad)
            if weight_decay:
                dW1 = dW1 + weight_decay * self.w1
                dW2 = dW2 + weight_decay * self.w2
            self.w1 -= lr * dW1
            self.w2 -= lr * dW2
            losses.append(loss)
            if verbose and epoch % 10 == 0:
                print(f"  epoch {epoch:3d}: loss {loss:.4f}")
        return losses

    def predict(self, graph: CSRGraph, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(graph, X), axis=1)

    def accuracy(
        self,
        graph: CSRGraph,
        X: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> float:
        pred = self.predict(graph, X)
        if mask is None:
            mask = np.ones(len(labels), dtype=bool)
        return float((pred[mask] == labels[mask]).mean())
