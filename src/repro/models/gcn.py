"""Graph Convolutional Network (Kipf & Welling) — conv semantics + layer.

Graph convolution: degree-normalized weighted sum of neighbour features
(the paper's Figure 1), including the vertex's own feature via the
renormalization trick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import functional as F
from .convspec import ConvWorkload

__all__ = ["gcn_norm", "build_gcn_conv", "GCNLayer"]


def gcn_norm(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric normalization weights.

    Returns ``(edge_weights, self_coeff)`` with
    ``w(u,v) = 1/sqrt((d_u+1)(d_v+1))`` and ``self_coeff[u] = 1/(d_u+1)``
    (the self-loop term of the renormalized adjacency).
    """
    deg = graph.in_degrees.astype(np.float64) + 1.0
    inv_sqrt = 1.0 / np.sqrt(deg)
    src = graph.indices
    dst = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.in_degrees)
    weights = (inv_sqrt[dst] * inv_sqrt[src]).astype(np.float32)
    self_coeff = (1.0 / deg).astype(np.float32)
    return weights, self_coeff


def build_gcn_conv(graph: CSRGraph, X: np.ndarray) -> ConvWorkload:
    """The GCN graph-convolution workload (what Table 5 times).

    GCN as a UDF instance: sym-norm-scaled source send, sum reduce, scaled
    self-term (the compile path is repro.mp — this is the spec, not a
    hand-built workload).
    """
    from ..mp import MessageSpec, ReduceSpec, SelfTerm, SymNorm, bind

    return bind(
        "gcn",
        MessageSpec(feature="src", scale=SymNorm()),
        ReduceSpec(op="sum", self_term=SelfTerm(kind="scaled")),
        graph,
        X,
    ).workload()


@dataclass
class GCNLayer:
    """One full GCN layer: X @ W → graph conv → ReLU."""

    weight: np.ndarray  # (F_in, F_out)
    bias: np.ndarray | None = None

    @classmethod
    def init(
        cls, in_dim: int, out_dim: int, rng: np.random.Generator
    ) -> "GCNLayer":
        return cls(
            weight=F.xavier_uniform((in_dim, out_dim), rng),
            bias=np.zeros(out_dim, dtype=np.float32),
        )

    def forward(
        self, graph: CSRGraph, X: np.ndarray, *, activation: bool = True
    ) -> np.ndarray:
        from .convspec import reference_aggregate

        h = F.linear(X, self.weight, self.bias)
        h = reference_aggregate(build_gcn_conv(graph, h))
        return F.relu(h) if activation else h
