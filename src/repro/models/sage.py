"""GraphSAGE (Hamilton et al.) — mean-aggregator conv semantics + layer.

Graph convolution: mean of neighbour features; the self feature is combined
in the dense phase (separate weight matrices), which matches the paper's
"differ from GCN as to how they aggregate messages" framing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import functional as F
from .convspec import ConvWorkload

__all__ = ["build_sage_conv", "SAGELayer"]


def build_sage_conv(graph: CSRGraph, X: np.ndarray) -> ConvWorkload:
    """The GraphSAGE graph-convolution workload (neighbour mean).

    SAGE as a UDF instance: unscaled source send, mean reduce, concat
    self-term (combined in the dense phase — the conv adds nothing, but
    multi-kernel lowerings pay the concat epilogue).
    """
    from ..mp import MessageSpec, ReduceSpec, SelfTerm, bind

    return bind(
        "sage",
        MessageSpec(feature="src"),
        ReduceSpec(op="mean", self_term=SelfTerm(kind="concat")),
        graph,
        X,
    ).workload()


@dataclass
class SAGELayer:
    """One SAGE layer: h' = ReLU(W_self · h + W_neigh · mean(N(h)))."""

    w_self: np.ndarray
    w_neigh: np.ndarray

    @classmethod
    def init(cls, in_dim: int, out_dim: int, rng: np.random.Generator) -> "SAGELayer":
        return cls(
            w_self=F.xavier_uniform((in_dim, out_dim), rng),
            w_neigh=F.xavier_uniform((in_dim, out_dim), rng),
        )

    def forward(
        self, graph: CSRGraph, X: np.ndarray, *, activation: bool = True
    ) -> np.ndarray:
        from .convspec import reference_aggregate

        agg = reference_aggregate(build_sage_conv(graph, X))
        h = F.linear(X, self.w_self) + F.linear(agg, self.w_neigh)
        return F.relu(h) if activation else h
