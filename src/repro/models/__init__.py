"""GNN models (GCN, GIN, GraphSAGE, GAT): conv workload builders, full
layers, and the shared ConvWorkload description kernels consume."""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from . import functional
from .convspec import AttentionSpec, ConvWorkload, reference_aggregate
from .gat import GATLayer, MultiHeadGATLayer, build_gat_conv
from .gcn import GCNLayer, build_gcn_conv, gcn_norm
from .gin import GINLayer, build_gin_conv
from .rgcn import RGCNLayer, build_rgcn_convs
from .sage import SAGELayer, build_sage_conv
from .training import GCNClassifier, cross_entropy, normalized_adjacency

__all__ = [
    "functional",
    "ConvWorkload",
    "AttentionSpec",
    "reference_aggregate",
    "build_gcn_conv",
    "gcn_norm",
    "build_gin_conv",
    "build_sage_conv",
    "build_gat_conv",
    "GCNLayer",
    "GINLayer",
    "SAGELayer",
    "GATLayer",
    "MultiHeadGATLayer",
    "RGCNLayer",
    "build_rgcn_convs",
    "GCNClassifier",
    "cross_entropy",
    "normalized_adjacency",
    "MODEL_NAMES",
    "build_conv",
]

#: The four models of the paper's evaluation, in table order.
MODEL_NAMES = ("gcn", "gin", "sage", "gat")


def build_conv(
    model: str,
    graph: CSRGraph,
    X: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
) -> ConvWorkload:
    """Build the graph-convolution workload of ``model`` on ``graph``/``X``.

    GAT needs attention vectors; they are drawn from ``rng`` (default seeded)
    so repeated builds are reproducible.
    """
    model = model.lower()
    if model == "gcn":
        return build_gcn_conv(graph, X)
    if model == "gin":
        return build_gin_conv(graph, X)
    if model in ("sage", "graphsage"):
        return build_sage_conv(graph, X)
    if model == "gat":
        rng = rng or np.random.default_rng(0)
        f = X.shape[1]
        a_src = functional.xavier_uniform((f, 1), rng)[:, 0]
        a_dst = functional.xavier_uniform((f, 1), rng)[:, 0]
        return build_gat_conv(graph, X, a_src, a_dst)
    raise ValueError(f"unknown model {model!r}; known: {MODEL_NAMES}")
