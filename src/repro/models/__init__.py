"""GNN models (GCN, GIN, GraphSAGE, GAT): conv workload builders, full
layers, and the shared ConvWorkload description kernels consume."""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from . import functional
from .convspec import AttentionSpec, ConvWorkload, reference_aggregate
from .gat import GATLayer, MultiHeadGATLayer, build_gat_conv
from .gcn import GCNLayer, build_gcn_conv, gcn_norm
from .gin import GINLayer, build_gin_conv
from .rgcn import RGCNLayer, build_rgcn_convs
from .sage import SAGELayer, build_sage_conv
from .training import GCNClassifier, cross_entropy, normalized_adjacency

__all__ = [
    "functional",
    "ConvWorkload",
    "AttentionSpec",
    "reference_aggregate",
    "build_gcn_conv",
    "gcn_norm",
    "build_gin_conv",
    "build_sage_conv",
    "build_gat_conv",
    "GCNLayer",
    "GINLayer",
    "SAGELayer",
    "GATLayer",
    "MultiHeadGATLayer",
    "RGCNLayer",
    "build_rgcn_convs",
    "GCNClassifier",
    "cross_entropy",
    "normalized_adjacency",
    "MODEL_NAMES",
    "build_conv",
]

#: The four models of the paper's evaluation, in table order.
MODEL_NAMES = ("gcn", "gin", "sage", "gat")


def build_conv(
    model: str,
    graph: CSRGraph,
    X: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
) -> ConvWorkload:
    """Build the graph-convolution workload of ``model`` on ``graph``/``X``.

    Dispatches through the :mod:`repro.mp` UDF registry, so any model
    registered with :func:`repro.mp.register` — not just the builtin zoo —
    resolves here.  GAT needs attention vectors; they are drawn from
    ``rng`` (default seeded) so repeated builds are reproducible.
    """
    from ..mp import build_model

    try:
        return build_model(model, graph, X, rng=rng).workload()
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; known: {MODEL_NAMES}"
        ) from None
