"""Graph Isomorphism Network (Xu et al.) — conv semantics + layer.

Graph convolution: ``(1 + eps) * h_u + sum_{v in N(u)} h_v`` followed by an
MLP in the dense phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import functional as F
from .convspec import ConvWorkload

__all__ = ["build_gin_conv", "GINLayer"]


def build_gin_conv(
    graph: CSRGraph, X: np.ndarray, *, eps: float = 0.0
) -> ConvWorkload:
    """The GIN graph-convolution workload (unweighted sum + self term).

    GIN as a UDF instance: unscaled source send, sum reduce, (1+eps)
    self-term.
    """
    from ..mp import MessageSpec, ReduceSpec, SelfTerm, bind

    return bind(
        "gin",
        MessageSpec(feature="src"),
        ReduceSpec(op="sum", self_term=SelfTerm(kind="eps", eps=eps)),
        graph,
        X,
    ).workload()


@dataclass
class GINLayer:
    """One GIN layer: conv → 2-layer MLP with ReLU."""

    w1: np.ndarray
    w2: np.ndarray
    eps: float = 0.0

    @classmethod
    def init(
        cls,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        *,
        eps: float = 0.0,
    ) -> "GINLayer":
        return cls(
            w1=F.xavier_uniform((in_dim, hidden_dim), rng),
            w2=F.xavier_uniform((hidden_dim, out_dim), rng),
            eps=eps,
        )

    def forward(self, graph: CSRGraph, X: np.ndarray) -> np.ndarray:
        from .convspec import reference_aggregate

        h = reference_aggregate(build_gin_conv(graph, X, eps=self.eps))
        h = F.relu(F.linear(h, self.w1))
        return F.linear(h, self.w2)
