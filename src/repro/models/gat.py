"""Graph Attention Network (Veličković et al.) — attention conv + layer.

Graph convolution: per-edge attention logits from per-vertex scalars,
edge softmax over each destination's neighbourhood, then weighted sum.
This is the model whose convolution DGL spends 18 kernels on and TLPGNN
fuses into one (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import functional as F
from .convspec import ConvWorkload

__all__ = ["build_gat_conv", "GATLayer", "MultiHeadGATLayer"]


def build_gat_conv(
    graph: CSRGraph,
    X: np.ndarray,
    a_src: np.ndarray,
    a_dst: np.ndarray,
    *,
    negative_slope: float = 0.2,
) -> ConvWorkload:
    """The GAT graph-convolution workload.

    ``a_src``/``a_dst`` are the attention vectors (F,); the per-vertex
    scalars ``X @ a`` are computed at bind time (a dense op in the paper's
    phase 1) and the edge logits / softmax / aggregation belong to the
    timed convolution phase.

    GAT as a UDF instance: attention-logit-scaled source send, softmax-
    normalized sum reduce — the spec whose normalization term derives both
    the fused kernel's extra passes and the unfused three-stage pipeline.
    """
    from ..mp import AttentionLogit, MessageSpec, ReduceSpec, bind

    return bind(
        "gat",
        MessageSpec(
            feature="src",
            scale=AttentionLogit(
                a_src=a_src, a_dst=a_dst, negative_slope=negative_slope
            ),
        ),
        ReduceSpec(op="sum", normalize="softmax"),
        graph,
        X,
    ).workload()


@dataclass
class GATLayer:
    """One single-head GAT layer: X @ W → attention conv → ELU-ish ReLU."""

    weight: np.ndarray  # (F_in, F_out)
    a_src: np.ndarray  # (F_out,)
    a_dst: np.ndarray  # (F_out,)
    negative_slope: float = 0.2

    @classmethod
    def init(cls, in_dim: int, out_dim: int, rng: np.random.Generator) -> "GATLayer":
        return cls(
            weight=F.xavier_uniform((in_dim, out_dim), rng),
            a_src=F.xavier_uniform((out_dim, 1), rng)[:, 0],
            a_dst=F.xavier_uniform((out_dim, 1), rng)[:, 0],
        )

    def forward(
        self, graph: CSRGraph, X: np.ndarray, *, activation: bool = True
    ) -> np.ndarray:
        from .convspec import reference_aggregate

        h = F.linear(X, self.weight)
        out = reference_aggregate(
            build_gat_conv(
                graph, h, self.a_src, self.a_dst, negative_slope=self.negative_slope
            )
        )
        return F.relu(out) if activation else out


@dataclass
class MultiHeadGATLayer:
    """Multi-head GAT layer (extension beyond the paper's single-head eval).

    Each head runs its own attention convolution — on the TLPGNN engine
    every head is still one fused kernel — and the head outputs are
    concatenated (hidden layers) or averaged (output layers), following the
    original GAT formulation.
    """

    heads: list[GATLayer]
    combine: str = "concat"  # "concat" | "mean"

    def __post_init__(self) -> None:
        if not self.heads:
            raise ValueError("need at least one head")
        if self.combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")

    @classmethod
    def init(
        cls,
        in_dim: int,
        out_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        *,
        combine: str = "concat",
    ) -> "MultiHeadGATLayer":
        return cls(
            heads=[GATLayer.init(in_dim, out_dim, rng) for _ in range(num_heads)],
            combine=combine,
        )

    @property
    def num_heads(self) -> int:
        return len(self.heads)

    def head_workloads(self, graph: CSRGraph, X: np.ndarray) -> list:
        """One fused-kernel ConvWorkload per head (for profiling)."""
        from . import functional as Fn

        out = []
        for head in self.heads:
            h = Fn.linear(X, head.weight)
            out.append(
                build_gat_conv(
                    graph, h, head.a_src, head.a_dst,
                    negative_slope=head.negative_slope,
                )
            )
        return out

    def forward(
        self, graph: CSRGraph, X: np.ndarray, *, activation: bool = True
    ) -> np.ndarray:
        outs = [
            h.forward(graph, X, activation=activation) for h in self.heads
        ]
        if self.combine == "concat":
            return np.concatenate(outs, axis=1)
        return np.mean(outs, axis=0)
