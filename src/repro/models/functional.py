"""Dense/segment functional ops (numpy) used by the GNN models.

These are the "regular neural operations" of the paper's three-phase layer
pattern; only the graph-convolution phase is timed, but the models need
these to be runnable end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "leaky_relu",
    "dropout",
    "linear",
    "xavier_uniform",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "softmax",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    return np.where(x >= 0, x, negative_slope * x)


def dropout(
    x: np.ndarray, p: float, rng: np.random.Generator, *, training: bool = True
) -> np.ndarray:
    """Inverted dropout; identity when not training or p == 0."""
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = rng.random(x.shape) >= p
    return x * mask / (1.0 - p)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``x @ weight + bias`` with shape checks."""
    if x.shape[-1] != weight.shape[0]:
        raise ValueError(f"shape mismatch: {x.shape} @ {weight.shape}")
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    m = np.max(x, axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / np.sum(e, axis=axis, keepdims=True)


# ----------------------------------------------------------------------
# segment ops over CSR edge groups (destination-major)
# ----------------------------------------------------------------------
def _segment_ids(indptr: np.ndarray) -> np.ndarray:
    n = len(indptr) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


def _reduceat(ufunc, values: np.ndarray, indptr: np.ndarray, empty: float) -> np.ndarray:
    """Segment reduction via ``ufunc.reduceat`` with empty segments fixed up.

    ``reduceat`` returns ``values[start]`` for zero-length segments (and
    cannot take ``start == len(values)``), so empty segments are clipped and
    overwritten with ``empty`` afterwards.  Orders of magnitude faster than
    ``ufunc.at`` at multi-million-edge scale.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n = len(indptr) - 1
    lengths = np.diff(indptr)
    out_shape = (n, *values.shape[1:])
    if values.shape[0] == 0:
        return np.full(out_shape, empty, dtype=values.dtype)
    starts = indptr[:-1]
    # reduceat cannot take a boundary == len(values) (trailing empty
    # segments); reduce over the valid boundaries and scatter back.
    valid = starts < values.shape[0]
    out = np.full(out_shape, empty, dtype=values.dtype)
    out[valid] = ufunc.reduceat(values, starts[valid], axis=0)
    if np.any(lengths == 0):
        out[lengths == 0] = empty
    return out


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` (E,...) over CSR segments → (n,...)."""
    return _reduceat(np.add, values, indptr, 0.0)


def segment_mean(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Mean over CSR segments; empty segments yield zero."""
    counts = np.diff(indptr).astype(np.float64)
    s = segment_sum(values.astype(np.float64), indptr)
    denom = np.maximum(counts, 1.0).reshape((-1, *([1] * (values.ndim - 1))))
    return (s / denom).astype(values.dtype, copy=False)


def segment_max(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Max over CSR segments; empty segments yield zero (GNN convention)."""
    return _reduceat(np.maximum, values, indptr, 0.0)


def segment_softmax(logits: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-destination softmax over edge logits (E,) — GAT's edge softmax.

    Empty segments contribute nothing; numerically stabilized by the
    per-segment max, exactly like DGL's edge_softmax.
    """
    if logits.ndim != 1:
        raise ValueError("edge logits must be 1-D")
    x = logits.astype(np.float64)
    mx = _reduceat(np.maximum, x, indptr, 0.0)
    seg = _segment_ids(indptr)
    e = np.exp(x - mx[seg])
    denom = np.maximum(_reduceat(np.add, e, indptr, 1.0), 1e-38)
    return (e / denom[seg]).astype(logits.dtype, copy=False)
