"""The graph-convolution workload description shared by all kernels.

Every model's graph convolution reduces (per the paper's Eq. 1-2) to:

    out[u] = reduce_{v in N(u)} ( w(u,v) * X[v] )   (+ self_coeff[u] * X[u])

with a per-edge scalar weight ``w`` (possibly 1) and a reduce op in
{sum, mean, max}.  GAT additionally computes ``w`` *inside* the kernel from
per-vertex attention scalars followed by an edge softmax; that structure is
captured by :class:`AttentionSpec` so fused kernels can account for the
extra passes without materializing per-edge data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import functional as F

__all__ = ["ConvWorkload", "AttentionSpec", "reference_aggregate"]

_REDUCES = ("sum", "mean", "max")


@dataclass(frozen=True)
class AttentionSpec:
    """GAT-style in-kernel attention: logit(u,v) = LeakyReLU(asrc[v] + adst[u]),
    then softmax over N(u), then weighted aggregation."""

    att_src: np.ndarray  # (n,) per-source scalar  (a_l · h_v)
    att_dst: np.ndarray  # (n,) per-destination scalar (a_r · h_u)
    negative_slope: float = 0.2


@dataclass(frozen=True)
class ConvWorkload:
    """One graph-convolution invocation, kernel-agnostic."""

    graph: CSRGraph
    X: np.ndarray  # (n, F) float32 input features
    edge_weights: np.ndarray | None = None  # (E,) in CSR order
    self_coeff: np.ndarray | None = None  # (n,) coefficient of own feature
    reduce: str = "sum"
    attention: AttentionSpec | None = None

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be (n, F)")
        if self.X.shape[0] != self.graph.num_vertices:
            raise ValueError("X rows must match vertex count")
        if self.reduce not in _REDUCES:
            raise ValueError(f"reduce must be one of {_REDUCES}")
        if self.edge_weights is not None and self.edge_weights.shape != (
            self.graph.num_edges,
        ):
            raise ValueError("edge_weights must have one entry per edge")
        if self.self_coeff is not None and self.self_coeff.shape != (
            self.graph.num_vertices,
        ):
            raise ValueError("self_coeff must have one entry per vertex")
        if self.attention is not None:
            if self.edge_weights is not None:
                raise ValueError("attention and edge_weights are exclusive")
            if self.reduce != "sum":
                raise ValueError("attention requires sum reduce")

    @property
    def feat_dim(self) -> int:
        return int(self.X.shape[1])

    #: number of per-edge scalars a kernel must fetch besides the feature row
    @property
    def edge_scalar_loads(self) -> int:
        if self.attention is not None:
            return 1  # att_src[v] gathered per edge (adst is register-cached)
        return 1 if self.edge_weights is not None else 0

    def resolved_edge_weights(self) -> np.ndarray:
        """Per-edge weights after resolving attention (softmaxed) or defaults."""
        g = self.graph
        if self.attention is not None:
            a = self.attention
            src = g.indices
            dst = np.repeat(
                np.arange(g.num_vertices, dtype=np.int64), g.in_degrees
            )
            logits = F.leaky_relu(
                a.att_src[src] + a.att_dst[dst], a.negative_slope
            ).astype(np.float64)
            return F.segment_softmax(logits, g.indptr).astype(np.float32)
        if self.edge_weights is not None:
            return self.edge_weights.astype(np.float32, copy=False)
        return np.ones(g.num_edges, dtype=np.float32)


def reference_aggregate(workload: ConvWorkload) -> np.ndarray:
    """Ground-truth vectorized result every kernel must reproduce.

    Sum/mean use the sparse-matrix product (the SpMM view of graph
    convolution); max uses segment reduction.  Accumulation is float64 so
    kernel implementations with different summation orders stay within
    float32 tolerance of it.
    """
    g = workload.graph
    X = workload.X.astype(np.float64, copy=False)
    w = workload.resolved_edge_weights().astype(np.float64)
    if workload.reduce == "max":
        msgs = X[g.indices] * w[:, None]
        out = F.segment_max(msgs, g.indptr)
    else:
        adj = g.to_scipy(weights=w.astype(np.float32)).astype(np.float64)
        out = adj @ X
        if workload.reduce == "mean":
            denom = np.maximum(g.in_degrees.astype(np.float64), 1.0)
            out = out / denom[:, None]
    if workload.self_coeff is not None:
        out = out + workload.self_coeff[:, None] * X
    return out.astype(np.float32)
