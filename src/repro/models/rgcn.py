"""Relational GCN over heterogeneous graphs (future-work extension).

R-GCN layer: ``h'_u = σ( W_0 h_u + Σ_r Σ_{v∈N_r(u)} 1/|N_r(u)| W_r h_v )``.
Each relation's aggregation is one plain ConvWorkload — the homogeneous
TLPGNN kernel runs unmodified per relation, demonstrating the paper's claim
that the kernel design generalizes to heterogeneous GNNs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.hetero import HeteroGraph
from . import functional as F
from .convspec import ConvWorkload, reference_aggregate

__all__ = ["build_rgcn_convs", "RGCNLayer"]


def build_rgcn_convs(
    hetero: HeteroGraph, X: np.ndarray
) -> dict[str, ConvWorkload]:
    """One mean-aggregation ConvWorkload per relation.

    Each relation is the ``rgcn`` UDF instance (plain source send, mean
    reduce) bound to that relation's graph; the relation weights stay in
    the dense phase.
    """
    from ..mp import MessageSpec, ReduceSpec, bind

    X = np.ascontiguousarray(X, dtype=np.float32)
    return {
        name: bind(
            "rgcn", MessageSpec(feature="src"), ReduceSpec(op="mean"), g, X
        ).workload()
        for name, g in hetero.relations.items()
    }


@dataclass
class RGCNLayer:
    """One R-GCN layer: per-relation mean aggregation + relation weights."""

    w_self: np.ndarray
    w_rel: dict[str, np.ndarray]

    @classmethod
    def init(
        cls,
        hetero: HeteroGraph,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
    ) -> "RGCNLayer":
        return cls(
            w_self=F.xavier_uniform((in_dim, out_dim), rng),
            w_rel={
                name: F.xavier_uniform((in_dim, out_dim), rng)
                for name in hetero.relation_names
            },
        )

    def forward(
        self, hetero: HeteroGraph, X: np.ndarray, *, activation: bool = True
    ) -> np.ndarray:
        out = F.linear(X, self.w_self)
        for name, workload in build_rgcn_convs(hetero, X).items():
            agg = reference_aggregate(workload)
            out = out + F.linear(agg, self.w_rel[name])
        return F.relu(out) if activation else out
