"""Regenerators for the paper's Tables 1-5."""

from __future__ import annotations

from ..frameworks import DGLSystem, FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine
from ..graph.datasets import DATASET_ORDER, DATASETS
from ..kernels import (
    EdgeCentricKernel,
    NeighborGroupKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
    three_kernel_gat,
)
from ..models import build_conv
from ..plan import cost_plan, time_parts
from .harness import BenchConfig, get_dataset, make_features, run_system
from .report import TableResult, fmt_mb, fmt_ms, fmt_pct

__all__ = ["table1", "table2", "table3", "table4", "table5"]


def _kernel_metrics(kernel, workload, spec) -> dict:
    res = kernel.execute(workload, spec)
    t = res.timing
    s = res.stats
    return {
        "kernel": kernel.name,
        "runtime_ms": t.runtime_seconds * 1e3,
        "gpu_ms": t.gpu_seconds * 1e3,
        "load_bytes": s.load_bytes,
        "atomic_bytes": s.atomic_bytes,
        "stall": t.stall_scoreboard_cycles,
        "sm_util": t.sm_utilization,
        "occupancy": t.occupancy,
        "sectors_per_request": s.sectors_per_request,
        "l1_hit_est": max(0.0, 1.0 - s.total_sectors / max(s.l1_total_sectors, 1)),
        "atomic_ops": s.atomic_ops,
    }


def table1(config: BenchConfig | None = None) -> TableResult:
    """Table 1: push vs edge-centric vs GNNAdvisor vs pull, GCN on
    ovcar_8h-like, feature size 128."""
    config = config or BenchConfig(feat_dim=128)
    ds = get_dataset("OH", config)
    X = make_features(ds.graph.num_vertices, 128, seed=config.seed)
    workload = build_conv("gcn", ds.graph, X)
    spec = config.spec_for(ds)
    kernels = {
        "Push": PushKernel(),
        "Edge": EdgeCentricKernel(),
        "GnnA.": NeighborGroupKernel(),
        "Pull": TLPGNNKernel(assignment="hardware"),
    }
    recs = {name: _kernel_metrics(k, workload, spec) for name, k in kernels.items()}
    headers = ["Metrics", *kernels]
    rows = [
        ["Runtime (ms)", *(fmt_ms(recs[k]["runtime_ms"]) for k in kernels)],
        ["Mem load traffic", *(fmt_mb(recs[k]["load_bytes"]) for k in kernels)],
        ["Mem atomic store traffic",
         *(fmt_mb(recs[k]["atomic_bytes"]) for k in kernels)],
        ["Stall long scoreboard (cyc)",
         *(f"{recs[k]['stall']:.1f}" for k in kernels)],
        ["SM utilization", *(fmt_pct(recs[k]["sm_util"]) for k in kernels)],
    ]
    return TableResult(
        exp_id="Table 1",
        title="Atomic-operation impact (GCN, ovcar_8h-like, feat 128)",
        headers=headers,
        rows=rows,
        records=list(recs.values()),
        notes=f"graph: |V|={ds.graph.num_vertices}, |E|={ds.graph.num_edges} "
        f"(scale {ds.scale:g} of Ovcar-8h)",
    )


def table2(config: BenchConfig | None = None) -> TableResult:
    """Table 2: one-thread-per-vertex vs half-warp-per-vertex, feat 128."""
    config = config or BenchConfig(feat_dim=128)
    ds = get_dataset("OH", config)
    X = make_features(ds.graph.num_vertices, 128, seed=config.seed)
    workload = build_conv("gcn", ds.graph, X)
    spec = config.spec_for(ds)
    kernels = {
        "One Thread": PullThreadKernel(),
        "Half Warp": TLPGNNKernel(group_size=16, assignment="hardware"),
    }
    recs = {n: _kernel_metrics(k, workload, spec) for n, k in kernels.items()}
    headers = ["Metrics", *kernels]
    rows = [
        ["Runtime (ms)", *(fmt_ms(recs[k]["runtime_ms"]) for k in kernels)],
        ["Sector per request",
         *(f"{recs[k]['sectors_per_request']:.1f}" for k in kernels)],
        ["L1 cache hit", *(fmt_pct(recs[k]["l1_hit_est"]) for k in kernels)],
        ["Long scoreboard (cyc)", *(f"{recs[k]['stall']:.1f}" for k in kernels)],
    ]
    return TableResult(
        exp_id="Table 2",
        title="Coalescing impact: thread- vs half-warp-per-vertex (GCN, feat 128)",
        headers=headers,
        rows=rows,
        records=list(recs.values()),
    )


def table3(config: BenchConfig | None = None) -> TableResult:
    """Table 3: DGL (18 kernels) vs three-kernel vs one-kernel GAT
    convolution on reddit-like, feature size 32."""
    config = config or BenchConfig(feat_dim=32)
    ds = get_dataset("RD", config)
    X = make_features(ds.graph.num_vertices, 32, seed=config.seed)
    spec = config.spec_for(ds)

    dgl = run_system(DGLSystem(), "gat", ds, config, X=X)
    assert dgl is not None
    dgl_rep = dgl.report

    workload = build_conv("gat", ds.graph, X)
    _out3, pipe3, parts3 = three_kernel_gat(workload, spec)
    timings3 = time_parts(parts3, spec)
    three = cost_plan(pipe3, timings3, spec)

    tlp = run_system(TLPGNNEngine(), "gat", ds, config, X=X)
    assert tlp is not None
    one_rep = tlp.report

    cols = {
        "DGL": {
            "kernels": dgl_rep.kernel_launches,
            "runtime": dgl_rep.runtime_ms,
            "gpu": dgl_rep.gpu_time_ms,
            "usage": dgl_rep.global_mem_usage_bytes,
            "traffic": dgl_rep.mem_total_bytes,
            "stall": dgl_rep.stall_long_scoreboard,
            "sm": dgl_rep.sm_utilization,
        },
        "Three-Kernel": {
            "kernels": pipe3.num_kernels,
            "runtime": (three.runtime_seconds) * 1e3,
            "gpu": three.gpu_seconds * 1e3,
            "usage": pipe3.total_workspace_bytes,
            "traffic": pipe3.total_bytes,
            "stall": three.avg_stall_scoreboard,
            "sm": three.avg_sm_utilization,
        },
        "One-Kernel": {
            "kernels": one_rep.kernel_launches,
            "runtime": one_rep.runtime_ms,
            "gpu": one_rep.gpu_time_ms,
            "usage": one_rep.global_mem_usage_bytes,
            "traffic": one_rep.mem_total_bytes,
            "stall": one_rep.stall_long_scoreboard,
            "sm": one_rep.sm_utilization,
        },
    }
    headers = ["Metrics", *cols]
    rows = [
        ["GPU kernel launches", *(str(c["kernels"]) for c in cols.values())],
        ["Runtime (ms)", *(fmt_ms(c["runtime"]) for c in cols.values())],
        ["GPU time (ms)", *(fmt_ms(c["gpu"]) for c in cols.values())],
        ["Runtime - GPU time (ms)",
         *(fmt_ms(c["runtime"] - c["gpu"]) for c in cols.values())],
        ["Global mem usage", *(fmt_mb(c["usage"]) for c in cols.values())],
        ["Global mem traffic", *(fmt_mb(c["traffic"]) for c in cols.values())],
        ["Stall long scoreboard (cyc)",
         *(f"{c['stall']:.1f}" for c in cols.values())],
        ["Average SM utilization", *(fmt_pct(c["sm"]) for c in cols.values())],
    ]
    return TableResult(
        exp_id="Table 3",
        title="Kernel-launch impact: GAT convolution on reddit-like, feat 32",
        headers=headers,
        rows=rows,
        records=[{"config": k, **v} for k, v in cols.items()],
    )


def table4(config: BenchConfig | None = None) -> TableResult:
    """Table 4: dataset statistics (full-size specs + loaded stand-ins)."""
    config = config or BenchConfig()
    headers = [
        "Dataset (Abbr.)",
        "vertex #",
        "edge #",
        "avg deg",
        "loaded |V|",
        "loaded |E|",
        "loaded avg deg",
    ]
    rows, records = [], []
    for abbr in DATASET_ORDER:
        spec = DATASETS[abbr]
        ds = get_dataset(abbr, config)
        g = ds.graph
        rows.append(
            [
                f"{spec.full_name} ({abbr})",
                f"{spec.num_vertices:,}",
                f"{spec.num_edges:,}",
                f"{spec.avg_degree:.1f}",
                f"{g.num_vertices:,}",
                f"{g.num_edges:,}",
                f"{g.avg_degree:.1f}",
            ]
        )
        records.append({**g.stats(), "abbr": abbr, "scale": ds.scale})
    return TableResult(
        exp_id="Table 4",
        title="Graph benchmarks (paper spec vs loaded synthetic stand-in)",
        headers=headers,
        rows=rows,
        records=records,
    )


def table5(
    config: BenchConfig | None = None,
    *,
    models: tuple[str, ...] = ("gcn", "gin", "sage", "gat"),
    datasets: tuple[str, ...] | None = None,
) -> TableResult:
    """Table 5: the main comparison — execution times of the four systems
    over four models and eleven datasets (feature size 32)."""
    config = config or BenchConfig(feat_dim=32)
    datasets = tuple(datasets or DATASET_ORDER)
    headers = ["Model", "Data", "DGL", "GNNA.", "FeatG.", "TLPGNN", "Speedup"]
    rows, records = [], []
    systems = {
        "DGL": DGLSystem,
        "GNNA.": GNNAdvisorSystem,
        "FeatG.": FeatGraphSystem,
        "TLPGNN": TLPGNNEngine,
    }
    for model in models:
        for abbr in datasets:
            ds = get_dataset(abbr, config)
            X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
            times: dict[str, float | None] = {}
            for name, factory in systems.items():
                res = run_system(factory(), model, ds, config, X=X)
                times[name] = None if res is None else res.runtime_ms
            baselines = [
                t for k, t in times.items() if k != "TLPGNN" and t is not None
            ]
            ours = times["TLPGNN"]
            speedup = min(baselines) / ours if baselines and ours else float("nan")
            rows.append(
                [
                    model.upper() if model != "sage" else "Sage",
                    abbr,
                    *(
                        "-" if times[k] is None else fmt_ms(times[k])
                        for k in ("DGL", "GNNA.", "FeatG.", "TLPGNN")
                    ),
                    f"{speedup:.1f}x",
                ]
            )
            records.append(
                {"model": model, "dataset": abbr, "speedup": speedup, **times}
            )
    return TableResult(
        exp_id="Table 5",
        title="Execution times (modeled ms) of TLPGNN vs DGL/GNNAdvisor/FeatGraph",
        headers=headers,
        rows=rows,
        records=records,
        notes="'-' marks cells the paper also leaves blank (unimplemented "
        "models / GNNAdvisor capacity failures on the 4 largest graphs).",
    )
