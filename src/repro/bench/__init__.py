"""Benchmark harness: regenerates every table and figure of the paper's
evaluation section (Tables 1-5, Figures 8-12)."""

from .figures import ABLATION_STAGES, ablation_series, fig8, fig9, fig10, fig11, fig12
from .harness import (
    BenchConfig,
    get_dataset,
    make_features,
    run_comparison,
    run_system,
)
from .report import TableResult, render_table
from .serving import SERVING_SYSTEMS, serving_scenario, sustained_rate
from .sweep import sweep_feature_dims, sweep_grid, sweep_scales
from .tables import table1, table2, table3, table4, table5
from .validate import CLAIMS, ClaimResult, validate_claims

__all__ = [
    "BenchConfig",
    "get_dataset",
    "make_features",
    "run_system",
    "run_comparison",
    "TableResult",
    "render_table",
    "serving_scenario",
    "sustained_rate",
    "SERVING_SYSTEMS",
    "sweep_feature_dims",
    "sweep_scales",
    "sweep_grid",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablation_series",
    "validate_claims",
    "ClaimResult",
    "CLAIMS",
    "ABLATION_STAGES",
]

#: every experiment regenerator, by paper id
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}
