"""Cross-system serving comparison under identical arrival traces.

The offline tables (Table 5 etc.) compare one-shot runtimes; this
scenario compares what the paper's launch-overhead story implies *online*:
for each dataset, every system serves the **same** deterministic request
trace (same seed, same rate) at a ladder of offered rates, and we report
the highest rate each system *sustains* — zero shed requests and p99
latency within the SLO.  TLPGNN's fused single launch keeps its service
time near its GPU time, while DGL-sim's six-kernel pipeline pays launch +
framework dispatch per kernel per batch, so its sustainable rate saturates
far earlier — the serving-side restatement of Table 3.

Results are published into the ``repro.obs`` metrics registry (installed
or passed explicitly) as ``serve_*`` counters/gauges.
"""

from __future__ import annotations

import numpy as np

from ..frameworks import SYSTEMS, UnsupportedModelError
from ..obs.metrics import MetricsRegistry, get_registry
from ..serve import ServableModel, ServeConfig, serve_trace
from .harness import BenchConfig, get_dataset
from .report import TableResult, fmt_ms

__all__ = ["serving_scenario", "sustained_rate", "SERVING_SYSTEMS"]

#: systems compared in the serving scenario (FeatGraph-sim is offline-only
#: in the paper's evaluation and is omitted here)
SERVING_SYSTEMS = ("TLPGNN", "DGL", "GNNAdvisor")

#: offered-rate ladder, as multiples of the reference system's offline
#: service rate (1/runtime); spans under-load through heavy overload
_RATE_FRACTIONS = (0.25, 0.5, 0.8, 1.2, 2.0, 3.0, 5.0, 8.0, 12.0)


def sustained_rate(
    model: ServableModel,
    rates: "np.ndarray | list[float]",
    *,
    slo_ms: float,
    base_cfg: ServeConfig,
):
    """Highest offered rate the model serves with zero shed and p99 ≤ SLO.

    Returns ``(rate_hz, report_at_that_rate)`` — ``(0.0, None)`` when even
    the lowest rung fails.  Each rung reuses the same trace seed, so every
    system at a given rung sees identical arrivals.
    """
    best_rate, best_report = 0.0, None
    for rate in rates:
        cfg = ServeConfig(
            arrival=base_cfg.arrival,
            rate_hz=float(rate),
            num_requests=base_cfg.num_requests,
            job=base_cfg.job,
            targets_per_request=base_cfg.targets_per_request,
            max_batch=base_cfg.max_batch,
            window_s=base_cfg.window_s,
            num_streams=base_cfg.num_streams,
            queue_depth=base_cfg.queue_depth,
            seed=base_cfg.seed,
        )
        report = serve_trace(model, cfg)
        if report.shed == 0 and report.p99_ms <= slo_ms and rate > best_rate:
            best_rate, best_report = float(rate), report
    return best_rate, best_report


def serving_scenario(
    config: BenchConfig,
    *,
    model: str = "gcn",
    datasets: tuple[str, ...] = ("CS", "CR"),
    systems: tuple[str, ...] = SERVING_SYSTEMS,
    slo_ms: float | None = None,
    num_requests: int = 120,
    max_batch: int = 4,
    window_s: float = 200e-6,
    num_streams: int = 2,
    queue_depth: int = 64,
    registry: MetricsRegistry | None = None,
) -> TableResult:
    """TLPGNN vs DGL-sim vs GNNAdvisor under identical arrival traces.

    ``slo_ms=None`` sets the SLO per dataset to 2.5× the DGL-sim offline
    runtime, so the baseline comfortably meets it at low load and the
    comparison measures headroom, not a rigged bar.
    """
    registry = registry if registry is not None else get_registry()
    rows: list[list[str]] = []
    records: list[dict] = []
    for abbr in datasets:
        dataset = get_dataset(abbr, config)
        spec = config.spec_for(dataset)
        servables: dict[str, ServableModel | None] = {}
        for name in systems:
            try:
                servables[name] = ServableModel(
                    SYSTEMS[name](),
                    model,
                    dataset,
                    feat_dim=config.feat_dim,
                    spec=spec,
                    seed=config.seed,
                )
            except UnsupportedModelError:
                servables[name] = None
        reference = servables.get("DGL") or next(
            s for s in servables.values() if s is not None
        )
        ref_runtime_s = reference.offline_runtime_s
        dataset_slo = (
            slo_ms if slo_ms is not None else 2.5 * ref_runtime_s * 1e3
        )
        rates = [f / ref_runtime_s for f in _RATE_FRACTIONS]
        base_cfg = ServeConfig(
            num_requests=num_requests,
            max_batch=max_batch,
            window_s=window_s,
            num_streams=num_streams,
            queue_depth=queue_depth,
            seed=config.seed,
        )
        for name in systems:
            servable = servables[name]
            if servable is None:
                rows.append([abbr, name, "-", "-", "-", fmt_ms(dataset_slo)])
                records.append(
                    {"dataset": abbr, "system": name, "supported": False}
                )
                continue
            rate, report = sustained_rate(
                servable, rates, slo_ms=dataset_slo, base_cfg=base_cfg
            )
            if registry is not None and report is not None:
                report.publish(
                    registry, system=name, dataset=abbr, model=model
                )
                registry.gauge(
                    "serve_sustained_rps", system=name, dataset=abbr,
                    model=model,
                ).set(rate)
            rows.append(
                [
                    abbr,
                    name,
                    f"{rate:,.0f}" if report else "0",
                    fmt_ms(report.p99_ms) if report else "-",
                    fmt_ms(servable.offline_runtime_s * 1e3),
                    fmt_ms(dataset_slo),
                ]
            )
            records.append(
                {
                    "dataset": abbr,
                    "system": name,
                    "supported": True,
                    "sustained_rps": rate,
                    "p99_ms": report.p99_ms if report else None,
                    "throughput_rps": report.throughput_rps if report else 0.0,
                    "offline_runtime_ms": servable.offline_runtime_s * 1e3,
                    "slo_ms": dataset_slo,
                }
            )
    return TableResult(
        exp_id="serving",
        title=f"sustained load at p99 SLO ({model}, identical traces)",
        headers=[
            "dataset", "system", "sustained req/s", "p99 ms", "offline ms",
            "SLO ms",
        ],
        rows=rows,
        records=records,
        notes=(
            "sustained = highest offered rate with zero shed requests and "
            "p99 <= SLO; every system at a rung serves the identical "
            "Poisson trace (same seed).  SLO defaults to 2.5x the DGL-sim "
            "offline runtime per dataset."
        ),
    )
