"""Plain-text rendering of reproduced tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableResult", "render_table", "fmt_ms", "fmt_mb", "fmt_pct"]


def fmt_ms(seconds_or_ms: float, *, is_ms: bool = True) -> str:
    v = seconds_or_ms if is_ms else seconds_or_ms * 1e3
    if v >= 100:
        return f"{v:.0f}"
    if v >= 1:
        return f"{v:.2f}"
    return f"{v:.3f}"


def fmt_mb(num_bytes: float) -> str:
    mb = num_bytes / 1e6
    if mb >= 1000:
        return f"{mb / 1000:.2f} GB"
    return f"{mb:.1f} MB"


def fmt_pct(frac: float) -> str:
    return f"{100 * frac:.1f}%"


@dataclass
class TableResult:
    """One regenerated table/figure: rendered rows + raw records."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    #: raw metric dicts for EXPERIMENTS.md / assertions
    records: list[dict] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        return render_table(
            f"{self.exp_id}: {self.title}", self.headers, self.rows, notes=self.notes
        )


def render_table(
    title: str, headers: list[str], rows: list[list[str]], *, notes: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    cols = len(headers)
    for r in rows:
        if len(r) != cols:
            raise ValueError(f"row width {len(r)} != header width {cols}")
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows), 1)
        if rows
        else len(str(headers[c]))
        for c in range(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True)))
    out.append(sep)
    for r in rows:
        out.append(" | ".join(str(v).ljust(w) for v, w in zip(r, widths, strict=True)))
    if notes:
        out.append("")
        out.append(notes)
    return "\n".join(out)
