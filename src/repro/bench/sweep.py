"""Generic parameter sweeps over the experiment harness.

The paper's figures are fixed sweeps; downstream users usually want their
own (feature size × system, scale sensitivity, model × dataset grids).
This module provides those as composable one-liners that produce the same
:class:`~repro.bench.report.TableResult` objects the built-in regenerators
return.
"""

from __future__ import annotations

from typing import Sequence

from ..frameworks import SYSTEMS
from ..opt import get_tuned_store
from ..plan import get_plan_cache
from .harness import BenchConfig, get_dataset, make_features, run_system
from .report import TableResult, fmt_ms

__all__ = ["sweep_feature_dims", "sweep_scales", "sweep_grid"]


class _CacheCounts:
    """Delta of plan-cache + tuned-plan-store counters over one sweep
    (for the summary note)."""

    def __init__(self) -> None:
        cache = get_plan_cache()
        self._before = cache.snapshot() if cache is not None else None
        self._tuned_before = get_tuned_store().snapshot()

    def note(self) -> str:
        cache = get_plan_cache()
        # publish the full counter set into any installed registry — the
        # same set ``repro serve --metrics-out`` exposes
        store = get_tuned_store()
        store.publish()
        tuned_after = store.snapshot()
        tuned_hits = tuned_after["hits"] - self._tuned_before["hits"]
        plans_tuned = tuned_after["tuned"] - self._tuned_before["tuned"]
        tuner = (
            f"; tuner: {plans_tuned} plan(s) tuned, "
            f"{tuned_hits} tuned-plan hit(s)"
            if plans_tuned or tuned_hits
            else ""
        )
        if cache is None or self._before is None:
            return "plan cache: disabled" + tuner
        cache.publish()
        after = cache.snapshot()
        hits = after["hits"] - self._before["hits"]
        misses = after["misses"] - self._before["misses"]
        return f"plan cache: {hits} hit(s), {misses} miss(es)" + tuner


def sweep_feature_dims(
    model: str,
    abbr: str,
    *,
    feat_dims: Sequence[int] = (16, 32, 64, 128),
    systems: Sequence[str] = ("DGL", "FeatGraph", "TLPGNN"),
    config: BenchConfig | None = None,
) -> TableResult:
    """Runtime of each system as the feature dimension grows."""
    base = config or BenchConfig()
    counts = _CacheCounts()
    headers = ["System", *(str(f) for f in feat_dims)]
    rows, records = [], []
    for name in systems:
        row = [name]
        for f in feat_dims:
            cfg = BenchConfig(
                feat_dim=f, max_edges=base.max_edges, seed=base.seed,
                spec=base.spec, scale_device=base.scale_device,
            )
            ds = get_dataset(abbr, cfg)
            res = run_system(SYSTEMS[name](), model, ds, cfg)
            ms = None if res is None else res.runtime_ms
            row.append("-" if ms is None else fmt_ms(ms))
            records.append(
                {"system": name, "feat_dim": f, "runtime_ms": ms}
            )
        rows.append(row)
    return TableResult(
        exp_id="sweep",
        title=f"{model.upper()} on {abbr}: runtime (ms) vs feature dimension",
        headers=headers,
        rows=rows,
        records=records,
        notes=counts.note(),
    )


def sweep_scales(
    model: str,
    abbr: str,
    *,
    max_edges: Sequence[int] = (250_000, 500_000, 1_000_000, 2_000_000),
    system: str = "TLPGNN",
    config: BenchConfig | None = None,
) -> TableResult:
    """Sensitivity of one system's modeled time to the stand-in scale.

    With device scaling on, modeled milliseconds should be roughly
    scale-invariant — this sweep is the self-check for that property.
    """
    base = config or BenchConfig()
    counts = _CacheCounts()
    headers = ["max_edges", "scale", "|V|", "|E|", "runtime_ms"]
    rows, records = [], []
    for cap in max_edges:
        cfg = BenchConfig(
            feat_dim=base.feat_dim, max_edges=cap, seed=base.seed,
            spec=base.spec, scale_device=base.scale_device,
        )
        ds = get_dataset(abbr, cfg)
        res = run_system(SYSTEMS[system](), model, ds, cfg)
        ms = None if res is None else res.runtime_ms
        rows.append(
            [
                f"{cap:,}",
                f"{ds.scale:g}",
                f"{ds.graph.num_vertices:,}",
                f"{ds.graph.num_edges:,}",
                "-" if ms is None else fmt_ms(ms),
            ]
        )
        records.append(
            {"max_edges": cap, "scale": ds.scale, "runtime_ms": ms}
        )
    return TableResult(
        exp_id="sweep",
        title=f"{system} {model.upper()} on {abbr}: scale sensitivity",
        headers=headers,
        rows=rows,
        records=records,
        notes=counts.note(),
    )


def sweep_grid(
    *,
    models: Sequence[str] = ("gcn", "gat"),
    datasets: Sequence[str] = ("CR", "PI", "RD"),
    system: str = "TLPGNN",
    config: BenchConfig | None = None,
) -> TableResult:
    """model × dataset runtime grid for one system."""
    cfg = config or BenchConfig()
    counts = _CacheCounts()
    headers = ["Model", *datasets]
    rows, records = [], []
    for model in models:
        row = [model.upper()]
        for abbr in datasets:
            ds = get_dataset(abbr, cfg)
            X = make_features(ds.graph.num_vertices, cfg.feat_dim, seed=cfg.seed)
            res = run_system(SYSTEMS[system](), model, ds, cfg, X=X)
            ms = None if res is None else res.runtime_ms
            row.append("-" if ms is None else fmt_ms(ms))
            records.append(
                {"model": model, "dataset": abbr, "runtime_ms": ms}
            )
        rows.append(row)
    return TableResult(
        exp_id="sweep",
        title=f"{system}: runtime (ms) grid",
        headers=headers,
        rows=rows,
        records=records,
        notes=counts.note(),
    )
