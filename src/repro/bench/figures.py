"""Regenerators for the paper's evaluation figures (8-12).

Each returns a :class:`~repro.bench.report.TableResult` whose rows are the
figure's data series (we render figures as tables of series, since the
environment is headless).
"""

from __future__ import annotations

import numpy as np

from ..frameworks import FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine
from ..graph.datasets import DATASET_ORDER, FIG8_SEVEN, LARGE_FOUR
from ..gpusim.scheduler import software_pool_schedule
from .harness import BenchConfig, get_dataset, make_features, run_system
from .report import TableResult, fmt_mb, fmt_pct

__all__ = ["fig8", "fig9", "fig10", "fig11", "fig12", "ablation_series"]

#: Figure 11/12 default dataset grid (immutable so it can be a default arg)
LARGE_FOUR_T = tuple(LARGE_FOUR)


def fig8(config: BenchConfig | None = None) -> TableResult:
    """Figure 8: GNNAdvisor atomic-write traffic for GCN and GIN."""
    config = config or BenchConfig(feat_dim=32)
    headers = ["Model", *FIG8_SEVEN]
    rows, records = [], []
    for model in ("gcn", "gin"):
        row = [model.upper()]
        for abbr in FIG8_SEVEN:
            ds = get_dataset(abbr, config)
            res = run_system(GNNAdvisorSystem(), model, ds, config)
            assert res is not None
            row.append(fmt_mb(res.report.mem_atomic_store_bytes))
            records.append(
                {
                    "model": model,
                    "dataset": abbr,
                    "atomic_bytes": res.report.mem_atomic_store_bytes,
                }
            )
        rows.append(row)
    return TableResult(
        exp_id="Figure 8",
        title="GNNAdvisor atomic-write memory traffic (GCN / GIN)",
        headers=headers,
        rows=rows,
        records=records,
    )


def fig9(config: BenchConfig | None = None) -> TableResult:
    """Figure 9: achieved occupancy, FeatGraph vs TLPGNN (GCN)."""
    config = config or BenchConfig(feat_dim=32)
    headers = ["System", *DATASET_ORDER, "Average"]
    rows, records = [], []
    for name, factory in (("FeatGraph", FeatGraphSystem), ("TLPGNN", TLPGNNEngine)):
        vals = []
        for abbr in DATASET_ORDER:
            ds = get_dataset(abbr, config)
            res = run_system(factory(), "gcn", ds, config)
            assert res is not None
            vals.append(res.report.achieved_occupancy)
            records.append(
                {"system": name, "dataset": abbr, "occupancy": vals[-1]}
            )
        rows.append(
            [name, *(fmt_pct(v) for v in vals), fmt_pct(np.mean(vals))]
        )
        records.append(
            {"system": name, "dataset": "average", "occupancy": float(np.mean(vals))}
        )
    return TableResult(
        exp_id="Figure 9",
        title="Achieved occupancy of the GCN convolution",
        headers=headers,
        rows=rows,
        records=records,
    )


#: Figure 10 ablation stages, applied cumulatively over the edge-centric
#: baseline (the paper's Baseline/TLP/Hybrid/Cache/Fusion bars).
ABLATION_STAGES: dict[str, dict] = {
    "Baseline": dict(two_level=False, hybrid=False, register_cache=False, fusion=False),
    "+TLP": dict(two_level=True, hybrid=False, register_cache=False, fusion=False),
    "+Hybrid": dict(two_level=True, hybrid=True, register_cache=False, fusion=False),
    "+Cache": dict(two_level=True, hybrid=True, register_cache=True, fusion=False),
    "+Fusion": dict(two_level=True, hybrid=True, register_cache=True, fusion=True),
}


def ablation_series(
    model: str, abbr: str, config: BenchConfig, *, stages: dict | None = None
) -> dict[str, float]:
    """Runtime (ms) of each cumulative ablation stage for one cell."""
    stages = stages or ABLATION_STAGES
    ds = get_dataset(abbr, config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    out: dict[str, float] = {}
    for name, toggles in stages.items():
        if name == "+Fusion" and model != "gat":
            continue  # fusion stage only differs for GAT, as in the paper
        res = run_system(TLPGNNEngine(**toggles), model, ds, config, X=X)
        assert res is not None
        out[name] = res.runtime_ms
    return out


def fig10(
    config: BenchConfig | None = None,
    *,
    models: tuple[str, ...] = ("gcn", "gin", "sage", "gat"),
    datasets: tuple[str, ...] | None = None,
) -> TableResult:
    """Figure 10: per-technique speedups over the edge-centric baseline."""
    config = config or BenchConfig(feat_dim=32)
    datasets = tuple(datasets or DATASET_ORDER)
    headers = ["Model", "Data", "+TLP", "+Hybrid", "+Cache", "+Fusion", "Total"]
    rows, records = [], []
    for model in models:
        for abbr in datasets:
            series = ablation_series(model, abbr, config)
            base = series["Baseline"]
            stage_names = [s for s in series if s != "Baseline"]
            incr = {}
            prev = base
            for s in stage_names:
                incr[s] = prev / series[s]
                prev = series[s]
            total = base / series[stage_names[-1]]
            rows.append(
                [
                    model.upper() if model != "sage" else "Sage",
                    abbr,
                    *(
                        f"{incr[s]:.2f}x" if s in incr else "-"
                        for s in ("+TLP", "+Hybrid", "+Cache", "+Fusion")
                    ),
                    f"{total:.1f}x",
                ]
            )
            records.append(
                {"model": model, "dataset": abbr, "total": total, **incr,
                 "baseline_ms": base}
            )
    return TableResult(
        exp_id="Figure 10",
        title="Technique benefits: cumulative speedup over edge-centric baseline",
        headers=headers,
        rows=rows,
        records=records,
    )


def fig11(
    config: BenchConfig | None = None,
    *,
    models: tuple[str, ...] = ("gcn", "gin", "sage", "gat"),
    datasets: tuple[str, ...] = LARGE_FOUR_T,
    block_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    threads_per_block: int = 512,
    step: int = 2,
) -> TableResult:
    """Figure 11: scalability against thread count (blocks × 512 threads).

    The resident grid is clamped to ``blocks`` persistent blocks pulling
    from the software task pool; speedups are relative to one block.

    Runs at *full dataset size*: the vertex-parallel cost model depends only
    on the degree sequence, which
    :func:`repro.graph.datasets.sample_degree_sequence` produces without
    materializing hundred-million-edge arrays — so this figure needs neither
    dataset nor device scaling.
    """
    from ..graph.datasets import sample_degree_sequence
    from ..gpusim.warpcost import warp_cycles as _warp_cycles
    from ..kernels.tlpgnn import per_vertex_counters

    config = config or BenchConfig(feat_dim=32)
    spec = config.spec
    warps_per_block = threads_per_block // spec.threads_per_warp
    headers = ["Model", "Data", *(str(b) for b in block_counts)]
    rows, records = [], []
    for model in models:
        for abbr in datasets:
            degrees = sample_degree_sequence(abbr, seed=config.seed)
            counters = per_vertex_counters(
                degrees,
                config.feat_dim,
                edge_scalar_loads=1 if model in ("gcn", "gat") else 0,
                attention=model == "gat",
                mean_reduce=model == "sage",
            )
            cycles = _warp_cycles(
                spec,
                instructions=counters["instructions"].astype(np.float64),
                requests=(
                    counters["load_requests"] + counters["store_requests"]
                ).astype(np.float64),
                sectors=(
                    counters["l1_load_sectors"] + counters["l1_store_sectors"]
                ).astype(np.float64),
            )
            # full-size DRAM floor: the roofline that bends the curve at
            # high thread counts, exactly like the paper's GAT panel
            from ..gpusim.memory import cached_dram_sectors
            from ..kernels.base import feature_row_sectors

            n, E = degrees.size, int(degrees.sum())
            SF = feature_row_sectors(config.feat_dim)
            dram_sectors = (
                cached_dram_sectors(E * SF, n * SF, spec.l2_bytes)
                + E // 8  # streamed index/weight arrays
                + n * SF  # output rows
            )
            bw_seconds = dram_sectors * 32 / spec.mem_bandwidth_bytes_per_s
            times = []
            for blocks in block_counts:
                resident = blocks * warps_per_block
                sched = software_pool_schedule(
                    cycles, spec, step=step, resident_warps=resident
                )
                # bandwidth achievable with `resident` warps (Little's law)
                bw_cap_frac = min(
                    1.0, resident / (0.22 * spec.max_resident_warps)
                )
                times.append(
                    max(
                        sched.makespan_cycles / spec.clock_hz,
                        bw_seconds / max(bw_cap_frac, 1e-9),
                    )
                )
            speedups = [times[0] / t for t in times]
            rows.append(
                [model.upper() if model != "sage" else "Sage", abbr,
                 *(f"{s:.1f}x" for s in speedups)]
            )
            records.append(
                {
                    "model": model,
                    "dataset": abbr,
                    "blocks": list(block_counts),
                    "speedups": speedups,
                }
            )
    return TableResult(
        exp_id="Figure 11",
        title=f"Scalability vs thread count ({threads_per_block} threads/block), "
        "speedup over 1 block",
        headers=headers,
        rows=rows,
        records=records,
    )


def fig12(
    config: BenchConfig | None = None,
    *,
    models: tuple[str, ...] = ("gcn", "gin", "sage", "gat"),
    datasets: tuple[str, ...] = LARGE_FOUR_T,
    feat_sizes: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
) -> TableResult:
    """Figure 12: normalized runtime against feature size (vs size 16)."""
    base_cfg = config or BenchConfig()
    headers = ["Model", "Data", *(str(f) for f in feat_sizes)]
    rows, records = [], []
    for model in models:
        for abbr in datasets:
            times = []
            for f in feat_sizes:
                cfg = BenchConfig(
                    feat_dim=f, max_edges=base_cfg.max_edges, seed=base_cfg.seed,
                    spec=base_cfg.spec,
                )
                ds = get_dataset(abbr, cfg)
                res = run_system(TLPGNNEngine(), model, ds, cfg)
                assert res is not None
                times.append(res.report.gpu_time_ms)
            norm = [t / times[0] for t in times]
            rows.append(
                [model.upper() if model != "sage" else "Sage", abbr,
                 *(f"{v:.1f}x" for v in norm)]
            )
            records.append(
                {
                    "model": model,
                    "dataset": abbr,
                    "feat_sizes": list(feat_sizes),
                    "normalized": norm,
                    "times_ms": times,
                }
            )
    return TableResult(
        exp_id="Figure 12",
        title="Scalability vs feature size: runtime normalized to size 16",
        headers=headers,
        rows=rows,
        records=records,
    )
