"""Perf-regression probes: the workloads behind ``repro regress``.

A *probe* is a small, deterministic workload whose metrics summarize one
axis of the reproduction's performance story:

* ``serving`` — TLPGNN serving gcn on CR through the full online pipeline
  (admission, micro-batching, streams) at a fixed load fraction of its
  offline service rate: latency percentiles, throughput, and the offline
  runtime itself.
* ``table5`` — the offline Table-5 core: each system's modeled runtime on
  the gcn/CR cell plus TLPGNN's speedup over the best baseline.
* ``autotune`` — the ``repro.opt`` tuner on the gcn/CR cell: modeled ms
  of the paper-fixed configuration, of the tuned winner, the
  tuned-vs-fixed speedup, and the measurement count (budget adherence).
  The tuned path is thereby part of the recorded perf trajectory.

The same probe code runs in three places, which is what makes the
trajectory comparable:

1. ``benchmarks/bench_serving.py`` / ``bench_table5_main.py`` call
   :func:`record_point` to append a trajectory point into the committed
   ``BENCH_serving.json`` / ``BENCH_table5.json`` trend stores;
2. CI's perf-smoke job records a point at its small scale and
3. ``repro regress`` recomputes the probe at HEAD and diffs against the
   latest point whose config fingerprint matches (scale, seed, spec),
   with the directional tolerances of :mod:`repro.obs.trend`.

Everything is modeled time on the simulated clock, so probe metrics are
bit-deterministic for a given config — the tolerances only absorb
cross-platform float drift, not run-to-run noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..frameworks import SYSTEMS
from ..obs.archive import config_fingerprint
from ..obs.trend import TrendDiff, TrendStore, git_rev
from ..serve import ServableModel, ServeConfig, serve_trace
from .harness import BenchConfig, get_dataset, make_features, run_system

__all__ = [
    "ProbeResult",
    "PROBES",
    "serving_probe",
    "table5_probe",
    "autotune_probe",
    "default_store_path",
    "record_point",
    "compare_point",
]

#: probe workload constants — part of the probe's identity; bump the
#: revision when they change so stale trajectory points stop comparing
_PROBE_REV = 1
_DATASET = "CR"
_MODEL = "gcn"
#: offered load as a fraction of the servable's offline service rate
_LOAD_FRACTION = 0.5
_NUM_REQUESTS = 96


@dataclass(frozen=True)
class ProbeResult:
    """One probe run: flat numeric metrics + the config fingerprint that
    scopes which trajectory points it may compare against."""

    name: str
    metrics: dict
    fingerprint: str
    meta: dict


def _fingerprint(config: BenchConfig, *, probe: str) -> str:
    ds = get_dataset(_DATASET, config)
    return config_fingerprint(
        dataset=_DATASET,
        seed=config.seed,
        feat_dim=config.feat_dim,
        max_edges=config.max_edges,
        spec=config.spec_for(ds),
        model=_MODEL,
        system=f"probe:{probe}:r{_PROBE_REV}",
    )


def serving_probe(config: BenchConfig) -> ProbeResult:
    """Serve TLPGNN/gcn/CR at half its offline service rate."""
    ds = get_dataset(_DATASET, config)
    spec = config.spec_for(ds)
    servable = ServableModel(
        SYSTEMS["TLPGNN"](), _MODEL, ds,
        feat_dim=config.feat_dim, spec=spec, seed=config.seed,
    )
    rate = _LOAD_FRACTION / servable.offline_runtime_s
    cfg = ServeConfig(
        rate_hz=rate,
        num_requests=_NUM_REQUESTS,
        max_batch=4,
        num_streams=2,
        max_concurrent=spec.max_concurrent_kernels,
        seed=config.seed,
    )
    report = serve_trace(servable, cfg)
    return ProbeResult(
        name="serving",
        metrics={
            "offline_runtime_ms": servable.offline_runtime_s * 1e3,
            "p50_ms": report.p50_ms,
            "p95_ms": report.p95_ms,
            "p99_ms": report.p99_ms,
            "mean_ms": report.mean_ms,
            "throughput_rps": report.throughput_rps,
            "completed": report.completed,
            "shed": report.shed,
        },
        fingerprint=_fingerprint(config, probe="serving"),
        meta={
            "system": "TLPGNN", "model": _MODEL, "dataset": _DATASET,
            "max_edges": config.max_edges, "num_requests": _NUM_REQUESTS,
            "load_fraction": _LOAD_FRACTION,
        },
    )


def table5_probe(config: BenchConfig) -> ProbeResult:
    """Each system's modeled runtime on the gcn/CR Table-5 cell."""
    ds = get_dataset(_DATASET, config)
    metrics: dict = {}
    for name in sorted(SYSTEMS):
        res = run_system(SYSTEMS[name](), _MODEL, ds, config)
        if res is not None:
            metrics[f"{name}_runtime_ms"] = res.runtime_ms
    tlpgnn = metrics.get("TLPGNN_runtime_ms")
    baselines = [
        v for k, v in metrics.items() if k != "TLPGNN_runtime_ms"
    ]
    if tlpgnn and baselines:
        metrics["speedup"] = min(baselines) / tlpgnn
    return ProbeResult(
        name="table5",
        metrics=metrics,
        fingerprint=_fingerprint(config, probe="table5"),
        meta={
            "model": _MODEL, "dataset": _DATASET,
            "max_edges": config.max_edges,
        },
    )


#: tuner budget of the autotune probe (also its iteration-bound assert)
_TUNE_BUDGET = 16


def autotune_probe(config: BenchConfig) -> ProbeResult:
    """Tune the TLPGNN gcn/CR cell and record the tuner's outcome."""
    from ..opt import AutoTuner, TunedPlanStore

    ds = get_dataset(_DATASET, config)
    spec = config.spec_for(ds)
    X = make_features(
        ds.graph.num_vertices, config.feat_dim, seed=config.seed
    )
    # a private store: the probe must not leak tuned decisions into the
    # process-wide store (regress runs alongside other probes)
    tuner = AutoTuner(
        budget=_TUNE_BUDGET, seed=config.seed, store=TunedPlanStore()
    )
    result = tuner.tune(SYSTEMS["TLPGNN"](), _MODEL, ds, X, spec)
    return ProbeResult(
        name="autotune",
        metrics={
            "fixed_ms": result.fixed_ms,
            "tuned_ms": result.tuned_ms,
            "speedup": result.speedup_vs_fixed,
            "iterations": float(result.iterations),
        },
        fingerprint=_fingerprint(config, probe="autotune"),
        meta={
            "system": "TLPGNN", "model": _MODEL, "dataset": _DATASET,
            "max_edges": config.max_edges, "budget": _TUNE_BUDGET,
            "best_knobs": result.best_knobs,
        },
    )


PROBES = {
    "serving": serving_probe,
    "table5": table5_probe,
    "autotune": autotune_probe,
}


def default_store_path(name: str, root: str | Path = ".") -> Path:
    """The committed trend-store file for one probe (``BENCH_<name>.json``)."""
    return Path(root) / f"BENCH_{name}.json"


def record_point(
    name: str,
    config: BenchConfig,
    *,
    store_path: str | Path | None = None,
    timestamp: float | None = None,
) -> dict:
    """Run a probe and append its trajectory point; returns the point."""
    result = PROBES[name](config)
    store = TrendStore(store_path or default_store_path(name))
    return store.record(
        result.metrics,
        fingerprint=result.fingerprint,
        rev=git_rev(store.path.parent),
        meta=result.meta,
        timestamp=timestamp,
    )


def compare_point(
    name: str,
    config: BenchConfig,
    *,
    store_path: str | Path | None = None,
) -> TrendDiff | None:
    """Run a probe at HEAD and diff against the recorded trajectory.

    None = the store has no point with a matching config fingerprint
    (nothing to compare — record one first).
    """
    result = PROBES[name](config)
    store = TrendStore(store_path or default_store_path(name))
    return store.compare(
        result.metrics,
        fingerprint=result.fingerprint,
        rev=git_rev(store.path.parent),
    )
