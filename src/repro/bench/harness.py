"""Experiment runner shared by all table/figure regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..frameworks import SYSTEMS, CapacityError, GNNSystem, UnsupportedModelError
from ..frameworks.base import SystemResult
from ..gpusim.config import V100, GPUSpec, scaled_spec
from ..graph.datasets import Dataset, load_dataset
from ..models import MODEL_NAMES
from ..obs.tracer import span

__all__ = [
    "BenchConfig",
    "make_features",
    "get_dataset",
    "run_system",
    "run_comparison",
]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs every experiment shares.

    ``max_edges`` bounds the synthetic stand-ins (see
    :func:`repro.graph.datasets.default_scale`); the paper's feature size for
    the main comparison is 32.
    """

    feat_dim: int = 32
    max_edges: int = 2_000_000
    seed: int = 7
    spec: GPUSpec = field(default_factory=lambda: V100)
    #: shrink the modeled device with the dataset's scale factor so ratios
    #: (and absolute modeled ms) stay comparable to full size
    scale_device: bool = True

    def spec_for(self, dataset: Dataset) -> GPUSpec:
        """The device spec to use for a (possibly scaled) dataset."""
        if self.scale_device and dataset.scale < 1.0:
            return scaled_spec(self.spec, dataset.scale)
        return self.spec


def _dataset_key(abbr: str, config: BenchConfig) -> tuple[str, int, int]:
    """Canonical, hashable cache key for one (dataset, config) load.

    Normalizes abbreviation aliases (" cs " == "CS") and coerces the
    numeric knobs through ``int()`` so numpy scalars / 0-d arrays — which
    either hash differently from equal Python ints or are unhashable —
    can neither miss the cache nor blow up ``lru_cache``.
    """
    return (
        str(abbr).strip().upper(),
        int(config.max_edges),
        int(config.seed),
    )


@lru_cache(maxsize=64)
def _cached_dataset(abbr: str, max_edges: int, seed: int) -> Dataset:
    return load_dataset(abbr, max_edges=max_edges, seed=seed)


#: content-level dedup: different (max_edges, seed) configs that happen to
#: produce byte-identical graphs share one Dataset object, so downstream
#: id()/fingerprint-keyed caches (plan cache included) see one canonical
#: instance per distinct graph.
_CANONICAL: dict[tuple[str, str], Dataset] = {}


def get_dataset(abbr: str, config: BenchConfig) -> Dataset:
    """Load (and memoize) a dataset under this config's scaling."""
    ds = _cached_dataset(*_dataset_key(abbr, config))
    key = (str(abbr).strip().upper(), ds.graph.fingerprint())
    return _CANONICAL.setdefault(key, ds)


def make_features(n: int, feat_dim: int, *, seed: int = 0) -> np.ndarray:
    """Random float32 features, as the paper initializes its inputs."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, feat_dim), dtype=np.float32)


def run_system(
    system: GNNSystem,
    model: str,
    dataset: Dataset,
    config: BenchConfig,
    *,
    X: np.ndarray | None = None,
    opt: str | None = None,
) -> SystemResult | None:
    """Run one (system, model, dataset) cell; None where the paper has a dash
    (unsupported model or capacity failure)."""
    if X is None:
        X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=config.seed)
    with span(
        "bench.run_system",
        system=system.name, model=model, dataset=dataset.spec.abbr,
    ) as sp:
        try:
            result = system.run(
                model, dataset, X, config.spec_for(dataset), opt=opt
            )
        except (UnsupportedModelError, CapacityError) as exc:
            if sp is not None:
                sp.set(dash=type(exc).__name__)
            return None
        if sp is not None:
            sp.add_modeled(result.report.timing.runtime_seconds)
        return result


def run_comparison(
    model: str,
    abbr: str,
    config: BenchConfig,
    *,
    systems: dict[str, type] | None = None,
) -> dict[str, SystemResult | None]:
    """Run all systems on one (model, dataset) cell."""
    systems = systems or SYSTEMS
    dataset = get_dataset(abbr, config)
    X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=config.seed)
    out: dict[str, SystemResult | None] = {}
    for name, factory in systems.items():
        out[name] = run_system(factory(), model, dataset, config, X=X)
    return out


def all_models() -> tuple[str, ...]:
    return MODEL_NAMES
