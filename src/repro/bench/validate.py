"""Programmatic validation of the paper's headline shape claims.

Runs the reduced-scale versions of every qualitative claim the reproduction
targets and reports pass/fail per claim — the library-level counterpart of
``tests/test_paper_claims.py``, usable from the CLI (``python -m repro
validate``) and from CI pipelines without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..frameworks import DGLSystem, FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine
from ..kernels import (
    EdgeCentricKernel,
    EdgeParallelWarpKernel,
    NeighborGroupKernel,
    PullCTAKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
)
from ..models import build_conv
from .harness import BenchConfig, get_dataset, make_features, run_system

__all__ = ["ClaimResult", "validate_claims", "CLAIMS"]


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    detail: str


def _kernel_time(kernel, workload, spec) -> float:
    return kernel.execute(workload, spec).timing.gpu_seconds


def _obs1(config: BenchConfig) -> tuple[bool, str]:
    cfg = BenchConfig(feat_dim=128, max_edges=config.max_edges, seed=config.seed)
    ds = get_dataset("OH", cfg)
    X = make_features(ds.graph.num_vertices, 128, seed=cfg.seed)
    wl = build_conv("gcn", ds.graph, X)
    spec = cfg.spec_for(ds)
    pull = _kernel_time(TLPGNNKernel(assignment="hardware"), wl, spec)
    atomics = {
        "push": _kernel_time(PushKernel(), wl, spec),
        "edge": _kernel_time(EdgeCentricKernel(), wl, spec),
        "gnnadvisor": _kernel_time(NeighborGroupKernel(), wl, spec),
    }
    worst = max(atomics.values())
    ok = pull < min(atomics.values())
    return ok, f"pull {pull * 1e3:.2f} ms vs atomic kernels up to {worst * 1e3:.2f} ms"


def _obs2(config: BenchConfig) -> tuple[bool, str]:
    cfg = BenchConfig(feat_dim=128, max_edges=config.max_edges, seed=config.seed)
    ds = get_dataset("OH", cfg)
    X = make_features(ds.graph.num_vertices, 128, seed=cfg.seed)
    wl = build_conv("gcn", ds.graph, X)
    spec = cfg.spec_for(ds)
    thread = PullThreadKernel().execute(wl, spec)
    warp = TLPGNNKernel(group_size=16, assignment="hardware").execute(wl, spec)
    ratio = thread.timing.gpu_seconds / warp.timing.gpu_seconds
    spr_ratio = (
        thread.stats.sectors_per_request / warp.stats.sectors_per_request
    )
    ok = ratio > 2.0 and spr_ratio > 3.0
    return ok, f"half-warp {ratio:.1f}x faster, sector/request gap {spr_ratio:.1f}x"


def _obs3(config: BenchConfig) -> tuple[bool, str]:
    from .tables import table3

    recs = {r["config"]: r for r in table3(config).records}
    ok = (
        recs["One-Kernel"]["runtime"]
        < recs["Three-Kernel"]["runtime"]
        < recs["DGL"]["runtime"]
    )
    return ok, (
        f"GAT runtime: 1-kernel {recs['One-Kernel']['runtime']:.2f} ms < "
        f"3-kernel {recs['Three-Kernel']['runtime']:.2f} ms < "
        f"DGL {recs['DGL']['runtime']:.2f} ms"
    )


def _main_comparison(config: BenchConfig) -> tuple[bool, str]:
    wins, cells = 0, 0
    for model in ("gcn", "gat"):
        for abbr in ("CR", "PI", "RD"):
            ds = get_dataset(abbr, config)
            X = make_features(ds.graph.num_vertices, config.feat_dim,
                              seed=config.seed)
            ours = run_system(TLPGNNEngine(), model, ds, config, X=X)
            assert ours is not None
            cells += 1
            beats_all = all(
                (res := run_system(factory(), model, ds, config, X=X)) is None
                or ours.runtime_ms < res.runtime_ms
                for factory in (DGLSystem, GNNAdvisorSystem, FeatGraphSystem)
            )
            wins += beats_all
    return wins == cells, f"TLPGNN fastest on {wins}/{cells} sampled cells"


def _level1(config: BenchConfig) -> tuple[bool, str]:
    ds = get_dataset("OH", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    wl = build_conv("gcn", ds.graph, X)
    spec = config.spec_for(ds)
    warp = _kernel_time(TLPGNNKernel(assignment="hardware"), wl, spec)
    thread = _kernel_time(PullThreadKernel(), wl, spec)
    cta = _kernel_time(PullCTAKernel(), wl, spec)
    ok = warp < thread and warp < cta
    return ok, (
        f"warp {warp * 1e3:.2f} ms < CTA {cta * 1e3:.2f} ms, "
        f"thread {thread * 1e3:.2f} ms"
    )


def _level2(config: BenchConfig) -> tuple[bool, str]:
    ds = get_dataset("PI", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    wl = build_conv("gcn", ds.graph, X)
    spec = config.spec_for(ds)
    feat = _kernel_time(TLPGNNKernel(assignment="hardware"), wl, spec)
    edge = _kernel_time(EdgeParallelWarpKernel(), wl, spec)
    return feat < edge, (
        f"feature parallelism {edge / feat:.2f}x faster than edge parallelism"
    )


def _dashes(config: BenchConfig) -> tuple[bool, str]:
    ds = get_dataset("RD", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    big = run_system(GNNAdvisorSystem(), "gcn", ds, config, X=X)
    small_ds = get_dataset("CR", config)
    Xs = make_features(small_ds.graph.num_vertices, config.feat_dim,
                       seed=config.seed)
    gat = run_system(GNNAdvisorSystem(), "gat", small_ds, config, X=Xs)
    ok = big is None and gat is None
    return ok, "GNNAdvisor dashes on large graphs and on GAT, as in Table 5"


CLAIMS: dict[str, tuple[str, Callable]] = {
    "obs1-atomics": (
        "Observation I: atomic-free pull beats push/edge/GNNAdvisor", _obs1,
    ),
    "obs2-coalescing": (
        "Observation II: warp mapping crushes thread-per-vertex", _obs2,
    ),
    "obs3-fusion": (
        "Observation III: one kernel < three kernels < DGL's 18", _obs3,
    ),
    "table5-wins": (
        "Table 5: TLPGNN beats every baseline on sampled cells",
        _main_comparison,
    ),
    "level1-warp-mapping": (
        "§4.2: warp-per-vertex beats thread- and CTA-per-vertex", _level1,
    ),
    "level2-feature-parallel": (
        "§4.3: feature parallelism beats edge parallelism", _level2,
    ),
    "table5-dashes": (
        "Table 5 dashes: GNNAdvisor capacity/model limits reproduce", _dashes,
    ),
}


def validate_claims(
    config: BenchConfig | None = None,
    *,
    only: list[str] | None = None,
) -> list[ClaimResult]:
    """Run all (or selected) claims; never raises on claim failure."""
    config = config or BenchConfig(max_edges=150_000)
    out = []
    for cid, (desc, fn) in CLAIMS.items():
        if only and cid not in only:
            continue
        try:
            passed, detail = fn(config)
        except Exception as exc:  # report, don't crash the sweep
            passed, detail = False, f"error: {exc!r}"
        out.append(ClaimResult(cid, desc, passed, detail))
    return out
