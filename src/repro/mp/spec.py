"""The message-passing UDF algebra: what a user writes to define a conv.

A graph convolution is a *send* over edges plus a *recv* per destination
(the PGL/DGL send/recv paradigm, PAPERS.md).  Instead of free-form
callables, the send is a **closed algebra of terms** — a feature gather
from one edge endpoint, optionally scaled by a per-edge scalar, a
vertex-factorized norm, or an attention logit — and the recv is a
reduction (``sum | mean | max``) with an optional edge-softmax
normalization and an optional self-term.  Because the algebra is closed,
everything downstream is *derived*, not declared:

* the numeric semantics (:meth:`MPModel.workload` compiles to the shared
  :class:`~repro.models.convspec.ConvWorkload` every kernel consumes),
* each framework's lowering stages (:mod:`repro.mp.lower`),
* kernel effect tables and per-lane access patterns
  (:mod:`repro.mp.derive`), which feed the lint and optimizer layers.

The closed-world validation happens in ``__post_init__``: every term
combination that reaches a framework is one the derivation rules cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..models import functional as F
from ..models.convspec import AttentionSpec, ConvWorkload

__all__ = [
    "AttentionLogit",
    "EdgeScalar",
    "MessageSpec",
    "MPModel",
    "ReduceSpec",
    "SelfTerm",
    "SymNorm",
    "bind",
]

_FEATURES = ("src", "dst")
_REDUCES = ("sum", "mean", "max")
_SELF_KINDS = ("scaled", "eps", "concat")


# ----------------------------------------------------------------------
# send-side scale terms (the closed algebra)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SymNorm:
    """Vertex-factorized symmetric norm: ``w(u,v) = c[u] * c[v]`` with
    ``c = 1/sqrt(d+1)`` (GCN's renormalized adjacency).  Factorized form
    matters to lowering: multi-kernel baselines may pre/post-scale the
    dense features instead of materializing per-edge weights."""

    def signature(self) -> str:
        return "sym_norm"


@dataclass(frozen=True, eq=False)
class EdgeScalar:
    """A raw per-edge scalar ``w[e]`` in CSR edge order (edge weights,
    learned gates, distances — any data the user attaches to edges).
    ``values=None`` binds to all-ones (an explicit unweighted send)."""

    values: np.ndarray | None = None
    name: str = "weight"

    def signature(self) -> str:
        return f"edge_scalar[{self.name}]"


@dataclass(frozen=True, eq=False)
class AttentionLogit:
    """GAT's attention term: ``logit(u,v) = LeakyReLU(asrc[v] + adst[u])``
    from per-vertex scalars ``asrc = X @ a_src``, ``adst = X @ a_dst``.

    This term is the single source of truth for the softmax structure:
    the reduce side must pair it with ``normalize="softmax"``, and both
    the fused kernel's extra passes and the unfused three-stage pipeline
    (apply-edge -> edge-softmax -> aggregate) are derived from it
    (:func:`repro.mp.lower.softmax_stages`).

    ``a_src``/``a_dst`` are the (F,) attention vectors; ``None`` draws
    Xavier-initialized vectors from the binding rng (the builtin GAT).
    """

    a_src: np.ndarray | None = None
    a_dst: np.ndarray | None = None
    negative_slope: float = 0.2

    def signature(self) -> str:
        return f"attention[slope={self.negative_slope}]"

    def bind(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> AttentionSpec:
        """Resolve to the numeric per-vertex scalars of one (X, rng)."""
        a_src, a_dst = self.a_src, self.a_dst
        if a_src is None or a_dst is None:
            f = X.shape[1]
            drawn_src = F.xavier_uniform((f, 1), rng)[:, 0]
            drawn_dst = F.xavier_uniform((f, 1), rng)[:, 0]
            a_src = drawn_src if a_src is None else a_src
            a_dst = drawn_dst if a_dst is None else a_dst
        return AttentionSpec(
            att_src=(X @ a_src).astype(np.float32),
            att_dst=(X @ a_dst).astype(np.float32),
            negative_slope=self.negative_slope,
        )


_SCALE_TERMS = (SymNorm, EdgeScalar, AttentionLogit)


# ----------------------------------------------------------------------
# the send / recv halves
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class MessageSpec:
    """The edge ``send``: which endpoint's feature row the message
    carries and the (optional) scalar term multiplying it."""

    feature: str = "src"
    scale: SymNorm | EdgeScalar | AttentionLogit | None = None

    def __post_init__(self) -> None:
        if self.feature not in _FEATURES:
            raise ValueError(f"feature must be one of {_FEATURES}")
        if self.scale is not None and not isinstance(self.scale, _SCALE_TERMS):
            raise ValueError(
                f"scale must be one of {[t.__name__ for t in _SCALE_TERMS]} "
                f"or None, got {type(self.scale).__name__}"
            )

    def signature(self) -> str:
        s = "1" if self.scale is None else self.scale.signature()
        return f"{s} * feat[{self.feature}]"


@dataclass(frozen=True)
class SelfTerm:
    """The destination's own contribution added after the reduce.

    * ``"scaled"`` — ``c[u] * X[u]`` with ``c = 1/(d+1)`` (GCN's
      renormalization self-loop),
    * ``"eps"`` — ``(1 + eps) * X[u]`` (GIN),
    * ``"concat"`` — the self feature is kept separate and combined in
      the dense phase (GraphSAGE); the conv itself adds nothing, but
      multi-kernel lowerings pay a concat-materialization epilogue.
    """

    kind: str = "scaled"
    eps: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _SELF_KINDS:
            raise ValueError(f"kind must be one of {_SELF_KINDS}")

    def signature(self) -> str:
        if self.kind == "eps":
            return f"self[(1+{self.eps}) * x]"
        if self.kind == "concat":
            return "self[concat]"
        return "self[1/(d+1) * x]"

    def coeff(self, graph: CSRGraph) -> np.ndarray | None:
        """The numeric per-vertex coefficient (None for dense-phase concat)."""
        if self.kind == "concat":
            return None
        if self.kind == "eps":
            return np.full(
                graph.num_vertices, 1.0 + self.eps, dtype=np.float32
            )
        deg = graph.in_degrees.astype(np.float64) + 1.0
        return (1.0 / deg).astype(np.float32)


@dataclass(frozen=True)
class ReduceSpec:
    """The per-destination ``recv``: reduction op, optional edge-softmax
    normalization of the scalar term, optional self-term."""

    op: str = "sum"
    normalize: str | None = None  # None | "softmax"
    self_term: SelfTerm | None = None

    def __post_init__(self) -> None:
        if self.op not in _REDUCES:
            raise ValueError(f"op must be one of {_REDUCES}")
        if self.normalize not in (None, "softmax"):
            raise ValueError("normalize must be None or 'softmax'")
        if self.normalize == "softmax" and self.op != "sum":
            raise ValueError("softmax normalization requires the sum reduce")

    def signature(self) -> str:
        parts = [self.op]
        if self.normalize:
            parts.append(self.normalize)
        if self.self_term is not None:
            parts.append(self.self_term.signature())
        return " + ".join(parts)


# ----------------------------------------------------------------------
# the bound model: spec structure + one (graph, X) instance
# ----------------------------------------------------------------------
@dataclass(eq=False)
class MPModel:
    """One message-passing UDF bound to a concrete ``(graph, X)`` cell.

    ``workload()`` compiles the terms to the numeric
    :class:`~repro.models.convspec.ConvWorkload` — the carrier every
    kernel, reference aggregate, and golden fixture already consumes, so
    the UDF layer changes *how models are described*, never what they
    compute.
    """

    name: str
    message: MessageSpec
    reduce: ReduceSpec
    graph: CSRGraph
    X: np.ndarray
    _workload: ConvWorkload | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        validate(self.message, self.reduce)

    @property
    def has_softmax(self) -> bool:
        return self.reduce.normalize == "softmax"

    def signature(self) -> str:
        """Deterministic one-line structure key (no numeric payloads)."""
        return (
            f"{self.name}: recv[{self.reduce.signature()}] of "
            f"send[{self.message.signature()}]"
        )

    def workload(self) -> ConvWorkload:
        if self._workload is None:
            self._workload = _compile(self)
        return self._workload


def validate(message: MessageSpec, reduce: ReduceSpec) -> None:
    """The closed-world rules: every combination that passes has a
    derivation (lowering stages + effect/access tables) in this repo."""
    attention = isinstance(message.scale, AttentionLogit)
    if attention and reduce.normalize != "softmax":
        raise ValueError(
            "an AttentionLogit scale requires normalize='softmax' "
            "(unnormalized logits have no closed lowering)"
        )
    if reduce.normalize == "softmax" and not attention:
        raise ValueError(
            "normalize='softmax' requires an AttentionLogit scale term"
        )
    if message.feature == "dst" and (
        attention or reduce.self_term is not None or reduce.op == "max"
    ):
        raise ValueError(
            "feature='dst' sends compose only with sum/mean reduces and "
            "no self-term (the destination row is the self feature)"
        )


def bind(
    name: str,
    message: MessageSpec,
    reduce: ReduceSpec,
    graph: CSRGraph,
    X: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
) -> MPModel:
    """Bind a spec to one cell (numeric terms resolved via ``rng``)."""
    rng = rng or np.random.default_rng(0)
    X = np.ascontiguousarray(X, dtype=np.float32)
    model = MPModel(name=name, message=message, reduce=reduce, graph=graph, X=X)
    model._workload = _compile(model, rng=rng)
    return model


def _compile(
    model: MPModel, *, rng: np.random.Generator | None = None
) -> ConvWorkload:
    """Term semantics -> the kernel-agnostic numeric workload."""
    graph, X = model.graph, np.ascontiguousarray(model.X, dtype=np.float32)
    scale = model.message.scale
    edge_weights = None
    attention = None
    if isinstance(scale, SymNorm):
        from ..models.gcn import gcn_norm

        edge_weights, _self = gcn_norm(graph)
    elif isinstance(scale, EdgeScalar):
        edge_weights = (
            np.ones(graph.num_edges, dtype=np.float32)
            if scale.values is None
            else np.ascontiguousarray(scale.values, dtype=np.float32)
        )
    elif isinstance(scale, AttentionLogit):
        attention = scale.bind(X, rng or np.random.default_rng(0))
    st = model.reduce.self_term
    self_coeff = st.coeff(graph) if st is not None else None
    if model.message.feature == "dst":
        # The destination row is warp-resident under vertex ownership, so
        # a dst send folds into the self slot: reduce_v w(u,v)*X[u] equals
        # (segment-reduced w) * X[u].  The edge walk (and its scalar
        # traffic) still happens — edge_weights stays materialized.
        w = (
            edge_weights
            if edge_weights is not None
            else np.ones(graph.num_edges, dtype=np.float32)
        )
        folded = np.add.reduceat(
            np.append(w.astype(np.float64), 0.0),
            np.minimum(graph.indptr[:-1], graph.num_edges),
        )
        folded = np.where(graph.in_degrees > 0, folded, 0.0)
        if model.reduce.op == "mean":
            folded = folded / np.maximum(
                graph.in_degrees.astype(np.float64), 1.0
            )
        self_coeff = folded.astype(np.float32)
        edge_weights = np.zeros(graph.num_edges, dtype=np.float32)
    return ConvWorkload(
        graph=graph,
        X=X,
        edge_weights=edge_weights,
        self_coeff=self_coeff,
        reduce=model.reduce.op,
        attention=attention,
    )
