"""Generic lowering rules: UDF terms -> framework pipeline stages.

Each framework used to hard-code one ``_lower`` branch per model name.
This module replaces those branches with rules over the spec structure:

* :func:`dgl_stage_plan` — the DGL baseline's fine-grained kernel
  pipeline, derived stage by stage from the scale / reduce / self terms
  (the paper's 6 / 8 / 10 / 18 launch counts fall out of the rules),
* :func:`softmax_stages` — the unfused attention staging (apply-edge ->
  edge-softmax -> aggregate) shared by FeatGraph's TVM pipeline and the
  TLPGNN ``fusion=False`` ablation; the dataflow (read/write buffers) of
  each stage is defined here, once, next to the normalization term that
  implies it,
* :func:`model_features` — the feature predicate frameworks use for
  ``supports()``: a system accepts or declines a model by its *terms*
  (softmax, reduce op, send side), not by its name.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builtins import is_registered, resolve
from .spec import EdgeScalar, MPModel, SymNorm

__all__ = [
    "GlueStage",
    "ModelFeatures",
    "SoftmaxStage",
    "SpmmStage",
    "dgl_stage_plan",
    "model_features",
    "softmax_stages",
]


# ----------------------------------------------------------------------
# feature predicates (what supports() consults)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelFeatures:
    """The lowering-relevant structure of a registered model."""

    name: str
    feature: str  # which endpoint the send gathers
    scale: str  # "none" | "sym_norm" | "edge_scalar" | "attention"
    op: str  # sum | mean | max
    softmax: bool
    self_kind: str | None  # None | "scaled" | "eps" | "concat"


def model_features(name: str) -> ModelFeatures | None:
    """Structure of ``name``'s spec, or None if it is not registered."""
    if not is_registered(name):
        return None
    message, reduce_ = resolve(name)
    scale = message.scale
    if scale is None:
        kind = "none"
    elif isinstance(scale, SymNorm):
        kind = "sym_norm"
    elif isinstance(scale, EdgeScalar):
        kind = "edge_scalar"
    else:
        kind = "attention"
    st = reduce_.self_term
    return ModelFeatures(
        name=name.lower(),
        feature=message.feature,
        scale=kind,
        op=reduce_.op,
        softmax=reduce_.normalize == "softmax",
        self_kind=st.kind if st is not None else None,
    )


# ----------------------------------------------------------------------
# the unfused softmax staging (dataflow of the normalization term)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoftmaxStage:
    """One launch of the unfused softmax pipeline: its effect dataflow."""

    key: str  # "apply_edge" | "softmax" | "aggregate"
    reads: tuple[str, ...]
    write: str


def softmax_stages(
    *, logits: str = "tmp:logits", alpha: str = "tmp:alpha"
) -> tuple[SoftmaxStage, SoftmaxStage, SoftmaxStage]:
    """The three-stage expansion of ``normalize='softmax'``.

    ApplyEdge materializes per-edge logits from the gathered attention
    scalars; the softmax normalizes them per destination segment into
    ``alpha``; the aggregate consumes the alphas as edge values.  The
    matching access tables come from
    :func:`repro.mp.derive.softmax_stage_access`.
    """
    return (
        SoftmaxStage("apply_edge", ("indices", "att"), logits),
        SoftmaxStage("softmax", (logits, "indptr"), alpha),
        SoftmaxStage("aggregate", (alpha, "indptr", "indices", "feat"), "out"),
    )


# ----------------------------------------------------------------------
# the DGL baseline's stage plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlueStage:
    """One fine-grained glue launch (elementwise / gather / segment).

    ``items`` is symbolic (``"n"`` vertices, ``"e"`` edges, ``"nf"``
    feature elements); ``reads`` may be the symbol ``"F"`` (one read per
    feature dim) and ``writes`` the symbol ``"seg"`` (one write per
    destination segment, ``n/max(E,1)``).  ``gb`` marks the reads
    fetched through per-edge vertex ids (the gather-random subset).
    """

    name: str
    items: str
    reads: float | str = 2.0
    writes: float | str = 1.0
    rb: tuple[str, ...] = ()
    wb: str = "tmp:x"
    gb: tuple[str, ...] = ()
    gather: bool = False  # per-edge gather of a per-vertex scalar array


@dataclass(frozen=True)
class SpmmStage:
    """The aggregation launch: cuSPARSE row-parallel CSR SpMM, or the
    COO scatter path with atomicAdd for materialized per-edge weights."""

    weighted: bool
    coo_atomic: bool = False
    rb: tuple[str, ...] = ()
    wb: str = "tmp:agg"


def _softmax_prologue() -> list[GlueStage]:
    """The 15-launch expansion DGL pays to materialize edge softmax:
    two projections, per-edge logit assembly (with three gather-random
    steps), the numerically-stable max/exp/sum/div chain, and the
    CSR->COO conversion the scatter SpMM needs."""
    return [
        GlueStage("att_src_proj", "n", "F", 1, rb=("feat",), wb="tmp:asrc"),
        GlueStage("att_dst_proj", "n", "F", 1, rb=("feat",), wb="tmp:adst"),
        GlueStage("gather_u", "e", 1, 1, rb=("tmp:asrc", "indices"),
                  wb="tmp:eu", gb=("tmp:asrc",), gather=True),
        GlueStage("gather_v", "e", 1, 1, rb=("tmp:adst", "indices"),
                  wb="tmp:ev", gb=("tmp:adst",), gather=True),
        GlueStage("edge_add", "e", 2, 1, rb=("tmp:eu", "tmp:ev"),
                  wb="tmp:elog"),
        GlueStage("leaky_relu", "e", 1, 1, rb=("tmp:elog",), wb="tmp:elr"),
        GlueStage("copy_e", "e", 1, 1, rb=("tmp:elr",), wb="tmp:ecp"),
        GlueStage("segment_max", "e", 1, "seg", rb=("tmp:ecp", "indptr"),
                  wb="tmp:vmax"),
        GlueStage("gather_max", "e", 1, 1, rb=("tmp:vmax", "indices"),
                  wb="tmp:emax", gb=("tmp:vmax",), gather=True),
        GlueStage("sub", "e", 2, 1, rb=("tmp:elr", "tmp:emax"),
                  wb="tmp:esub"),
        GlueStage("exp", "e", 1, 1, rb=("tmp:esub",), wb="tmp:eexp"),
        GlueStage("segment_sum", "e", 1, "seg", rb=("tmp:eexp", "indptr"),
                  wb="tmp:vsum"),
        GlueStage("gather_sum", "e", 1, 1, rb=("tmp:vsum", "indices"),
                  wb="tmp:esum", gb=("tmp:vsum",), gather=True),
        GlueStage("div", "e", 2, 1, rb=("tmp:eexp", "tmp:esum"),
                  wb="tmp:alpha"),
        GlueStage("coo2csr", "e", 2, 2, rb=("indptr", "indices"),
                  wb="tmp:coo"),
    ]


def dgl_stage_plan(model: MPModel) -> list[GlueStage | SpmmStage]:
    """Derive the DGL pipeline for one bound model, term by term.

    The rules (each keyed to a spec feature, not a model name):

    * softmax normalization -> the 15-launch prologue + COO scatter SpMM
      (the reason DGL's GAT is its slowest model on large graphs),
    * otherwise: degree computation whenever a term needs degrees
      (vertex norm, mean reduce, or any self-term), a pre-scale
      (``u_mul_norm``) for the vertex-factorized norm or a message copy
      (``copy_u``), the CSR sanity check, and the row-parallel SpMM
      (weighted when a per-edge scalar is materialized),
    * mean reduce -> the count / clamp / divide epilogue,
    * vertex norm -> the ``v_mul_norm`` post-scale,
    * self-terms -> their materialization epilogues (GCN's in-place
      ``add_self``; GIN's scale + add + fresh-output fill/cast; SAGE's
      concat staging; attention's head reshape + cast).
    """
    scale = model.message.scale
    red = model.reduce
    stages: list[GlueStage | SpmmStage] = []

    if model.has_softmax:
        stages += _softmax_prologue()
        stages.append(
            SpmmStage(weighted=True, coo_atomic=True,
                      rb=("tmp:coo", "tmp:alpha", "feat"), wb="tmp:aggw")
        )
        agg = "tmp:aggw"
    else:
        vertex_norm = isinstance(scale, SymNorm)
        edge_scalar = isinstance(scale, EdgeScalar)
        needs_deg = (
            vertex_norm or red.op == "mean" or red.self_term is not None
        )
        if needs_deg:
            stages.append(
                GlueStage("degs", "n", 2, 1, rb=("indptr",), wb="tmp:deg")
            )
        if vertex_norm:
            msg = "tmp:xn"
            stages.append(
                GlueStage("u_mul_norm", "nf", 2, 1,
                          rb=("feat", "tmp:deg"), wb=msg)
            )
        else:
            msg = "tmp:xc"
            stages.append(
                GlueStage("copy_u", "nf", 1, 1, rb=("feat",), wb=msg)
            )
        stages.append(
            GlueStage("csr_check", "e", 1, 1,
                      rb=("indptr", "indices"), wb="tmp:csr_ok")
        )
        rb = ("indptr", "indices", msg)
        if edge_scalar:
            rb = (*rb, "edge_vals")
        stages.append(
            SpmmStage(weighted=edge_scalar, rb=rb, wb="tmp:agg")
        )
        agg = "tmp:agg"

    if red.op == "mean":
        stages += [
            GlueStage("count", "n", 1, 1, rb=("indptr",), wb="tmp:cnt"),
            GlueStage("clamp", "n", 1, 1, rb=("tmp:cnt",), wb="tmp:cntc"),
            GlueStage("div_deg", "nf", 2, 1,
                      rb=(agg, "tmp:cntc"), wb="tmp:mean"),
        ]
        agg = "tmp:mean"
    if isinstance(scale, SymNorm):
        stages.append(
            GlueStage("v_mul_norm", "nf", 2, 1,
                      rb=(agg, "tmp:deg"), wb="tmp:aggn")
        )
        agg = "tmp:aggn"

    st = red.self_term
    if st is not None and st.kind == "scaled":
        stages.append(
            GlueStage("add_self", "nf", 2, 1, rb=(agg, "feat"), wb="out")
        )
    elif st is not None and st.kind == "eps":
        stages += [
            GlueStage("eps_scale", "nf", 1, 1, rb=("feat",), wb="tmp:eps"),
            GlueStage("add_self", "nf", 2, 1,
                      rb=(agg, "tmp:eps"), wb="tmp:sum"),
            GlueStage("fill", "nf", 0.5, 1, rb=(), wb="tmp:fill"),
            GlueStage("cast", "nf", 1, 1, rb=("tmp:sum",), wb="out"),
        ]
    elif st is not None and st.kind == "concat":
        stages += [
            GlueStage("fill", "nf", 0.5, 1, rb=(), wb="tmp:fill"),
            GlueStage("concat_prep", "nf", 1, 1,
                      rb=(agg, "feat"), wb="tmp:cat"),
            GlueStage("cast", "nf", 1, 1, rb=("tmp:cat",), wb="out"),
        ]
    elif model.has_softmax:
        stages += [
            GlueStage("reshape_out", "nf", 1, 1, rb=(agg,), wb="tmp:resh"),
            GlueStage("cast_out", "nf", 1, 1, rb=("tmp:resh",), wb="out"),
        ]
    else:
        # no combining term: one materialization launch lands the output
        stages.append(
            GlueStage("cast", "nf", 1, 1, rb=(agg,), wb="out")
        )
    return stages
