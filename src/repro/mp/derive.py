"""Derive kernel effect tables and access patterns from UDF structure.

Before this layer, every :class:`~repro.kernels.base.ConvKernel` wrote
its :func:`~repro.lint.effects.effect_table` and
:class:`~repro.lint.access.KernelAccess` by hand — a full stack of
declarations per kernel, repeated for every workload shape.  Because the
message-passing algebra is closed, both tables are a *function* of two
things only:

* the **workload structure** (which scale term the spec uses decides the
  extra read buffer — ``att`` for an attention logit, ``edge_vals`` for a
  materialized per-edge scalar, nothing for an unscaled send — and the
  reduce/self terms decide nothing: they ride the registers), and
* the **kernel mapping** (:class:`KernelMapping`): which scheduled unit
  owns what (vertex-warp, vertex-thread, vertex-CTA, source-push,
  edge-chunk, neighbor-group, edge-tile), how lanes are used, and where
  the accumulator lives.

``derive_effects`` / ``derive_access`` encode the generic rules once; a
kernel only states its mapping.  The one-time equivalence suite
(tests/mp/test_table_equivalence.py) pins the derived tables to the
previously hand-declared ones, term for term.

The unfused softmax staging (``softmax_stage_access``) lives here too:
it is the access-side derivation of the UDF normalization term, shared
by every framework that materializes attention in three launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..lint.access import (
    AccessPattern,
    Affine,
    KernelAccess,
    broadcast,
    conv_access,
    gather,
    lane_stream,
    scatter,
)
from ..lint.effects import (
    KernelEffects,
    LaunchEnvelope,
    conv_read_buffers,
    effect_table,
)

__all__ = [
    "KernelMapping",
    "derive_access",
    "derive_effects",
    "softmax_stage_access",
]

_UNITS = (
    "vertex_warp",     # TLPGNN: one lane group per vertex, dims on lanes
    "vertex_thread",   # pull-thread: one thread per vertex (Figure 3a)
    "vertex_cta",      # pull-CTA: one block per vertex, smem tree reduce
    "source_push",     # push: warp per source row, atomic scatter to dsts
    "edge_chunk",      # edge-centric: COO chunk per warp, atomic scatter
    "neighbor_group",  # GNNAdvisor: warp per neighbour group, atomic merge
    "edge_tile",       # edge-parallel warp: lanes sweep edge tiles
)


@dataclass(frozen=True)
class KernelMapping:
    """How a conv kernel schedules the convolution — the level-1/level-2
    choices of the paper's design space, as data.

    Everything the effect/access derivation needs is here: the unit type
    fixes the access shapes and the merge discipline (exclusive writes
    for owner-computes units, atomic merges for scatter/partial units),
    ``lanes`` is the level-2 group width, ``register_cache`` decides
    whether the accumulator re-reads global memory, and the launch
    fields bound the resource envelope.
    """

    unit: str
    lanes: int = 32
    register_cache: bool = True
    warps_per_block: int = 4
    shared_mem_per_block: int = 0
    group_size: int = 8  # neighbor_group only: neighbours per group
    reads_group_table: bool = False

    def __post_init__(self) -> None:
        if self.unit not in _UNITS:
            raise ValueError(f"unit must be one of {_UNITS}")

    @property
    def uses_indptr(self) -> bool:
        return self.unit != "edge_chunk"

    @property
    def atomic(self) -> bool:
        """Whether distinct units may collide on output rows."""
        return self.unit in ("source_push", "edge_chunk", "neighbor_group")

    def atomic_ops(self, workload: Any) -> int:
        """Element-level RMW count of the mapping (0 for owner-computes)."""
        g = workload.graph
        if self.unit in ("source_push", "edge_chunk"):
            return g.num_edges * workload.feat_dim
        if self.unit == "neighbor_group":
            d = g.in_degrees.astype(np.int64)
            n_groups = int(
                np.sum(d // self.group_size + (d % self.group_size > 0))
            )
            return n_groups * workload.feat_dim
        return 0


# ----------------------------------------------------------------------
# effects
# ----------------------------------------------------------------------
def derive_effects(
    mapping: KernelMapping,
    workload: Any,
    *,
    envelope: LaunchEnvelope | None = None,
) -> KernelEffects:
    """The effect table of ``mapping`` applied to ``workload``.

    Reads follow from the UDF terms (:func:`conv_read_buffers` — the
    scale term selects ``att`` / ``edge_vals``); the write-vs-atomic
    split and the RMW count follow from the mapping's ownership rule.
    """
    reads = conv_read_buffers(workload, indptr=mapping.uses_indptr)
    if mapping.reads_group_table:
        reads = ("group_table", *reads)
    launch = envelope or LaunchEnvelope(
        threads_per_block=mapping.warps_per_block * 32,
        shared_mem_per_block=mapping.shared_mem_per_block,
    )
    if mapping.unit == "source_push":
        # exclusive init of the own row (self term) + atomic row merges
        return effect_table(
            reads=reads,
            writes=("out",),
            atomics=("out",),
            atomic_ops=mapping.atomic_ops(workload),
            launch=launch,
        )
    if mapping.atomic:
        return effect_table(
            reads=reads,
            atomics=("out",),
            atomic_ops=mapping.atomic_ops(workload),
            launch=launch,
        )
    return effect_table(reads=reads, writes=("out",), launch=launch)


# ----------------------------------------------------------------------
# access patterns
# ----------------------------------------------------------------------
def _scalar_pattern(
    mapping: KernelMapping, workload: Any
) -> AccessPattern | None:
    """How the mapping fetches the per-edge scalar the scale term implies."""
    if workload.attention is not None:
        # per-vertex attention scalars gathered warp-uniformly by source id
        return broadcast(
            "att", row="indirect", via="indices", trips=("degree",)
        )
    if workload.edge_weights is None:
        return None
    if mapping.unit == "edge_chunk":
        return broadcast("edge_vals", trips=("chunk",))
    if mapping.unit == "vertex_thread":
        return gather(
            "edge_vals", row="flat", via=None, trips=("degree",), per="lane"
        )
    if mapping.unit == "edge_tile":
        return AccessPattern(
            "edge_vals", row="flat", col=Affine(lane=1),
            trips=("degree", "edge_tiles"),
        )
    return broadcast("edge_vals", trips=("degree",))


def derive_access(mapping: KernelMapping, workload: Any) -> KernelAccess:
    """The per-lane access table of ``mapping`` applied to ``workload``.

    Per unit type this reproduces the paper's Figure 5/7 shapes: owner-
    computes units broadcast their CSR bounds and stream features on the
    lanes; thread-per-vertex gathers lane by lane (ACC002/DIV001); push,
    COO and group mappings scatter or merge atomically (ACC004).
    """
    L = mapping.lanes
    u = mapping.unit
    scalar = _scalar_pattern(mapping, workload)
    extra_shapes = None

    if u in ("vertex_warp", "vertex_cta"):
        pats = [
            broadcast("indptr"),
            broadcast("indices", trips=("degree",)),
            lane_stream(
                "feat", row="indirect", via="indices", lanes=L,
                trips=("degree", "feat_rounds"),
            ),
            lane_stream("out", role="write", lanes=L, trips=("feat_rounds",)),
        ]
        if scalar is not None:
            pats.append(scalar)
        if not mapping.register_cache:
            # write-through accumulator: own output row re-read per edge
            pats.append(
                lane_stream("out", lanes=L, trips=("degree", "feat_rounds"))
            )
    elif u == "vertex_thread":
        pats = [
            AccessPattern("indptr", col=Affine(lane=1), row="flat"),
            gather("indices", row="flat", via=None,
                   trips=("degree",), per="lane"),
            gather("feat", via="indices", trips=("degree", "dims"),
                   per="lane"),
            AccessPattern("out", role="write", row="lane_unit",
                          col=Affine(iter=1), trips=("dims",)),
        ]
        if scalar is not None:
            pats.append(scalar)
    elif u == "source_push":
        pats = [
            broadcast("indptr"),
            broadcast("indices", trips=("degree",)),
            lane_stream("feat", trips=("feat_rounds",)),
            lane_stream("out", role="write", trips=("feat_rounds",)),
            scatter("out", via="indices", trips=("degree", "feat_rounds")),
        ]
        if scalar is not None:
            pats.append(scalar)
    elif u == "edge_chunk":
        pats = [
            broadcast("indices", trips=("chunk",)),
            lane_stream(
                "feat", row="indirect", via="indices",
                trips=("chunk", "feat_rounds"),
            ),
            scatter("out", via="indices", trips=("chunk", "feat_rounds")),
        ]
        if scalar is not None:
            pats.append(scalar)
    elif u == "neighbor_group":
        d = workload.graph.in_degrees.astype(np.int64)
        n_groups = int(
            np.sum(d // mapping.group_size + (d % mapping.group_size > 0))
        )
        pats = [
            broadcast("group_table"),
            broadcast("indptr"),
            broadcast("indices", trips=("degree",)),
            lane_stream(
                "feat", row="indirect", via="indices", lanes=L,
                trips=("degree", "feat_rounds"),
            ),
            lane_stream("out", role="atomic", trips=("feat_rounds",)),
        ]
        if scalar is not None:
            pats.append(scalar)
        extra_shapes = {"group_table": (max(n_groups, 1), 3)}
    else:  # edge_tile
        pats = [
            broadcast("indptr"),
            AccessPattern("indices", row="flat", col=Affine(lane=1),
                          trips=("degree", "edge_tiles")),
            gather("feat", via="indices",
                   trips=("degree", "edge_tiles", "dims")),
            lane_stream("out", role="write", trips=("feat_rounds",)),
        ]
        if scalar is not None:
            pats.append(scalar)
    return conv_access(workload, *pats, extra_shapes=extra_shapes)


# ----------------------------------------------------------------------
# the unfused softmax staging (derived from the normalization term)
# ----------------------------------------------------------------------
def softmax_stage_access(
    workload: Any,
    *,
    logits: str = "tmp:logits",
    alpha: str = "tmp:alpha",
) -> dict[str, KernelAccess]:
    """Access tables of the three unfused softmax stages, keyed by stage.

    The staging is the UDF normalization term made explicit: ApplyEdge
    materializes the logits (gathering the two per-vertex attention
    scalars through ``indices`` — the pipeline's uncoalesced step,
    ACC002), the softmax normalizes them per destination segment, and
    the aggregate consumes the per-edge alphas.  ``alpha`` names the
    buffer the softmax materializes (FeatGraph keeps a transient, the
    unfused TLPGNN path writes the downstream kernel's ``edge_vals``).
    """
    E = workload.graph.num_edges
    apply_edge = conv_access(
        workload,
        lane_stream("indices", row="flat", span=E),
        gather("att", via="indices"),
        lane_stream(logits, role="write", row="flat", span=E),
    )
    softmax = conv_access(
        workload,
        lane_stream(logits, row="flat", span=E),
        broadcast("indptr"),
        lane_stream(alpha, role="write", row="flat", span=E),
    )
    aggregate = conv_access(
        workload,
        broadcast("indptr"),
        broadcast("indices", trips=("degree",)),
        broadcast(alpha, trips=("degree",)),
        lane_stream(
            "feat", row="indirect", via="indices",
            trips=("degree", "feat_rounds"),
        ),
        lane_stream("out", trips=("degree", "feat_rounds")),
        lane_stream("out", role="write", trips=("feat_rounds",)),
    )
    return {
        "apply_edge": apply_edge,
        "softmax": softmax,
        "aggregate": aggregate,
    }
