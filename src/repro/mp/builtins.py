"""The model zoo, re-expressed: every builtin is a UDF instance.

Each entry is nothing but a ``(MessageSpec, ReduceSpec)`` pair — the
same closed algebra user code writes.  The registry replaces the closed
per-model builder dispatch: frameworks resolve a model *name* to its
spec structure, derive their lowering from the terms, and compile the
numerics through :meth:`~repro.mp.spec.MPModel.workload`.

``register`` is the extension point: a user registers a builder once and
the name becomes runnable on every framework, lintable, optimizable, and
servable — the derivation chain the custom-conv example demonstrates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from .spec import (
    AttentionLogit,
    MessageSpec,
    MPModel,
    ReduceSpec,
    SelfTerm,
    SymNorm,
    bind,
)

__all__ = [
    "BUILTIN_SPECS",
    "build_model",
    "is_registered",
    "register",
    "registered_models",
    "resolve",
    "unregister",
]

#: a spec builder returns the (message, reduce) halves for one cell; most
#: builders ignore the cell and return a constant structure, but terms may
#: carry cell-dependent payloads (explicit edge scalars, attention vectors)
SpecBuilder = Callable[[], tuple[MessageSpec, ReduceSpec]]


def _gcn() -> tuple[MessageSpec, ReduceSpec]:
    return (
        MessageSpec(feature="src", scale=SymNorm()),
        ReduceSpec(op="sum", self_term=SelfTerm(kind="scaled")),
    )


def _gin() -> tuple[MessageSpec, ReduceSpec]:
    return (
        MessageSpec(feature="src"),
        ReduceSpec(op="sum", self_term=SelfTerm(kind="eps")),
    )


def _sage() -> tuple[MessageSpec, ReduceSpec]:
    return (
        MessageSpec(feature="src"),
        ReduceSpec(op="mean", self_term=SelfTerm(kind="concat")),
    )


def _gat() -> tuple[MessageSpec, ReduceSpec]:
    return (
        MessageSpec(feature="src", scale=AttentionLogit()),
        ReduceSpec(op="sum", normalize="softmax"),
    )


def _rgcn() -> tuple[MessageSpec, ReduceSpec]:
    # one homogeneous relation of an R-GCN layer: plain neighbour mean;
    # relation weights live in the dense phase (models/rgcn.py applies
    # this spec once per relation graph)
    return (MessageSpec(feature="src"), ReduceSpec(op="mean"))


#: the five paper/extension models as spec structures
BUILTIN_SPECS: dict[str, SpecBuilder] = {
    "gcn": _gcn,
    "gin": _gin,
    "sage": _sage,
    "graphsage": _sage,
    "gat": _gat,
    "rgcn": _rgcn,
}

_registry: dict[str, SpecBuilder] = dict(BUILTIN_SPECS)


def register(name: str, builder: SpecBuilder, *, replace: bool = False) -> None:
    """Register a user-defined model under ``name`` (lowercased)."""
    key = name.lower()
    if not replace and key in _registry:
        raise ValueError(f"model {name!r} is already registered")
    _registry[key] = builder


def unregister(name: str) -> None:
    """Remove a user-registered model (builtins cannot be removed)."""
    key = name.lower()
    if key in BUILTIN_SPECS:
        raise ValueError(f"cannot unregister builtin model {name!r}")
    _registry.pop(key, None)


def is_registered(name: str) -> bool:
    return name.lower() in _registry


def registered_models() -> tuple[str, ...]:
    return tuple(sorted(_registry))


def resolve(name: str) -> tuple[MessageSpec, ReduceSpec]:
    """The spec structure of a registered model name."""
    key = name.lower()
    if key not in _registry:
        raise KeyError(
            f"unknown model {name!r}; registered: {registered_models()}"
        )
    return _registry[key]()


def build_model(
    name: str,
    graph: CSRGraph,
    X: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
) -> MPModel:
    """Resolve ``name`` and bind its spec to one ``(graph, X)`` cell."""
    message, reduce_ = resolve(name)
    return bind(name.lower(), message, reduce_, graph, X, rng=rng)
