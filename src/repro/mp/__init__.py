"""repro.mp — the user-programmable message-passing frontend.

A conv is authored as a ``(MessageSpec, ReduceSpec)`` pair from a closed
term algebra; everything downstream — numeric workloads, framework
lowering stages, kernel effect tables, per-lane access patterns — is
derived from the terms:

* :mod:`repro.mp.spec` — the algebra (send scale terms, reduce ops,
  self-terms), validation, and compilation to
  :class:`~repro.models.convspec.ConvWorkload`,
* :mod:`repro.mp.builtins` — the model zoo as UDF instances plus the
  ``register`` extension point for user models,
* :mod:`repro.mp.lower` — spec-driven framework lowering (DGL stage
  plans, the unfused softmax staging, ``supports()`` feature predicates),
* :mod:`repro.mp.derive` — effect/access table derivation from a kernel's
  :class:`~repro.mp.derive.KernelMapping`.
"""

from .builtins import (
    BUILTIN_SPECS,
    build_model,
    is_registered,
    register,
    registered_models,
    resolve,
    unregister,
)
from .derive import (
    KernelMapping,
    derive_access,
    derive_effects,
    softmax_stage_access,
)
from .lower import (
    GlueStage,
    ModelFeatures,
    SoftmaxStage,
    SpmmStage,
    dgl_stage_plan,
    model_features,
    softmax_stages,
)
from .spec import (
    AttentionLogit,
    EdgeScalar,
    MessageSpec,
    MPModel,
    ReduceSpec,
    SelfTerm,
    SymNorm,
    bind,
    validate,
)

__all__ = [
    "AttentionLogit",
    "BUILTIN_SPECS",
    "EdgeScalar",
    "GlueStage",
    "KernelMapping",
    "MPModel",
    "MessageSpec",
    "ModelFeatures",
    "ReduceSpec",
    "SelfTerm",
    "SoftmaxStage",
    "SpmmStage",
    "SymNorm",
    "bind",
    "build_model",
    "derive_access",
    "derive_effects",
    "dgl_stage_plan",
    "is_registered",
    "model_features",
    "register",
    "registered_models",
    "resolve",
    "softmax_stage_access",
    "softmax_stages",
    "unregister",
    "validate",
]
