"""Hybrid dynamic workload assignment (paper Section 5): hardware block
distribution, the software task pool (Algorithm 1), and the heuristic
chooser."""

from .hardware import hardware_assignment, tune_warps_per_block
from .hybrid import (
    DEGREE_THRESHOLD,
    VERTEX_THRESHOLD,
    choose_assignment,
    hybrid_assignment,
)
from .software import TaskPoolTrace, simulate_task_pool, software_assignment

__all__ = [
    "hardware_assignment",
    "tune_warps_per_block",
    "software_assignment",
    "simulate_task_pool",
    "TaskPoolTrace",
    "choose_assignment",
    "hybrid_assignment",
    "VERTEX_THRESHOLD",
    "DEGREE_THRESHOLD",
]
