"""Software-based dynamic workload assignment — Algorithm 1 of the paper.

A fixed resident grid of warps pulls chunks of ``step`` consecutive
vertices from a global ``atomicAdd`` counter until the pool drains.  Besides
the schedule model (used by the cost model), :func:`simulate_task_pool`
executes Algorithm 1 literally, recording which warp processed which
vertices — the tests use it to prove every vertex is processed exactly once
and that the pool balances better than static assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import LaunchConfig
from ..gpusim.scheduler import ScheduleResult, software_pool_schedule

__all__ = ["software_assignment", "simulate_task_pool", "TaskPoolTrace"]


def software_assignment(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    step: int = 8,
    warps_per_block: int = 8,
    regs_per_thread: int = 32,
) -> tuple[ScheduleResult, LaunchConfig]:
    """Schedule via the task pool with a resident-sized persistent grid."""
    blocks_per_sm = max(spec.max_warps_per_sm // warps_per_block, 1)
    launch = LaunchConfig(
        num_blocks=spec.num_sms * blocks_per_sm,
        threads_per_block=warps_per_block * spec.threads_per_warp,
        regs_per_thread=regs_per_thread,
    )
    resident = launch.num_warps(spec.threads_per_warp)
    sched = software_pool_schedule(
        vertex_cycles, spec, step=step, resident_warps=resident
    )
    return sched, launch


@dataclass(frozen=True)
class TaskPoolTrace:
    """Literal execution record of Algorithm 1."""

    owner: np.ndarray  # warp id that processed each vertex
    finish_cycles: np.ndarray  # per-warp total busy cycles
    chunks_pulled: np.ndarray  # per-warp number of atomicAdd pulls

    @property
    def makespan(self) -> float:
        return float(self.finish_cycles.max(initial=0.0))


def simulate_task_pool(
    vertex_cycles: np.ndarray,
    num_warps: int,
    *,
    step: int = 8,
    fetch_cost: float = 0.0,
) -> TaskPoolTrace:
    """Execute Algorithm 1: a global counter G, each warp atomically adds
    ``step`` and processes vertices ``[sindex, min(sindex+step, n))``.

    The simulation serves pulls in earliest-free-warp order, which is how
    the atomic counter behaves when warps re-request as they finish.
    """
    vertex_cycles = np.asarray(vertex_cycles, dtype=np.float64)
    if num_warps < 1:
        raise ValueError("num_warps must be >= 1")
    if step < 1:
        raise ValueError("step must be >= 1")
    n = vertex_cycles.size
    owner = np.full(n, -1, dtype=np.int64)
    clock = np.zeros(num_warps, dtype=np.float64)
    pulls = np.zeros(num_warps, dtype=np.int64)
    g = 0  # the global counter of Algorithm 1
    while g < n:
        w = int(np.argmin(clock))  # warp whose atomicAdd lands next
        sindex = g
        g += step
        hi = min(sindex + step, n)
        owner[sindex:hi] = w
        clock[w] += fetch_cost + float(vertex_cycles[sindex:hi].sum())
        pulls[w] += 1
    return TaskPoolTrace(owner=owner, finish_cycles=clock, chunks_pulled=pulls)
