"""Hardware-based dynamic workload assignment (Section 5).

One warp per vertex; the GPU's block distributor hands blocks to SMs as
resources free up.  The tunable is warps-per-block: fewer warps = better
balance (a block retires when its slowest warp finishes) but more blocks to
schedule; more warps = the opposite.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import LaunchConfig
from ..gpusim.scheduler import ScheduleResult, hardware_schedule

__all__ = ["hardware_assignment", "tune_warps_per_block"]


def hardware_assignment(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    warps_per_block: int = 4,
    regs_per_thread: int = 32,
) -> tuple[ScheduleResult, LaunchConfig]:
    """Schedule one-warp-per-vertex work under the block distributor."""
    n = int(np.asarray(vertex_cycles).size)
    blocks = max(1, -(-n // warps_per_block))
    launch = LaunchConfig(
        num_blocks=blocks,
        threads_per_block=warps_per_block * spec.threads_per_warp,
        regs_per_thread=regs_per_thread,
    )
    return hardware_schedule(vertex_cycles, launch, spec), launch


def tune_warps_per_block(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> int:
    """Pick the warps-per-block minimizing the modeled makespan.

    This is the balance-vs-scheduling-overhead trade-off the paper
    describes; exposed so the ablation can sweep it.
    """
    best, best_span = candidates[0], float("inf")
    for wpb in candidates:
        sched, _ = hardware_assignment(vertex_cycles, spec, warps_per_block=wpb)
        if sched.makespan_cycles < best_span:
            best, best_span = wpb, sched.makespan_cycles
    return best
