"""Heuristic hybrid workload assignment (Section 5).

"We use software-based dynamic workload assignment when the number of
vertices is over 1M or the average degree is over 50, otherwise we use the
hardware-based method."

Scaled synthetic datasets stand in for the paper's full-size graphs, so the
chooser accepts optional full-size hints; the thresholds themselves are the
paper's constants.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import LaunchConfig
from ..gpusim.scheduler import ScheduleResult
from .hardware import hardware_assignment
from .software import software_assignment

__all__ = [
    "VERTEX_THRESHOLD",
    "DEGREE_THRESHOLD",
    "choose_assignment",
    "hybrid_assignment",
]

VERTEX_THRESHOLD = 1_000_000
DEGREE_THRESHOLD = 50.0


def choose_assignment(
    num_vertices: int,
    avg_degree: float,
    *,
    vertex_threshold: int = VERTEX_THRESHOLD,
    degree_threshold: float = DEGREE_THRESHOLD,
) -> str:
    """The paper's discriminant: returns ``"software"`` or ``"hardware"``."""
    if num_vertices > vertex_threshold or avg_degree > degree_threshold:
        return "software"
    return "hardware"


def hybrid_assignment(
    vertex_cycles: np.ndarray,
    spec: GPUSpec,
    *,
    num_vertices: int | None = None,
    avg_degree: float | None = None,
    warps_per_block: int = 4,
    step: int = 8,
    regs_per_thread: int = 32,
) -> tuple[ScheduleResult, LaunchConfig, str]:
    """Apply the heuristic and schedule accordingly.

    ``num_vertices`` / ``avg_degree`` default to the workload itself but can
    be overridden with full-size dataset statistics when running scaled
    stand-ins.
    """
    vertex_cycles = np.asarray(vertex_cycles, dtype=np.float64)
    n = vertex_cycles.size if num_vertices is None else num_vertices
    deg = avg_degree if avg_degree is not None else 0.0
    policy = choose_assignment(n, deg)
    sched, launch = (
        software_assignment(
            vertex_cycles,
            spec,
            step=step,
            warps_per_block=warps_per_block * 2,
            regs_per_thread=regs_per_thread,
        )
        if policy == "software"
        else hardware_assignment(
            vertex_cycles,
            spec,
            warps_per_block=warps_per_block,
            regs_per_thread=regs_per_thread,
        )
    )
    return sched, launch, policy
