"""Chrome-trace-event JSON timelines of a profiled run.

Converts one :class:`~repro.frameworks.base.SystemResult` into a trace
loadable in Perfetto / ``chrome://tracing``:

* **pid 2 — "GPU (modeled)"**: a ``kernels`` track whose complete events
  (``ph="X"``) are the pipeline's kernels laid end to end — their summed
  durations equal ``ProfileReport.gpu_time_ms`` exactly — plus **one
  track per simulated SM** showing block residency, produced by replaying
  each kernel's per-unit costs through the instrumented discrete-event
  simulator (:func:`repro.gpusim.eventsim.simulate_hardware_scheduler`
  with an :class:`~repro.obs.events.EventSink` installed).  Because a
  kernel's modeled GPU time can exceed its SM makespan (bandwidth- or
  atomic-bound kernels), the replayed block events are stretched to fill
  the kernel's window — relative SM load stays faithful.
* **pid 1 — "host (wall clock)"**: the span tree of an optional
  :class:`~repro.obs.tracer.Tracer` (harness / pipeline / kernel spans).

Timestamps are microseconds and monotonic per track.  Event counts are
bounded per kernel; any drops are reported in ``otherData.dropped_events``
rather than silently truncating.
"""

from __future__ import annotations

import json
from pathlib import Path

from .events import EventSink, set_event_sink
from .tracer import Tracer

__all__ = ["build_timeline", "write_timeline"]

_GPU_PID = 2
_KERNEL_TID = 0  # SM s lives on tid s+1


def _meta(pid: int, tid: int, kind: str, name: str) -> dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid, "ts": 0,
            "args": {"name": name}}


def build_timeline(
    result,
    spec,
    *,
    tracer: Tracer | None = None,
    max_block_events_per_kernel: int = 20_000,
) -> dict:
    """Build the Chrome trace object for one profiled run."""
    from ..gpusim.eventsim import simulate_hardware_scheduler

    report = getattr(result, "report", result)
    events: list[dict] = [
        _meta(_GPU_PID, _KERNEL_TID, "process_name", "GPU (modeled)"),
        _meta(_GPU_PID, _KERNEL_TID, "thread_name", "kernels"),
    ]
    for sm in range(spec.num_sms):
        events.append(_meta(_GPU_PID, sm + 1, "thread_name", f"SM {sm}"))

    cursor_us = 0.0
    dropped = 0
    cycles_to_us = 1e6 / spec.clock_hz
    for stats, timing in zip(report.stats.kernels, report.timing.kernels, strict=True):
        dur_us = timing.gpu_seconds * 1e6
        events.append(
            {
                "name": timing.name,
                "ph": "X",
                "ts": cursor_us,
                "dur": dur_us,
                "pid": _GPU_PID,
                "tid": _KERNEL_TID,
                "args": {
                    "gpu_ms": timing.gpu_seconds * 1e3,
                    "occupancy": timing.occupancy,
                    "sm_utilization": timing.sm_utilization,
                    "total_bytes": timing.total_bytes,
                    "atomic_bytes": timing.atomic_bytes,
                    "sectors_per_request": timing.sectors_per_request,
                },
            }
        )
        if stats.atomic_ops:
            events.append(
                {
                    "name": "atomic serialization (ops)",
                    "ph": "C",
                    "ts": cursor_us,
                    "pid": _GPU_PID,
                    "tid": _KERNEL_TID,
                    "args": {"atomic_ops": stats.atomic_ops},
                }
            )

        if stats.warp_cycles.size:
            sink = EventSink(max_events=max_block_events_per_kernel)
            previous = set_event_sink(sink)
            try:
                sim = simulate_hardware_scheduler(
                    stats.warp_cycles, stats.launch, spec
                )
            finally:
                set_event_sink(previous)
            dropped += sink.dropped
            sim_us = sim.makespan_cycles * cycles_to_us
            # stretch SM activity to fill the kernel's (possibly
            # bandwidth-bound) window
            scale = dur_us / sim_us if sim_us > 0 else 0.0
            for ev in sink.by_kind("block_assigned"):
                start = cursor_us + ev["start_cycles"] * cycles_to_us * scale
                end = cursor_us + ev["end_cycles"] * cycles_to_us * scale
                events.append(
                    {
                        "name": f"{timing.name} block",
                        "ph": "X",
                        "ts": start,
                        "dur": max(end - start, 0.0),
                        "pid": _GPU_PID,
                        "tid": ev["sm"] + 1,
                        "args": {"block": ev["block"], "warps": ev["warps"]},
                    }
                )
            for ev in sink.by_kind("warp_complete"):
                events.append(
                    {
                        "name": "warp_complete",
                        "ph": "i",
                        "s": "t",
                        "ts": cursor_us + ev["at_cycles"] * cycles_to_us * scale,
                        "pid": _GPU_PID,
                        "tid": ev["sm"] + 1,
                        "args": {"unit": ev["unit"]},
                    }
                )
        cursor_us += dur_us

    if tracer is not None:
        events.extend(tracer.to_chrome_trace(pid=1))

    # stable ordering: metadata first, then by (track, time)
    events.sort(key=lambda e: (e["ph"] != "M", e["pid"], e["tid"], e["ts"]))
    other = {
        "system": report.system,
        "model": report.model,
        "dataset": report.dataset,
        "num_sms": spec.num_sms,
        "gpu_time_ms": report.gpu_time_ms,
        "runtime_ms": report.runtime_ms,
        "dropped_events": dropped,
    }
    plan = getattr(result, "plan", None)
    if plan is not None:
        other["plan_fingerprint"] = plan.fingerprint
        other["plan_cached"] = plan.cached
        other["plan_ops"] = list(plan.op_names)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_timeline(
    path: str | Path,
    result,
    spec,
    *,
    tracer: Tracer | None = None,
    max_block_events_per_kernel: int = 20_000,
) -> dict:
    """Build and write the timeline JSON; returns the trace object."""
    trace = build_timeline(
        result, spec, tracer=tracer,
        max_block_events_per_kernel=max_block_events_per_kernel,
    )
    Path(path).write_text(json.dumps(trace) + "\n")
    return trace
