"""Perf-regression observatory: a per-metric trend store keyed by git rev.

:class:`~repro.obs.archive.ProfileArchive` answers "did *this* run drift
from *that* run"; the :class:`TrendStore` answers the longitudinal
question — "how has this workload's performance moved across PRs".  One
JSON file (committed to the repo as ``BENCH_serving.json`` /
``BENCH_table5.json``) holds an append-only list of **trajectory
points**, each stamped with the git revision, a config fingerprint, and
a flat metric dict.  ``repro regress`` recomputes the same probes at
HEAD and compares against the latest fingerprint-matching point with
**directional** tolerances: a latency that *drops* 30% is an
improvement, not a regression; the same move in throughput fails the
gate.

Points with different fingerprints (a different ``max_edges`` cap, seed,
or device spec) never compare — CI records at its own scale and stays
blind to developers' full-scale local points in the same file.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

from .archive import Tolerance

__all__ = [
    "TREND_SCHEMA_VERSION",
    "MetricPolicy",
    "TrendDelta",
    "TrendDiff",
    "TrendStore",
    "DEFAULT_POLICIES",
    "git_rev",
]

#: bump when the trend-store layout changes incompatibly
TREND_SCHEMA_VERSION = 1


def git_rev(root: str | Path | None = None) -> str:
    """Short git revision of ``root`` (cwd by default); "unknown" when
    not a repository (trend points must never fail to record)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass(frozen=True)
class MetricPolicy:
    """Tolerance plus the drift direction that counts as a regression."""

    tolerance: Tolerance = Tolerance(rel=0.05)
    #: "lower" = lower is better (latency: increases regress);
    #: "higher" = higher is better (throughput: decreases regress);
    #: "both"   = any out-of-band drift regresses (counters)
    better: str = "both"

    def classify(self, baseline: float, candidate: float) -> str:
        """"ok" | "regressed" | "improved" for one metric move."""
        if self.tolerance.allows(baseline, candidate):
            return "ok"
        if self.better == "both":
            return "regressed"
        worse = (
            candidate > baseline if self.better == "lower"
            else candidate < baseline
        )
        return "regressed" if worse else "improved"


#: metric-name policies shared by the serving and table5 probes; matched
#: by exact name first, then by the longest suffix after "_"
DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    # modeled latencies: deterministic floats, lower is better
    "p50_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "p95_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "p99_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "mean_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "runtime_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "makespan_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    # tuner outcomes: the winning plan getting slower is a regression;
    # the fixed-config anchor is costed, not tuned, so it is symmetric
    "tuned_ms": MetricPolicy(Tolerance(rel=0.05), better="lower"),
    "fixed_ms": MetricPolicy(Tolerance(rel=0.05), better="both"),
    # budget adherence: measurement count drift is a determinism bug
    "iterations": MetricPolicy(Tolerance(), better="both"),
    # rates: higher is better
    "throughput_rps": MetricPolicy(Tolerance(rel=0.05), better="higher"),
    "sustained_rps": MetricPolicy(Tolerance(rel=0.05), better="higher"),
    "speedup": MetricPolicy(Tolerance(rel=0.05), better="higher"),
    # conservation counters: exact
    "completed": MetricPolicy(Tolerance(), better="both"),
    "shed": MetricPolicy(Tolerance(), better="both"),
}

_FALLBACK_POLICY = MetricPolicy()


def policy_for(metric: str, policies: dict | None = None) -> MetricPolicy:
    table = policies if policies is not None else DEFAULT_POLICIES
    if metric in table:
        return table[metric]
    # suffix match: "TLPGNN_CR_runtime_ms" inherits the runtime_ms policy
    parts = metric.split("_")
    for i in range(1, len(parts)):
        suffix = "_".join(parts[i:])
        if suffix in table:
            return table[suffix]
    return _FALLBACK_POLICY


@dataclass(frozen=True)
class TrendDelta:
    """One metric compared against the recorded trajectory."""

    metric: str
    baseline: float
    candidate: float
    policy: MetricPolicy
    verdict: str  # "ok" | "regressed" | "improved"

    @property
    def rel_delta(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        tag = {"ok": "ok", "regressed": "REGRESSED", "improved": "improved"}[
            self.verdict
        ]
        return (
            f"{self.metric:<28} {self.baseline:>14.6g} -> "
            f"{self.candidate:>14.6g}  ({self.rel_delta:+.2%})  [{tag}]"
        )


@dataclass
class TrendDiff:
    """HEAD vs the recorded trajectory of one store."""

    store: str
    baseline_rev: str
    candidate_rev: str
    deltas: list[TrendDelta]
    missing_metrics: list[str]

    @property
    def regressions(self) -> list[TrendDelta]:
        return [d for d in self.deltas if d.verdict == "regressed"]

    @property
    def improvements(self) -> list[TrendDelta]:
        return [d for d in self.deltas if d.verdict == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_metrics

    def render(self) -> str:
        lines = [
            f"trend {self.store}: baseline rev {self.baseline_rev} -> "
            f"HEAD ({self.candidate_rev})"
        ]
        for d in self.deltas:
            lines.append("  " + d.describe())
        for m in self.missing_metrics:
            lines.append(f"  {m:<28} missing at HEAD  [REGRESSED]")
        n_reg = len(self.regressions) + len(self.missing_metrics)
        if self.ok:
            verdict = "PASS: no perf regressions vs recorded trajectory"
            if self.improvements:
                verdict += (
                    f" ({len(self.improvements)} improvement(s) — "
                    "consider re-recording the baseline)"
                )
        else:
            verdict = (
                f"FAIL: {n_reg} metric(s) regressed: "
                + ", ".join(
                    [d.metric for d in self.regressions]
                    + self.missing_metrics
                )
            )
        lines.append(verdict)
        return "\n".join(lines)


class TrendStore:
    """Append-only trajectory of one benchmark's metrics, one JSON file."""

    def __init__(self, path: str | Path, *, name: str | None = None):
        self.path = Path(path)
        stem = self.path.stem
        self.name = name or (
            stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
        )

    # ------------------------------------------------------------------
    def load(self) -> dict:
        """The store document (an empty skeleton when the file is absent)."""
        if not self.path.exists():
            return {
                "schema_version": TREND_SCHEMA_VERSION,
                "name": self.name,
                "points": [],
            }
        with open(self.path) as fh:
            doc = json.load(fh)
        version = doc.get("schema_version")
        if version != TREND_SCHEMA_VERSION:
            raise ValueError(
                f"{self.path}: trend schema {version!r} != supported "
                f"{TREND_SCHEMA_VERSION}"
            )
        if "points" not in doc:
            raise ValueError(f"{self.path}: not a trend store")
        return doc

    def points(self, *, fingerprint: str | None = None) -> list[dict]:
        pts = self.load()["points"]
        if fingerprint is None:
            return pts
        return [p for p in pts if p.get("fingerprint") == fingerprint]

    def latest(self, *, fingerprint: str | None = None) -> dict | None:
        pts = self.points(fingerprint=fingerprint)
        return pts[-1] if pts else None

    # ------------------------------------------------------------------
    def record(
        self,
        metrics: dict,
        *,
        fingerprint: str,
        rev: str | None = None,
        meta: dict | None = None,
        timestamp: float | None = None,
    ) -> dict:
        """Append one trajectory point; returns the recorded point."""
        clean = {}
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"trend metrics must be numeric: {key}={value!r}"
                )
            clean[key] = float(value)
        point = {
            "rev": rev if rev is not None else git_rev(self.path.parent),
            "recorded_unix": time.time() if timestamp is None else timestamp,
            "fingerprint": fingerprint,
            "metrics": clean,
        }
        if meta:
            point["meta"] = meta
        doc = self.load()
        doc["points"].append(point)
        self.path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return point

    # ------------------------------------------------------------------
    def compare(
        self,
        candidate_metrics: dict,
        *,
        fingerprint: str,
        rev: str | None = None,
        policies: dict | None = None,
    ) -> TrendDiff | None:
        """HEAD metrics vs the latest matching point (None = no baseline)."""
        baseline = self.latest(fingerprint=fingerprint)
        if baseline is None:
            return None
        deltas: list[TrendDelta] = []
        missing: list[str] = []
        for metric, base_value in sorted(baseline["metrics"].items()):
            if metric not in candidate_metrics:
                missing.append(metric)
                continue
            policy = policy_for(metric, policies)
            cand_value = float(candidate_metrics[metric])
            deltas.append(
                TrendDelta(
                    metric=metric,
                    baseline=float(base_value),
                    candidate=cand_value,
                    policy=policy,
                    verdict=policy.classify(float(base_value), cand_value),
                )
            )
        return TrendDiff(
            store=self.name,
            baseline_rev=baseline.get("rev", "unknown"),
            candidate_rev=rev if rev is not None else git_rev(self.path.parent),
            deltas=deltas,
            missing_metrics=missing,
        )
