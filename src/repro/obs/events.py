"""Event sink for the discrete-event GPU simulators.

:mod:`repro.gpusim.eventsim` and :mod:`repro.gpusim.scheduler` emit
structured events here when a sink is installed (block→SM assignment,
warp completion, schedule summaries, atomic serialization); the sink is
``None`` by default so the simulators pay one module-global load on the
disabled path.  :mod:`repro.obs.timeline` replays kernels through the
instrumented simulators to build the per-SM Chrome-trace tracks.

Events are plain dicts with a ``kind`` plus kind-specific fields, all in
*modeled* units (cycles); the timeline builder converts to microseconds.
The sink is bounded: past ``max_events`` it counts drops instead of
growing without limit (a 100M-edge graph schedules millions of blocks),
and the drop count is surfaced in the exported trace metadata — a
truncated timeline never silently poses as a complete one.
"""

from __future__ import annotations

__all__ = ["EventSink", "get_event_sink", "set_event_sink"]


class EventSink:
    """Bounded collector of simulator events."""

    def __init__(self, *, max_events: int = 200_000):
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        fields["kind"] = kind
        self.events.append(fields)

    # convenience emitters used by eventsim/scheduler -------------------
    def kernel_launch(self, name: str, *, num_blocks: int, num_warps: int) -> None:
        self.emit("kernel_launch", name=name, num_blocks=num_blocks,
                  num_warps=num_warps)

    def block_assigned(
        self, *, block: int, sm: int, start_cycles: float, end_cycles: float,
        warps: int,
    ) -> None:
        self.emit(
            "block_assigned", block=block, sm=sm, start_cycles=start_cycles,
            end_cycles=end_cycles, warps=warps,
        )

    def warp_complete(self, *, unit: int, sm: int, at_cycles: float) -> None:
        self.emit("warp_complete", unit=unit, sm=sm, at_cycles=at_cycles)

    def schedule_summary(
        self, *, policy: str, num_units: int, makespan_cycles: float,
        overhead_cycles: float,
    ) -> None:
        self.emit(
            "schedule", policy=policy, num_units=num_units,
            makespan_cycles=makespan_cycles, overhead_cycles=overhead_cycles,
        )

    def atomic_serialization(
        self, *, kernel: str, atomic_ops: int, collision_rate: float,
        atomic_seconds: float,
    ) -> None:
        self.emit(
            "atomic_serialization", kernel=kernel, atomic_ops=atomic_ops,
            collision_rate=collision_rate, atomic_seconds=atomic_seconds,
        )

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
_SINK: EventSink | None = None


def get_event_sink() -> EventSink | None:
    """The installed sink, or None when event capture is disabled."""
    return _SINK


def set_event_sink(sink: EventSink | None) -> EventSink | None:
    """Install (or, with None, disable) the global event sink; returns the
    previous one so callers can restore it."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous
