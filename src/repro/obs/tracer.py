"""Hierarchical span tracer with wall-clock + modeled-time attribution.

A :class:`Span` is one timed region; spans nest to form a tree.  Call
sites use the module-level :func:`span` context manager, which costs one
module-global load and a tuple comparison when tracing is disabled (the
default) — no allocation, no object creation — so the hooks can live
permanently in hot paths like ``run_system`` and kernel ``analyze()``.

Two clocks
----------
* **wall** — host ``perf_counter`` time actually spent inside the region
  (building counters, running the numpy kernels, costing the model).
* **modeled** — simulated GPU seconds attributed to the region via
  :meth:`Span.add_modeled` (e.g. a kernel's ``gpu_seconds``).  The two are
  deliberately separate: the reproduction *computes* timings rather than
  experiencing them.

Export
------
:meth:`Tracer.to_chrome_trace` renders the span tree as Chrome trace
events (``ph="X"`` complete events, microsecond timestamps) loadable in
Perfetto / ``chrome://tracing``; :mod:`repro.obs.timeline` merges these
host tracks with the modeled per-SM timeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
]


class Span:
    """One timed region of the span tree."""

    __slots__ = (
        "name",
        "attrs",
        "start_s",
        "end_s",
        "modeled_seconds",
        "children",
        "error",
    )

    def __init__(self, name: str, attrs: dict | None = None, *, start_s: float = 0.0):
        self.name = name
        self.attrs = attrs or {}
        self.start_s = start_s
        self.end_s: float | None = None
        self.modeled_seconds = 0.0
        self.children: list[Span] = []
        self.error: str | None = None

    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """Wall time inside the region (0.0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    def add_modeled(self, seconds: float) -> None:
        """Attribute modeled (simulated-GPU) seconds to this span."""
        self.modeled_seconds += float(seconds)

    def set(self, **attrs) -> None:
        """Attach attributes (rendered as Chrome-trace ``args``)."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.wall_seconds * 1e3:.3f} ms" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpanContext:
    """Reusable no-op context manager: the whole disabled-tracer path.

    A single module-level instance is returned by :func:`span` whenever no
    tracer is installed, so the disabled path performs zero allocations
    (asserted by the tests).
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects a forest of nested spans.

    Use as::

        tracer = Tracer()
        set_tracer(tracer)
        with span("bench.run_system", system="TLPGNN") as sp:
            ...
            sp.add_modeled(report.timing.gpu_seconds)

    The tracer is exception-safe: a span raised through is closed, marked
    with ``error``, and the stack unwinds to its parent.
    """

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.epoch_s = clock()

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        sp = Span(name, attrs or None, start_s=self._clock())
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            sp.end_s = self._clock()
            self._stack.pop()

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    @property
    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    # ------------------------------------------------------------------
    def to_chrome_trace(
        self, *, pid: int = 1, tid: int = 1, process_name: str = "host (wall clock)"
    ) -> list[dict]:
        """Render the span forest as Chrome trace events (µs timestamps)."""
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": process_name},
            }
        ]

        def emit(sp: Span) -> None:
            if not sp.closed:  # open spans cannot be rendered as complete
                return
            args = dict(sp.attrs)
            if sp.modeled_seconds:
                args["modeled_ms"] = sp.modeled_seconds * 1e3
            if sp.error:
                args["error"] = sp.error
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": (sp.start_s - self.epoch_s) * 1e6,
                    "dur": sp.wall_seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for child in sp.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return events


# ----------------------------------------------------------------------
# module-global tracer: None = disabled (the default)
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or, with None, disable) the global tracer; returns the
    previous one so callers can restore it."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs):
    """Open a span on the installed tracer; a shared no-op when disabled.

    The disabled path returns a module-level singleton context manager and
    yields ``None`` — call sites that annotate must guard::

        with span("kernel.analyze", kernel=self.name) as sp:
            stats, sched = ...
            if sp is not None:
                sp.set(num_units=sched.num_units)
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def current_span() -> Span | None:
    """The innermost open span, or None (disabled / between spans)."""
    tracer = _TRACER
    return tracer.current if tracer is not None else None
