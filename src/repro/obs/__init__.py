"""Observability: structured tracing, metrics, timelines, and run archives.

The paper's argument is counter-level (atomic store traffic, sector per
request, occupancy — §2.3), so the reproduction's credibility rests on
those counters staying correct as the system grows.  This package makes
the stack auditable the way GPGPU-Sim-style workload studies are:

* :mod:`~repro.obs.tracer` — hierarchical span tracer (context-manager
  API, nested spans, wall-clock + modeled-time attribution) wired into
  the bench harness, the four framework pipelines, and the kernel
  ``run()``/``analyze()`` paths.  Disabled by default; the disabled path
  is a single module-global load and allocates nothing.
* :mod:`~repro.obs.events` — event sink fed by :mod:`repro.gpusim.eventsim`
  and :mod:`repro.gpusim.scheduler` (kernel launch, block→SM assignment,
  warp completion, atomic serialization).
* :mod:`~repro.obs.timeline` — Chrome-trace-event JSON export (Perfetto /
  ``chrome://tracing`` loadable): one track per simulated SM, kernel spans
  whose summed durations equal ``ProfileReport.gpu_time_ms``.
* :mod:`~repro.obs.metrics` — counter/gauge registry that
  :class:`~repro.gpusim.profiler.ProfileReport` and the cost model
  publish into, with a JSONL sink.
* :mod:`~repro.obs.archive` — :class:`ProfileArchive` persists profiled
  runs (schema version + config fingerprint) and a diff engine flags
  counter regressions beyond per-metric tolerances.

CLI: ``python -m repro trace`` writes a timeline (and optionally an
archive entry); ``python -m repro diff`` compares two archived runs and
exits non-zero on regression.
"""

from .archive import (
    DEFAULT_TOLERANCES,
    SCHEMA_VERSION,
    DiffResult,
    MetricDelta,
    ProfileArchive,
    config_fingerprint,
    diff_runs,
    load_run,
)
from .dashboard import render_top
from .events import EventSink, get_event_sink, set_event_sink
from .expose import render_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_edges_ms,
    get_registry,
    set_registry,
)
from .reqtrace import (
    BatchContext,
    KernelSpan,
    RequestContext,
    RequestTrace,
    RequestTraceCollector,
    current_batch_context,
    get_request_collector,
    set_request_collector,
)
from .slo import SLO, BurnRateAlert, BurnRateRule, SLOMonitor, default_rules
from .tracer import Span, Tracer, current_span, get_tracer, set_tracer, span
from .trend import MetricPolicy, TrendDiff, TrendStore, git_rev

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
    "EventSink",
    "get_event_sink",
    "set_event_sink",
    "Counter",
    "Gauge",
    "Histogram",
    "default_latency_edges_ms",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "RequestContext",
    "BatchContext",
    "KernelSpan",
    "RequestTrace",
    "RequestTraceCollector",
    "get_request_collector",
    "set_request_collector",
    "current_batch_context",
    "SLO",
    "BurnRateRule",
    "BurnRateAlert",
    "SLOMonitor",
    "default_rules",
    "TrendStore",
    "TrendDiff",
    "MetricPolicy",
    "git_rev",
    "render_top",
    "render_prometheus",
    "ProfileArchive",
    "config_fingerprint",
    "diff_runs",
    "load_run",
    "DiffResult",
    "MetricDelta",
    "DEFAULT_TOLERANCES",
    "SCHEMA_VERSION",
    "build_timeline",
    "write_timeline",
]


def __getattr__(name):  # timeline imports gpusim; keep this package import-light
    if name in ("build_timeline", "write_timeline"):
        from . import timeline

        return getattr(timeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
