"""Counter/gauge metrics registry with a JSONL sink.

:class:`~repro.gpusim.profiler.ProfileReport` (via ``publish()``) and the
cost model (:func:`repro.gpusim.costmodel.estimate_kernel`) publish into
the installed registry; nothing is recorded when no registry is installed
(the default — one module-global load on the hot path).

* **Counter** — monotonically accumulating quantity (sectors moved,
  atomic ops issued, kernels launched).
* **Gauge** — last-observed value (occupancy, SM utilization, runtime of
  the most recent run).

Metrics are keyed by name + sorted label items, Prometheus-style, e.g.::

    registry.counter("kernel_atomic_ops", kernel="spmm_coo_atomic").inc(n)

``dump_jsonl(path)`` appends one JSON object per metric so successive
runs accumulate an audit log; ``snapshot()`` returns the same records as
dicts for in-process assertions.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "default_latency_edges_ms",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """Last-observed value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def default_latency_edges_ms(*, lo_ms: float = 1e-3, hi_ms: float = 1e4) -> list[float]:
    """Log2-spaced bucket edges covering microseconds through seconds."""
    edges = []
    edge = lo_ms
    while edge < hi_ms:
        edges.append(edge)
        edge *= 2.0
    return edges


class Histogram:
    """Cumulative-bucket histogram with per-bucket exemplars.

    Prometheus semantics: ``edges`` are upper bounds of ``len(edges)``
    finite buckets plus an implicit ``+Inf`` overflow bucket.  Each
    bucket remembers one **exemplar** — the (id, value) pair of the
    largest observation that landed in it — which is how the p99 tail of
    a latency histogram stays attributable to concrete request ids
    (OpenMetrics exemplars; see :mod:`repro.obs.expose`).
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count", "exemplars")

    def __init__(self, name: str, labels: dict, *, edges=None):
        self.name = name
        self.labels = labels
        self.edges = sorted(edges) if edges else default_latency_edges_ms()
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0
        #: per bucket: (exemplar_id, value) of the largest observation
        self.exemplars: list[tuple | None] = [None] * (len(self.edges) + 1)

    # ------------------------------------------------------------------
    def observe(self, value: float, *, exemplar=None) -> None:
        value = float(value)
        i = bisect_left(self.edges, value)
        self.counts[i] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            current = self.exemplars[i]
            if current is None or value >= current[1]:
                self.exemplars[i] = (exemplar, value)

    @property
    def value(self) -> float:
        """Registry-uniform scalar view: the total observation count."""
        return float(self.count)

    def quantile(self, q: float) -> float:
        """Upper bucket edge holding the q-quantile (Prometheus-style)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.edges[i] if i < len(self.edges) else float("inf")
        return float("inf")

    def tail_exemplars(self, q: float) -> list[tuple]:
        """Exemplars of every non-empty bucket at or above the q-quantile
        bucket — the request ids behind the p99 tail."""
        if self.count == 0:
            return []
        bound = self.quantile(q)
        out = []
        for i, ex in enumerate(self.exemplars):
            if ex is None:
                continue
            edge = self.edges[i] if i < len(self.edges) else float("inf")
            if edge >= bound:
                out.append(ex)
        return out

    def bucket_records(self) -> list[dict]:
        """Per-bucket records (le / count / exemplar), JSON-ready."""
        records = []
        for i, c in enumerate(self.counts):
            le = self.edges[i] if i < len(self.edges) else float("inf")
            ex = self.exemplars[i]
            records.append(
                {
                    "le": le if le != float("inf") else "+Inf",
                    "count": c,
                    "exemplar": (
                        {"id": ex[0], "value": ex[1]} if ex else None
                    ),
                }
            )
        return records


#: ProfileReport.as_dict() keys that accumulate across runs; the rest are
#: point-in-time observations and publish as gauges.
_REPORT_COUNTERS = frozenset(
    {
        "kernel_launches",
        "mem_load_bytes",
        "mem_atomic_store_bytes",
        "mem_total_bytes",
    }
)


class MetricsRegistry:
    """Holds every metric of a run (or a whole bench session)."""

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge] = {}

    # ------------------------------------------------------------------
    def _key(self, name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter(name, labels)
        elif not isinstance(metric, Counter):
            raise TypeError(f"{name}{labels} is already a Gauge")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge(name, labels)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"{name}{labels} is already a Counter")
        return metric

    def histogram(self, name: str, *, edges=None, **labels) -> Histogram:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(name, labels, edges=edges)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name}{labels} is already a {type(metric).__name__}")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def observe_report(self, report_dict: dict, **labels) -> None:
        """Publish a :meth:`ProfileReport.as_dict` into the registry.

        String-valued entries (system/model/dataset) become labels on
        every published metric; numeric entries become ``profile_<name>``
        counters/gauges.
        """
        tags = {
            k: v for k, v in report_dict.items() if isinstance(v, str)
        }
        tags.update(labels)
        for name, value in report_dict.items():
            if isinstance(value, str) or not isinstance(value, (int, float)):
                continue
            if name in _REPORT_COUNTERS:
                self.counter(f"profile_{name}", **tags).inc(value)
            else:
                self.gauge(f"profile_{name}", **tags).set(value)

    def observe_kernel_timing(self, name: str, timing, stats) -> None:
        """Publish one kernel's cost-model output (called by
        :func:`repro.gpusim.costmodel.estimate_kernel`)."""
        self.counter("kernel_estimates", kernel=name).inc()
        self.counter("kernel_total_bytes", kernel=name).inc(stats.total_bytes)
        self.counter("kernel_atomic_ops", kernel=name).inc(stats.atomic_ops)
        self.gauge("kernel_gpu_seconds", kernel=name).set(timing.gpu_seconds)
        self.gauge("kernel_occupancy", kernel=name).set(timing.occupancy)
        self.gauge(
            "kernel_sectors_per_request", kernel=name
        ).set(timing.sectors_per_request)

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """All metrics as flat records (sorted for stable output)."""
        records = []
        for (name, label_items), metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                records.append(
                    {
                        "name": name,
                        "type": "histogram",
                        "labels": dict(label_items),
                        "value": metric.value,
                        "sum": metric.sum,
                        "buckets": metric.bucket_records(),
                    }
                )
                continue
            records.append(
                {
                    "name": name,
                    "type": "counter" if isinstance(metric, Counter) else "gauge",
                    "labels": dict(label_items),
                    "value": metric.value,
                }
            )
        return records

    def dump_jsonl(self, path: str | Path, *, timestamp: float | None = None) -> int:
        """Append one JSON line per metric to ``path``; returns the count."""
        records = self.snapshot()
        stamp = time.time() if timestamp is None else timestamp
        with open(path, "a") as fh:
            for rec in records:
                rec["ts"] = stamp
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)


# ----------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are disabled."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or, with None, disable) the global registry; returns the
    previous one so callers can restore it."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
