"""Counter/gauge metrics registry with a JSONL sink.

:class:`~repro.gpusim.profiler.ProfileReport` (via ``publish()``) and the
cost model (:func:`repro.gpusim.costmodel.estimate_kernel`) publish into
the installed registry; nothing is recorded when no registry is installed
(the default — one module-global load on the hot path).

* **Counter** — monotonically accumulating quantity (sectors moved,
  atomic ops issued, kernels launched).
* **Gauge** — last-observed value (occupancy, SM utilization, runtime of
  the most recent run).

Metrics are keyed by name + sorted label items, Prometheus-style, e.g.::

    registry.counter("kernel_atomic_ops", kernel="spmm_coo_atomic").inc(n)

``dump_jsonl(path)`` appends one JSON object per metric so successive
runs accumulate an audit log; ``snapshot()`` returns the same records as
dicts for in-process assertions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["Counter", "Gauge", "MetricsRegistry", "get_registry", "set_registry"]


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """Last-observed value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: ProfileReport.as_dict() keys that accumulate across runs; the rest are
#: point-in-time observations and publish as gauges.
_REPORT_COUNTERS = frozenset(
    {
        "kernel_launches",
        "mem_load_bytes",
        "mem_atomic_store_bytes",
        "mem_total_bytes",
    }
)


class MetricsRegistry:
    """Holds every metric of a run (or a whole bench session)."""

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge] = {}

    # ------------------------------------------------------------------
    def _key(self, name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter(name, labels)
        elif not isinstance(metric, Counter):
            raise TypeError(f"{name}{labels} is already a Gauge")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge(name, labels)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"{name}{labels} is already a Counter")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def observe_report(self, report_dict: dict, **labels) -> None:
        """Publish a :meth:`ProfileReport.as_dict` into the registry.

        String-valued entries (system/model/dataset) become labels on
        every published metric; numeric entries become ``profile_<name>``
        counters/gauges.
        """
        tags = {
            k: v for k, v in report_dict.items() if isinstance(v, str)
        }
        tags.update(labels)
        for name, value in report_dict.items():
            if isinstance(value, str) or not isinstance(value, (int, float)):
                continue
            if name in _REPORT_COUNTERS:
                self.counter(f"profile_{name}", **tags).inc(value)
            else:
                self.gauge(f"profile_{name}", **tags).set(value)

    def observe_kernel_timing(self, name: str, timing, stats) -> None:
        """Publish one kernel's cost-model output (called by
        :func:`repro.gpusim.costmodel.estimate_kernel`)."""
        self.counter("kernel_estimates", kernel=name).inc()
        self.counter("kernel_total_bytes", kernel=name).inc(stats.total_bytes)
        self.counter("kernel_atomic_ops", kernel=name).inc(stats.atomic_ops)
        self.gauge("kernel_gpu_seconds", kernel=name).set(timing.gpu_seconds)
        self.gauge("kernel_occupancy", kernel=name).set(timing.occupancy)
        self.gauge(
            "kernel_sectors_per_request", kernel=name
        ).set(timing.sectors_per_request)

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """All metrics as flat records (sorted for stable output)."""
        records = []
        for (name, label_items), metric in sorted(self._metrics.items()):
            records.append(
                {
                    "name": name,
                    "type": "counter" if isinstance(metric, Counter) else "gauge",
                    "labels": dict(label_items),
                    "value": metric.value,
                }
            )
        return records

    def dump_jsonl(self, path: str | Path, *, timestamp: float | None = None) -> int:
        """Append one JSON line per metric to ``path``; returns the count."""
        records = self.snapshot()
        stamp = time.time() if timestamp is None else timestamp
        with open(path, "a") as fh:
            for rec in records:
                rec["ts"] = stamp
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(records)


# ----------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are disabled."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or, with None, disable) the global registry; returns the
    previous one so callers can restore it."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
