"""SLO accounting: error budgets, multi-window burn rates, alerting.

The serving tier admits per-class traffic against latency objectives; this
module turns its completion/shed stream into the SRE-style health signals
a fleet operator pages on:

* an :class:`SLO` declares, per job class, the latency target and the
  success objective (e.g. 99% of requests under 2.5 ms — an **error
  budget** of 1%);
* every completion is a *good* or *bad* event (bad = latency above
  target), every shed arrival is *bad* by definition;
* the **burn rate** over a window is the bad fraction in that window
  divided by the error budget — burn 1.0 spends the budget exactly at
  the sustainable pace, burn 10 exhausts it ten times too fast;
* a :class:`BurnRateRule` fires only when **both** a long and a short
  window exceed its factor (the classic multi-window guard: the long
  window proves the problem is real, the short window proves it is
  *still happening*, so a recovered burst cannot keep paging).

Everything runs on the simulated clock — windows are simulated seconds,
alert fire times are exact event timestamps, and identical seeds
reproduce identical alert sequences (the overload acceptance test pins
this).  The monitor also keeps *attribution*: how much of the burned
budget came from shedding vs latency violations, with exemplar request
ids for each.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

__all__ = [
    "SLO",
    "BurnRateRule",
    "BurnRateAlert",
    "SLOMonitor",
    "default_rules",
]


@dataclass(frozen=True)
class SLO:
    """One job class's service-level objective."""

    klass: str
    #: per-request end-to-end latency target (simulated ms)
    latency_ms: float
    #: target good fraction (0.99 = 1% error budget)
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn rate exceeds ``factor`` over BOTH windows."""

    name: str
    long_s: float
    short_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError("windows must satisfy 0 < short <= long")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


def default_rules(duration_s: float) -> tuple[BurnRateRule, ...]:
    """Multi-window rules scaled to a trace of ``duration_s`` simulated
    seconds (the serving analogue of the 1h/5m + 6h/30m page/ticket
    pair: windows shrink with the trace, ratios stay)."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    return (
        BurnRateRule(
            name="fast", long_s=duration_s / 4, short_s=duration_s / 24,
            factor=10.0,
        ),
        BurnRateRule(
            name="slow", long_s=duration_s / 2, short_s=duration_s / 8,
            factor=4.0,
        ),
    )


@dataclass(frozen=True)
class BurnRateAlert:
    """One rule firing for one class at one simulated instant."""

    klass: str
    rule: str
    fired_at_s: float
    burn_long: float
    burn_short: float
    factor: float

    def describe(self) -> str:
        return (
            f"[{self.klass}] {self.rule} burn-rate alert at "
            f"t={self.fired_at_s * 1e3:.3f} ms: long {self.burn_long:.1f}x / "
            f"short {self.burn_short:.1f}x >= {self.factor:.1f}x budget"
        )


@dataclass
class _ClassState:
    """Per-class event log (parallel arrays, time-sorted by construction)."""

    slo: SLO
    times: list[float] = field(default_factory=list)
    bads: list[bool] = field(default_factory=list)
    #: "latency" | "shed" per bad event index position (same len as times;
    #: None for good events)
    kinds: list[str | None] = field(default_factory=list)
    rids: list[int] = field(default_factory=list)
    good: int = 0
    bad_latency: int = 0
    bad_shed: int = 0
    #: rule name -> currently above threshold (edge-triggered alerts)
    active: dict[str, bool] = field(default_factory=dict)


class SLOMonitor:
    """Consumes per-request outcomes, maintains burn rates and alerts.

    Feed it :meth:`observe_completion` / :meth:`observe_shed` in event
    order (the serving loop's completion order is time-sorted); alerts
    are evaluated at every observation, so ``fired_at_s`` is the exact
    simulated instant the rule's condition first became true.  Alerts are
    edge-triggered: a rule re-fires only after its condition has cleared.
    """

    def __init__(self, slos, rules: tuple[BurnRateRule, ...]):
        self.rules = tuple(rules)
        self._classes: dict[str, _ClassState] = {
            slo.klass: _ClassState(slo=slo) for slo in slos
        }
        if not self._classes:
            raise ValueError("need at least one SLO")
        self.alerts: list[BurnRateAlert] = []

    # ------------------------------------------------------------------
    def _state(self, klass: str) -> _ClassState | None:
        return self._classes.get(klass)

    def observe_completion(
        self, klass: str, *, at_s: float, latency_ms: float, rid: int = -1
    ) -> bool:
        """Record one completion; returns True when it met its SLO."""
        st = self._state(klass)
        if st is None:
            return True
        good = latency_ms <= st.slo.latency_ms
        st.times.append(at_s)
        st.bads.append(not good)
        st.kinds.append(None if good else "latency")
        st.rids.append(rid)
        if good:
            st.good += 1
        else:
            st.bad_latency += 1
        self._check(st, at_s)
        return good

    def observe_shed(self, klass: str, *, at_s: float, rid: int = -1) -> None:
        """Record one shed arrival (always an SLO violation)."""
        st = self._state(klass)
        if st is None:
            return
        st.times.append(at_s)
        st.bads.append(True)
        st.kinds.append("shed")
        st.rids.append(rid)
        st.bad_shed += 1
        self._check(st, at_s)

    # ------------------------------------------------------------------
    def _window(self, st: _ClassState, window_s: float, now_s: float):
        lo = bisect_left(st.times, now_s - window_s)
        hi = bisect_right(st.times, now_s)
        return lo, hi

    def burn_rate(self, klass: str, window_s: float, now_s: float) -> float:
        """Bad fraction over the trailing window, divided by the budget.

        0.0 when the window holds no events (no traffic burns no budget).
        """
        st = self._classes[klass]
        lo, hi = self._window(st, window_s, now_s)
        total = hi - lo
        if total == 0:
            return 0.0
        bad = sum(st.bads[lo:hi])
        return (bad / total) / st.slo.budget

    def attribution(
        self, klass: str, window_s: float, now_s: float, *, exemplars: int = 3
    ) -> dict:
        """What burned the budget in the window: shed vs latency counts,
        with up to ``exemplars`` request ids of each."""
        st = self._classes[klass]
        lo, hi = self._window(st, window_s, now_s)
        out = {
            "shed": 0, "latency": 0,
            "shed_rids": [], "latency_rids": [],
        }
        for i in range(lo, hi):
            kind = st.kinds[i]
            if kind is None:
                continue
            out[kind] += 1
            key = f"{kind}_rids"
            if len(out[key]) < exemplars:
                out[key].append(st.rids[i])
        return out

    # ------------------------------------------------------------------
    def _check(self, st: _ClassState, now_s: float) -> None:
        for rule in self.rules:
            burn_long = self.burn_rate(st.slo.klass, rule.long_s, now_s)
            burn_short = self.burn_rate(st.slo.klass, rule.short_s, now_s)
            above = burn_long >= rule.factor and burn_short >= rule.factor
            was_above = st.active.get(rule.name, False)
            if above and not was_above:
                self.alerts.append(
                    BurnRateAlert(
                        klass=st.slo.klass, rule=rule.name,
                        fired_at_s=now_s, burn_long=burn_long,
                        burn_short=burn_short, factor=rule.factor,
                    )
                )
            st.active[rule.name] = above

    @property
    def fired(self) -> bool:
        return bool(self.alerts)

    # ------------------------------------------------------------------
    def summary(self, now_s: float) -> dict:
        """JSON-ready per-class health snapshot at simulated ``now_s``."""
        classes = {}
        for klass, st in sorted(self._classes.items()):
            total = st.good + st.bad_latency + st.bad_shed
            bad = st.bad_latency + st.bad_shed
            bad_fraction = bad / total if total else 0.0
            longest = max((r.long_s for r in self.rules), default=now_s)
            classes[klass] = {
                "slo_latency_ms": st.slo.latency_ms,
                "objective": st.slo.objective,
                "events": total,
                "good": st.good,
                "bad_latency": st.bad_latency,
                "bad_shed": st.bad_shed,
                "bad_fraction": bad_fraction,
                #: whole-run budget consumption (1.0 = budget exhausted)
                "budget_used": (
                    bad_fraction / st.slo.budget if total else 0.0
                ),
                "burn_rates": {
                    rule.name: {
                        "long": self.burn_rate(klass, rule.long_s, now_s),
                        "short": self.burn_rate(klass, rule.short_s, now_s),
                        "factor": rule.factor,
                        "active": st.active.get(rule.name, False),
                    }
                    for rule in self.rules
                },
                "attribution": self.attribution(klass, longest, now_s),
            }
        return {
            "now_s": now_s,
            "classes": classes,
            "alerts": [
                {
                    "klass": a.klass, "rule": a.rule,
                    "fired_at_s": a.fired_at_s, "burn_long": a.burn_long,
                    "burn_short": a.burn_short, "factor": a.factor,
                }
                for a in self.alerts
            ],
        }
