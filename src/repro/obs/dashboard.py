"""Terminal SLO dashboard: ``repro top``.

Renders an :class:`~repro.obs.slo.SLOMonitor` summary (plus, optionally,
a :class:`~repro.serve.service.ServeReport`) as a fixed-width text panel:
per-class error-budget gauges, burn rates for every rule with their
firing state, shed-vs-latency attribution with exemplar request ids, and
the alert log.  Pure string formatting over the already-JSON-ready
``summary()`` dict — no curses, no terminal control codes — so the same
renderer serves the CLI, tests, and CI logs.
"""

from __future__ import annotations

__all__ = ["render_top", "render_bar"]

_WIDTH = 72


def render_bar(fraction: float, *, width: int = 24) -> str:
    """A ``[####----]`` gauge; clamps to [0, 1] and flags overflow."""
    clamped = min(max(fraction, 0.0), 1.0)
    filled = round(clamped * width)
    bar = "#" * filled + "-" * (width - filled)
    mark = "!" if fraction > 1.0 else " "
    return f"[{bar}]{mark}"


def _class_panel(klass: str, stats: dict) -> list[str]:
    lines = [
        f"class {klass}  (SLO: p(good) >= {stats['objective']:.2%} "
        f"under {stats['slo_latency_ms']:.4f} ms)",
        f"  events {stats['events']:>6}   good {stats['good']:>6}   "
        f"bad {stats['bad_latency'] + stats['bad_shed']:>6} "
        f"(latency {stats['bad_latency']}, shed {stats['bad_shed']})",
        f"  budget {render_bar(stats['budget_used'])} "
        f"{stats['budget_used']:7.2%} used",
    ]
    for rule, burn in stats.get("burn_rates", {}).items():
        state = "FIRING" if burn.get("active") else "ok"
        lines.append(
            f"  burn[{rule:<5}] long {burn['long']:7.2f}x  "
            f"short {burn['short']:7.2f}x  "
            f"(page at {burn['factor']:.0f}x)  {state}"
        )
    attr = stats.get("attribution")
    if attr and (attr["shed"] or attr["latency"]):
        bits = []
        if attr["latency"]:
            rids = ",".join(str(r) for r in attr["latency_rids"])
            bits.append(f"latency x{attr['latency']} (rids {rids})")
        if attr["shed"]:
            rids = ",".join(str(r) for r in attr["shed_rids"])
            bits.append(f"shed x{attr['shed']} (rids {rids})")
        lines.append("  burned by: " + "; ".join(bits))
    return lines


def render_top(summary: dict, *, report=None) -> str:
    """Render one monitor ``summary()`` (and optional serve report) as a
    text dashboard."""
    rule = "=" * _WIDTH
    lines = [
        rule,
        f"repro top — SLO health at t={summary['now_s'] * 1e3:.3f} ms "
        "(simulated)",
        rule,
    ]
    for klass, stats in summary["classes"].items():
        lines.extend(_class_panel(klass, stats))
        lines.append("-" * _WIDTH)
    alerts = summary.get("alerts", [])
    if alerts:
        lines.append(f"alerts ({len(alerts)}):")
        for a in alerts:
            lines.append(
                f"  [{a['klass']}] {a['rule']} fired at "
                f"t={a['fired_at_s'] * 1e3:.3f} ms "
                f"(long {a['burn_long']:.1f}x / short {a['burn_short']:.1f}x "
                f">= {a['factor']:.0f}x)"
            )
    else:
        lines.append("alerts: none — error budget burning sustainably")
    if report is not None:
        lines.append("-" * _WIDTH)
        lines.append(
            f"serving: completed {report.completed}/{report.arrived} "
            f"(shed {report.shed})  p50 {report.p50_ms:.4f} ms  "
            f"p99 {report.p99_ms:.4f} ms  "
            f"{report.throughput_rps:,.0f} req/s"
        )
    lines.append(rule)
    return "\n".join(lines)
