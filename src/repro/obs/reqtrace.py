"""Request-level tracing: one span tree per served inference request.

:mod:`repro.obs.tracer` answers "where did this *run* spend its time";
this module answers the serving question — "where did this *request*
spend its time".  A :class:`RequestContext` (request id + job class) is
attached to every request at admission and propagated through the
batcher, the stream scheduler (:class:`~repro.gpusim.streams.
StreamKernel` carries a :class:`BatchContext`), and down into per-kernel
execution, so each completed request owns a span tree with an exact
four-stage breakdown:

* **queue** — admission processing plus every wait on the device path
  (host launch serialization, stream FIFO, co-residency slots),
* **batch** — time parked in the micro-batcher before dispatch,
* **launch** — host time actually issuing this batch's kernel launches,
* **kernel** — device execution time (under multi-stream contention).

The four stages partition ``[arrival, finish]`` exactly: their sum equals
the recorded end-to-end latency to float precision, which the acceptance
test pins.  All timestamps are *simulated* seconds (DESIGN.md,
"Determinism rules") — identical seeds reproduce identical trees.

Like the tracer and the metrics registry, collection is opt-in and free
when disabled: the serving loop loads one module global per run and
records nothing unless a :class:`RequestTraceCollector` is installed via
:func:`set_request_collector`.

Export: :meth:`RequestTraceCollector.to_chrome_trace` renders one track
per request (root span + per-kernel launch/exec children, Perfetto
loadable) plus one track per stream; :meth:`RequestTrace.render_tree`
prints the queryable span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RequestContext",
    "BatchContext",
    "KernelSpan",
    "RequestTrace",
    "RequestTraceCollector",
    "get_request_collector",
    "set_request_collector",
    "current_batch_context",
    "push_batch_context",
    "pop_batch_context",
]


@dataclass(frozen=True)
class RequestContext:
    """Identity of one request as it flows through the serving pipeline."""

    rid: int
    #: job class ("full" | "targets" | a tenant class) — the SLO key
    klass: str


@dataclass(frozen=True)
class BatchContext:
    """Identity of one dispatched micro-batch (a set of request contexts)."""

    bid: int
    klass: str
    rids: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.rids)


@dataclass(frozen=True)
class KernelSpan:
    """One kernel of a batch's plan, with its full stream lifecycle."""

    name: str
    stream: int
    enqueue_s: float
    launch_start_s: float
    ready_s: float
    start_s: float
    finish_s: float

    @property
    def launch_s(self) -> float:
        """Host time issuing this launch."""
        return self.ready_s - self.launch_start_s

    @property
    def exec_s(self) -> float:
        """Device execution time (includes contention stretch)."""
        return self.finish_s - self.start_s


@dataclass
class RequestTrace:
    """The span tree of one completed (or shed) request."""

    ctx: RequestContext
    arrival_s: float
    #: admitted into the batcher (== arrival in the current model)
    enqueue_s: float | None = None
    dispatch_s: float | None = None
    finish_s: float | None = None
    batch_id: int | None = None
    batch_size: int = 0
    shed: bool = False
    #: the batch's kernel lifecycle (shared by every request of the batch)
    kernels: list[KernelSpan] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.finish_s is not None and not self.shed

    @property
    def latency_s(self) -> float:
        """End-to-end simulated latency (0.0 while open or shed)."""
        if self.finish_s is None:
            return 0.0
        return self.finish_s - self.arrival_s

    # stage decomposition ----------------------------------------------
    @property
    def batch_wait_s(self) -> float:
        """Stage 2: parked in the micro-batcher awaiting a trigger."""
        if self.dispatch_s is None or self.enqueue_s is None:
            return 0.0
        return self.dispatch_s - self.enqueue_s

    @property
    def launch_total_s(self) -> float:
        """Stage 3: host time issuing this batch's kernel launches."""
        return sum(k.launch_s for k in self.kernels)

    @property
    def kernel_total_s(self) -> float:
        """Stage 4: device execution time across the batch's kernels."""
        return sum(k.exec_s for k in self.kernels)

    @property
    def queue_s(self) -> float:
        """Stage 1: everything else — admission processing plus host /
        stream / co-residency waits between dispatch and finish.

        Computed as the residual of the exact partition, so the four
        stages always sum to the end-to-end latency.
        """
        if self.finish_s is None or self.dispatch_s is None:
            return 0.0
        admit = (self.enqueue_s or self.arrival_s) - self.arrival_s
        device = (
            (self.finish_s - self.dispatch_s)
            - self.launch_total_s
            - self.kernel_total_s
        )
        return admit + device

    def stages(self) -> dict[str, float]:
        """The four-stage breakdown (seconds); sums to ``latency_s``."""
        return {
            "queue": self.queue_s,
            "batch": self.batch_wait_s,
            "launch": self.launch_total_s,
            "kernel": self.kernel_total_s,
        }

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready record (the request-trace schema in DESIGN.md)."""
        return {
            "rid": self.ctx.rid,
            "klass": self.ctx.klass,
            "arrival_s": self.arrival_s,
            "enqueue_s": self.enqueue_s,
            "dispatch_s": self.dispatch_s,
            "finish_s": self.finish_s,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "shed": self.shed,
            "latency_ms": self.latency_s * 1e3,
            "stages_ms": {k: v * 1e3 for k, v in self.stages().items()},
            "kernels": [
                {
                    "name": k.name,
                    "stream": k.stream,
                    "launch_ms": k.launch_s * 1e3,
                    "exec_ms": k.exec_s * 1e3,
                }
                for k in self.kernels
            ],
        }

    def render_tree(self) -> str:
        """Human-readable span tree of this request."""
        if self.shed:
            return (
                f"request #{self.ctx.rid} [{self.ctx.klass}] "
                f"SHED at t={self.arrival_s * 1e3:.4f} ms"
            )
        stages = self.stages()
        lines = [
            f"request #{self.ctx.rid} [{self.ctx.klass}] "
            f"latency {self.latency_s * 1e3:.4f} ms "
            f"(batch {self.batch_id}, size {self.batch_size})",
            f"├─ queue   {stages['queue'] * 1e3:10.4f} ms",
            f"├─ batch   {stages['batch'] * 1e3:10.4f} ms",
            f"├─ launch  {stages['launch'] * 1e3:10.4f} ms",
            f"└─ kernel  {stages['kernel'] * 1e3:10.4f} ms",
        ]
        for i, k in enumerate(self.kernels):
            tee = "└─" if i == len(self.kernels) - 1 else "├─"
            lines.append(
                f"   {tee} {k.name} [stream {k.stream}] "
                f"launch {k.launch_s * 1e6:.2f} us + "
                f"exec {k.exec_s * 1e6:.2f} us"
            )
        return "\n".join(lines)


class RequestTraceCollector:
    """Builds one :class:`RequestTrace` per request from serving events.

    The :class:`~repro.serve.service.InferenceService` feeds it at each
    lifecycle edge (admit / shed / dispatch / kernel completion / batch
    finish); batches share their kernel-span list, so a batch of B
    requests costs one list, not B copies.
    """

    def __init__(self):
        #: completed + shed traces, in finish (resp. shed) order
        self.traces: list[RequestTrace] = []
        #: finished batches: bid -> (context, shared kernel spans)
        self.batches: dict[int, tuple[BatchContext, list[KernelSpan]]] = {}
        self._open: dict[int, RequestTrace] = {}
        #: batch id -> shared kernel-span list of that batch
        self._batch_kernels: dict[int, list[KernelSpan]] = {}

    # ------------------------------------------------------------------
    def record_admit(
        self, ctx: RequestContext, *, arrival_s: float, enqueue_s: float
    ) -> None:
        self._open[ctx.rid] = RequestTrace(
            ctx=ctx, arrival_s=arrival_s, enqueue_s=enqueue_s
        )

    def record_shed(self, ctx: RequestContext, *, at_s: float) -> None:
        self.traces.append(
            RequestTrace(ctx=ctx, arrival_s=at_s, shed=True)
        )

    def record_dispatch(self, bctx: BatchContext, *, dispatch_s: float) -> None:
        kernels = self._batch_kernels.setdefault(bctx.bid, [])
        for rid in bctx.rids:
            trace = self._open.get(rid)
            if trace is None:  # request admitted before collector install
                continue
            trace.dispatch_s = dispatch_s
            trace.batch_id = bctx.bid
            trace.batch_size = bctx.size
            trace.kernels = kernels

    def record_kernel(self, bctx: BatchContext, span: KernelSpan) -> None:
        self._batch_kernels.setdefault(bctx.bid, []).append(span)

    def record_finish(self, bctx: BatchContext, *, finish_s: float) -> None:
        for rid in bctx.rids:
            trace = self._open.pop(rid, None)
            if trace is None:
                continue
            trace.finish_s = finish_s
            self.traces.append(trace)
        self.batches[bctx.bid] = (
            bctx, self._batch_kernels.pop(bctx.bid, []),
        )

    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[RequestTrace]:
        return [t for t in self.traces if t.completed]

    @property
    def shed(self) -> list[RequestTrace]:
        return [t for t in self.traces if t.shed]

    def get(self, rid: int) -> RequestTrace | None:
        """Query one request's trace by id (completed or shed)."""
        for t in self.traces:
            if t.ctx.rid == rid:
                return t
        return self._open.get(rid)

    def slowest(self, n: int = 1) -> list[RequestTrace]:
        """The ``n`` highest-latency completed requests (the p99 tail)."""
        return sorted(
            self.completed, key=lambda t: t.latency_s, reverse=True
        )[:n]

    # ------------------------------------------------------------------
    def to_chrome_trace(self, *, request_pid: int = 3, stream_pid: int = 4) -> list[dict]:
        """Chrome trace events: one track per request, one per stream.

        All timestamps are simulated microseconds.  Request tracks nest
        the root request span over its batch/launch/kernel children;
        stream tracks show each kernel with the request ids it served.
        """
        events: list[dict] = [
            {
                "name": "process_name", "ph": "M", "pid": request_pid,
                "tid": 0, "ts": 0,
                "args": {"name": "requests (simulated clock)"},
            },
            {
                "name": "process_name", "ph": "M", "pid": stream_pid,
                "tid": 0, "ts": 0,
                "args": {"name": "streams (simulated clock)"},
            },
        ]

        def span_event(name, pid, tid, t0, t1, **args):
            return {
                "name": name, "ph": "X", "pid": pid, "tid": tid,
                "ts": t0 * 1e6, "dur": max(t1 - t0, 0.0) * 1e6,
                "args": args,
            }

        for t in self.completed:
            tid = t.ctx.rid + 1  # tid 0 is the metadata track
            stages = {k: v * 1e3 for k, v in t.stages().items()}
            events.append(
                span_event(
                    f"request #{t.ctx.rid}", request_pid, tid,
                    t.arrival_s, t.finish_s,
                    klass=t.ctx.klass, batch=t.batch_id,
                    batch_size=t.batch_size, stages_ms=stages,
                )
            )
            if t.dispatch_s is not None and t.enqueue_s is not None:
                events.append(
                    span_event(
                        "batch_wait", request_pid, tid,
                        t.enqueue_s, t.dispatch_s, batch=t.batch_id,
                    )
                )
            for k in t.kernels:
                events.append(
                    span_event(
                        f"launch {k.name}", request_pid, tid,
                        k.launch_start_s, k.ready_s, stream=k.stream,
                    )
                )
                events.append(
                    span_event(
                        f"kernel {k.name}", request_pid, tid,
                        k.start_s, k.finish_s, stream=k.stream,
                    )
                )
        for bid, (bctx, kernels) in sorted(self.batches.items()):
            for k in kernels:
                events.append(
                    span_event(
                        k.name, stream_pid, k.stream + 1,
                        k.start_s, k.finish_s,
                        batch=bid, klass=bctx.klass, rids=list(bctx.rids),
                    )
                )
        return events


# ----------------------------------------------------------------------
# module-global collector: None = disabled (the default, allocation-free)
_COLLECTOR: RequestTraceCollector | None = None

#: stack of batch contexts currently being planned/executed, so offline
#: pipeline spans (``execute_plan``, ``GNNSystem.run``) can annotate
#: themselves with the request ids they serve
_BATCH_STACK: list[BatchContext] = []


def get_request_collector() -> RequestTraceCollector | None:
    """The installed collector, or None when request tracing is disabled."""
    return _COLLECTOR


def set_request_collector(
    collector: RequestTraceCollector | None,
) -> RequestTraceCollector | None:
    """Install (or, with None, disable) the request-trace collector;
    returns the previous one so callers can restore it."""
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector
    return previous


def current_batch_context() -> BatchContext | None:
    """The batch context being planned/executed right now, if any."""
    return _BATCH_STACK[-1] if _BATCH_STACK else None


def push_batch_context(bctx: BatchContext) -> None:
    _BATCH_STACK.append(bctx)


def pop_batch_context() -> BatchContext | None:
    return _BATCH_STACK.pop() if _BATCH_STACK else None
