"""Persistent archive of profiled runs + counter-regression diff engine.

Every archived run is one JSON file holding a schema version, a **config
fingerprint** (dataset, seed, feat_dim, max_edges, and the full GPUSpec —
two runs are only comparable when their fingerprints match), and the full
:meth:`~repro.gpusim.profiler.ProfileReport.as_dict` metric set.  The
diff engine compares two archived runs metric-by-metric against
per-metric tolerances and flags regressions, which is what lets a perf PR
*prove* its speedup (or an accidental counter drift) against an archived
baseline: ``python -m repro diff baseline.json candidate.json`` exits
non-zero and names the offending metric.

Tolerances distinguish three metric classes:

* **modeled counters** (bytes moved, kernel launches, sector/request) are
  deterministic functions of the access pattern — tolerance 0;
* **modeled times/ratios** (runtime, occupancy, …) are deterministic too
  but float-accumulated — a small relative tolerance absorbs refactors
  that only reorder float math;
* **host wall times** (pre-processing) genuinely vary run to run — a wide
  relative band plus an absolute floor.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_TOLERANCES",
    "Tolerance",
    "MetricDelta",
    "DiffResult",
    "ProfileArchive",
    "config_fingerprint",
    "diff_runs",
    "load_run",
]

#: bump when the archive file layout changes incompatibly
SCHEMA_VERSION = 1


def config_fingerprint(
    *, dataset: str, seed: int, feat_dim: int, max_edges: int | None = None,
    spec=None, model: str | None = None, system: str | None = None,
    graph=None,
) -> str:
    """Stable hash of everything that determines a run's counters.

    ``graph`` (a :class:`~repro.graph.csr.CSRGraph`) optionally mixes the
    loaded graph's content hash into the fingerprint, so two runs only
    compare when they processed byte-identical topology — not merely the
    same dataset name.  Omitting it keeps the historical hash, so archives
    recorded before content fingerprinting stay diffable.
    """
    payload = {
        "dataset": dataset,
        "seed": seed,
        "feat_dim": feat_dim,
        "max_edges": max_edges,
        "model": model,
        "system": system,
        "spec": asdict(spec) if spec is not None else None,
    }
    if graph is not None:
        payload["graph"] = graph.fingerprint()
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift for one metric: relative band + absolute floor."""

    rel: float = 0.0
    abs: float = 0.0

    def allows(self, baseline: float, candidate: float) -> bool:
        delta = abs(candidate - baseline)
        return delta <= max(self.rel * abs(baseline), self.abs, 1e-12)


#: per-metric tolerances for ProfileReport.as_dict() entries
DEFAULT_TOLERANCES: dict[str, Tolerance] = {
    # modeled counters: exact
    "kernel_launches": Tolerance(),
    "mem_load_bytes": Tolerance(),
    "mem_atomic_store_bytes": Tolerance(),
    "mem_total_bytes": Tolerance(),
    "global_mem_usage_bytes": Tolerance(),
    "sectors_per_request": Tolerance(rel=1e-9),
    # modeled times & derived ratios: small float band
    "runtime_ms": Tolerance(rel=0.02),
    "gpu_time_ms": Tolerance(rel=0.02),
    "launch_overhead_ms": Tolerance(rel=0.02),
    "sm_utilization": Tolerance(rel=0.02),
    "achieved_occupancy": Tolerance(rel=0.02),
    "stall_long_scoreboard": Tolerance(rel=0.02),
    # host wall time: genuinely nondeterministic
    "preprocess_ms": Tolerance(rel=0.75, abs=5.0),
}

#: applied to numeric metrics with no entry above (extras etc.)
_FALLBACK_TOLERANCE = Tolerance(rel=0.05)


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    metric: str
    baseline: float
    candidate: float
    tolerance: Tolerance
    regressed: bool

    @property
    def rel_delta(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        arrow = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric:<24} {self.baseline:>16.6g} -> "
            f"{self.candidate:>16.6g}  ({self.rel_delta:+.2%})  [{arrow}]"
        )


@dataclass
class DiffResult:
    """Outcome of diffing two archived runs."""

    deltas: list[MetricDelta]
    fingerprint_match: bool
    missing_metrics: list[str]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_metrics

    def render(self) -> str:
        lines = []
        if not self.fingerprint_match:
            lines.append(
                "WARNING: config fingerprints differ — runs are not the same "
                "workload; deltas below compare apples to oranges"
            )
        for d in self.deltas:
            lines.append("  " + d.describe())
        for m in self.missing_metrics:
            lines.append(f"  {m:<24} missing from candidate  [REGRESSED]")
        n = len(self.regressions) + len(self.missing_metrics)
        lines.append(
            "PASS: no counter regressions" if self.ok
            else f"FAIL: {n} metric(s) regressed: "
            + ", ".join(
                [d.metric for d in self.regressions] + self.missing_metrics
            )
        )
        return "\n".join(lines)


def diff_runs(
    baseline: dict, candidate: dict, *, tolerances: dict[str, Tolerance] | None = None
) -> DiffResult:
    """Compare two archive entries (as loaded dicts) metric by metric."""
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    base_m, cand_m = baseline["metrics"], candidate["metrics"]
    deltas: list[MetricDelta] = []
    missing: list[str] = []
    for name, b in base_m.items():
        if isinstance(b, str) or not isinstance(b, (int, float)):
            continue
        if name not in cand_m:
            missing.append(name)
            continue
        c = cand_m[name]
        t = tol.get(name, _FALLBACK_TOLERANCE)
        deltas.append(
            MetricDelta(
                metric=name, baseline=float(b), candidate=float(c),
                tolerance=t, regressed=not t.allows(float(b), float(c)),
            )
        )
    return DiffResult(
        deltas=deltas,
        fingerprint_match=baseline.get("fingerprint") == candidate.get("fingerprint"),
        missing_metrics=missing,
    )


def load_run(path: str | Path) -> dict:
    """Load and schema-check one archived run."""
    with open(path) as fh:
        entry = json.load(fh)
    version = entry.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: archive schema {version!r} != supported {SCHEMA_VERSION}"
        )
    if "metrics" not in entry or "fingerprint" not in entry:
        raise ValueError(f"{path}: not a profile-archive entry")
    return entry


class ProfileArchive:
    """Directory of archived profile runs (one JSON file per run)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def record(
        self,
        report,
        *,
        seed: int,
        feat_dim: int,
        max_edges: int | None = None,
        spec=None,
        graph=None,
        extra: dict | None = None,
    ) -> Path:
        """Persist one :class:`ProfileReport`; returns the file path."""
        fp = config_fingerprint(
            dataset=report.dataset, seed=seed, feat_dim=feat_dim,
            max_edges=max_edges, spec=spec, model=report.model,
            system=report.system, graph=graph,
        )
        entry = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fp,
            "recorded_unix": time.time(),
            "config": {
                "system": report.system,
                "model": report.model,
                "dataset": report.dataset,
                "seed": seed,
                "feat_dim": feat_dim,
                "max_edges": max_edges,
                "spec": asdict(spec) if spec is not None else None,
            },
            "metrics": report.as_dict(),
        }
        if extra:
            entry["extra"] = extra
        stem = f"{report.system}-{report.model}-{report.dataset}-{fp}".lower()
        n = len(list(self.root.glob(f"{stem}-*.json")))
        path = self.root / f"{stem}-{n:03d}.json"
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        return path

    def runs(self, *, fingerprint: str | None = None) -> list[Path]:
        """Archived run files, oldest first (by recording order)."""
        paths = sorted(self.root.glob("*.json"))
        if fingerprint is None:
            return paths
        return [p for p in paths if load_run(p)["fingerprint"] == fingerprint]

    def latest(self, *, fingerprint: str | None = None) -> Path | None:
        paths = self.runs(fingerprint=fingerprint)
        return paths[-1] if paths else None
