"""Prometheus/OpenMetrics text exposition of a metrics registry.

``repro metrics --expose`` (and any embedding server) renders the
installed :class:`~repro.obs.metrics.MetricsRegistry` — or a JSONL
snapshot written by ``--metrics-out`` — in the Prometheus text format:

    # TYPE serve_latency_ms histogram
    serve_latency_ms_bucket{serve="...",le="0.512"} 41
    serve_latency_ms_bucket{serve="...",le="+Inf"} 64 # {rid="53"} 1.84
    serve_latency_ms_sum{serve="..."} 31.5
    serve_latency_ms_count{serve="..."} 64

Histogram buckets carry OpenMetrics **exemplars** (`# {rid="53"} value`)
so the p99 tail stays clickable back to concrete request ids.  Metric
and label names are sanitized to the Prometheus grammar; label values
are escaped.  Output is sorted (name, then labels) so two runs of the
same workload diff cleanly.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = ["render_prometheus", "records_from_jsonl"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_FIRST_RE = re.compile(r"^[^a-zA-Z_:]")


def _sanitize_name(name: str) -> str:
    return _FIRST_RE.sub("_", _NAME_RE.sub("_", name))


def _escape_value(value) -> str:
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{_sanitize_name(str(k))}="{_escape_value(v)}"'
        for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def records_from_jsonl(path: str | Path) -> list[dict]:
    """Load metric records from a ``dump_jsonl`` file.

    The JSONL sink appends one snapshot per dump; for each metric key the
    *last* record wins, so re-exposing a long-running audit log shows the
    final state rather than every historical value.
    """
    latest: dict[tuple, dict] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            key = (rec["name"], tuple(sorted(rec.get("labels", {}).items())))
            latest[key] = rec
    return [latest[k] for k in sorted(latest)]


def render_prometheus(source) -> str:
    """Render a registry (or its ``snapshot()`` record list) as
    Prometheus exposition text."""
    records = source if isinstance(source, list) else source.snapshot()
    by_name: dict[str, list[dict]] = {}
    for rec in records:
        by_name.setdefault(rec["name"], []).append(rec)
    lines: list[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        pname = _sanitize_name(name)
        mtype = group[0].get("type", "gauge")
        lines.append(f"# TYPE {pname} {mtype}")
        for rec in group:
            labels = rec.get("labels", {})
            if rec.get("type") == "histogram":
                cumulative = 0
                for bucket in rec.get("buckets", []):
                    cumulative += bucket["count"]
                    le = bucket["le"]
                    le_txt = le if le == "+Inf" else _fmt(le)
                    line = (
                        f"{pname}_bucket{_labels(labels, {'le': le_txt})} "
                        f"{cumulative}"
                    )
                    ex = bucket.get("exemplar")
                    if ex is not None:
                        line += (
                            f' # {{rid="{_escape_value(ex["id"])}"}} '
                            f'{_fmt(ex["value"])}'
                        )
                    lines.append(line)
                lines.append(
                    f"{pname}_sum{_labels(labels)} {_fmt(rec.get('sum', 0.0))}"
                )
                lines.append(
                    f"{pname}_count{_labels(labels)} {_fmt(rec['value'])}"
                )
            else:
                lines.append(
                    f"{pname}{_labels(labels)} {_fmt(rec['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
