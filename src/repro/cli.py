"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets            print the Table-4 registry (spec + loaded stand-in)
run                 profile one (system, model, dataset) cell
compare             run all four systems on one cell and rank them
experiment          regenerate a paper table/figure by id (table1..fig12)
validate            check the paper's shape claims (exit 1 on failure)
report              regenerate every table & figure into one document
roofline            roofline-classify every kernel of a system's pipeline
trace               profile one cell and export a Chrome-trace timeline
                    (one track per simulated SM; Perfetto loadable)
diff                compare two archived profile runs metric-by-metric;
                    exit 1 when a counter regressed beyond tolerance
serve               simulated online inference serving (open-loop trace,
                    dynamic batching, admission control, CUDA-like
                    streams); --compare runs the cross-system scenario;
                    --trace exports per-request span trees as a Chrome
                    trace, --tree prints the slowest requests' trees,
                    --slo-ms enables SLO burn-rate monitoring
top                 serve one workload with SLO monitoring and render the
                    terminal health dashboard (error budgets, multi-window
                    burn rates, shed/latency attribution, alert log)
metrics             Prometheus-style text exposition of serving metrics:
                    either re-expose a --metrics-out JSONL file
                    (--from-jsonl) or run a small serving workload and
                    expose its registry (histograms carry request-id
                    exemplars)
regress             perf-regression observatory: re-run the recorded
                    probes at HEAD and compare against the BENCH_*.json
                    trajectory (directional tolerances; exit 1 on
                    regression); --record appends a new trajectory point
plan                lower one (dataset, model) cell and print each
                    system's ExecutionPlan (kernel list, balance choice,
                    fusion structure, content fingerprint)
opt                 run the repro.opt pass pipeline on one cell and show
                    each pass's rewrite decision (legality re-linted,
                    profit scored with the shared cost model)
tune                auto-tune the compute-kernel knob space of one or
                    more cells (deterministic seeded search, budgeted);
                    persists winners in the tuned-plan store that
                    ``run --opt search`` / ``serve --opt search`` replay
lint                statically analyze lowered plans for hazards, resource
                    limits, nondeterminism sources, and memory-access
                    patterns (coalescing / divergence / bounds — no
                    execution); --json emits a stable finding array,
                    --format sarif a SARIF 2.1.0 log, --baseline
                    suppresses known findings, --explain CODE
                    documents one rule; --strict exits 1 on error-severity
                    findings (with --baseline: on any unsuppressed finding)
verify              translation validation: certify that the optimizer's
                    rewrites preserve each cell's dataflow normal form
                    (default grid: the 24 golden cells); prints per-cell
                    verdicts + certificate ids, explains any failure as
                    the minimal diverging term; --json / --format sarif
                    for machine consumption; exit 1 on any failed cell
udf                 describe a registered message-passing UDF: the spec
                    signature, what each framework derives from its terms
                    (support decision + kernel pipeline), and the fused
                    kernel's derived effect/access tables; with no model
                    argument, list every registered model
"""

from __future__ import annotations

import argparse
import sys

from .bench import ALL_EXPERIMENTS, BenchConfig, get_dataset, make_features, run_system
from .frameworks import SYSTEMS
from .gpusim import roofline
from .obs import ProfileArchive, Tracer, diff_runs, load_run, set_tracer

__all__ = ["main", "build_parser"]


def _model_choices() -> list[str]:
    """CLI model names come from the UDF registry, not a frozen list —
    models registered before ``main()`` are immediately runnable."""
    from .mp import registered_models

    return sorted(registered_models())


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="TLPGNN reproduction: profile GNN graph convolution on a "
        "modeled GPU.",
    )
    p.add_argument(
        "--max-edges",
        type=int,
        default=2_000_000,
        help="cap for synthetic dataset stand-ins (default 2M)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--feat", type=int, default=32, help="feature dimension")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the dataset registry")

    run = sub.add_parser("run", help="profile one system/model/dataset cell")
    run.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    run.add_argument("--model", choices=_model_choices(), default="gcn")
    run.add_argument("--dataset", default="CR")
    run.add_argument("--archive", default=None, metavar="DIR",
                     help="also record the profile into this archive directory")
    run.add_argument("--opt", choices=["off", "safe", "search"], default=None,
                     help="plan-IR optimizer level (see the opt command)")

    cmp_ = sub.add_parser("compare", help="run all systems on one cell")
    cmp_.add_argument("--model", choices=_model_choices(), default="gcn")
    cmp_.add_argument("--dataset", default="CR")

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument("id", choices=sorted(ALL_EXPERIMENTS))

    val = sub.add_parser("validate", help="check the paper's shape claims")
    val.add_argument("--only", nargs="*", help="claim ids to run (default all)")

    rep = sub.add_parser("report", help="regenerate every table & figure")
    rep.add_argument("--out", default=None,
                     help="write the full report to this file (default stdout)")

    roof = sub.add_parser("roofline", help="roofline-classify a pipeline")
    roof.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    roof.add_argument("--model", choices=_model_choices(), default="gcn")
    roof.add_argument("--dataset", default="CR")

    tr = sub.add_parser(
        "trace", help="profile one cell and export a Chrome-trace timeline"
    )
    tr.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    tr.add_argument("--model", choices=_model_choices(), default="gcn")
    tr.add_argument("--dataset", default="CR")
    tr.add_argument("--out", default="trace.json",
                    help="timeline output path (default trace.json)")
    tr.add_argument("--archive", default=None, metavar="DIR",
                    help="also record the profile into this archive directory")
    tr.add_argument("--max-block-events", type=int, default=20_000,
                    help="per-kernel cap on replayed block events")

    diff = sub.add_parser(
        "diff", help="compare two archived profile runs (exit 1 on regression)"
    )
    diff.add_argument("baseline", help="archived run JSON (the reference)")
    diff.add_argument("candidate", help="archived run JSON to check")

    sv = sub.add_parser(
        "serve", help="simulated online inference serving on the modeled GPU"
    )
    sv.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    sv.add_argument("--model", choices=_model_choices(), default="gcn")
    sv.add_argument("--dataset", default="CR")
    sv.add_argument("--arrival", choices=["poisson", "bursty"], default="poisson")
    sv.add_argument("--rate", type=float, default=None,
                    help="offered req/s (default: half the system's offline "
                    "service rate, i.e. 0.5/runtime)")
    sv.add_argument("--requests", type=int, default=200,
                    help="trace length (default 200)")
    sv.add_argument("--job", choices=["full", "targets"], default="full",
                    help="per-request inference job kind")
    sv.add_argument("--targets", type=int, default=16,
                    help="vertices per request for --job targets")
    sv.add_argument("--max-batch", type=int, default=8)
    sv.add_argument("--window-us", type=float, default=200.0,
                    help="batching deadline window in microseconds")
    sv.add_argument("--streams", type=int, default=2,
                    help="concurrent CUDA-like streams")
    sv.add_argument("--queue-depth", type=int, default=64,
                    help="admission bound on in-system requests")
    sv.add_argument("--slo-ms", type=float, default=None,
                    help="latency SLO in ms: enables burn-rate monitoring "
                    "on a single run; for --compare, the p99 bar "
                    "(default 2.5x DGL offline)")
    sv.add_argument("--slo-objective", type=float, default=0.99,
                    help="SLO good fraction (default 0.99 = 1%% budget)")
    sv.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="append the run's obs metrics as JSONL")
    sv.add_argument("--trace", default=None, metavar="PATH", dest="trace_out",
                    help="collect per-request span trees and write them as "
                    "a Chrome trace (one track per request + per stream)")
    sv.add_argument("--tree", type=int, default=0, metavar="N",
                    help="print the span trees of the N slowest requests")
    sv.add_argument("--compare", action="store_true",
                    help="run the TLPGNN vs DGL-sim vs GNNAdvisor serving "
                    "scenario under identical traces")
    sv.add_argument("--smoke", action="store_true",
                    help="small fast run + conservation self-check (CI)")
    sv.add_argument("--opt", choices=["off", "safe", "search"], default=None,
                    help="plan-IR optimizer level for the served pipeline "
                    "(search consults the tuned-plan store first)")
    sv.add_argument("--lint", action="store_true",
                    help="preflight: statically lint the served plan and "
                    "its cross-stream schedule; refuse to serve on "
                    "error-severity findings")
    sv.add_argument("--certified", action="store_true",
                    help="preflight: refuse to serve unless the tuned-plan "
                    "store holds a valid equivalence certificate for this "
                    "cell (EQ004 on tampered/stale/missing certificates)")
    sv.add_argument("--store", default=None, metavar="FILE",
                    help="load the tuned-plan store from this JSON path "
                    "for the serve (what --opt search replays and "
                    "--certified re-verifies)")

    top = sub.add_parser(
        "top", help="serve with SLO monitoring and render the health "
        "dashboard"
    )
    top.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    top.add_argument("--model", choices=_model_choices(),
                     default="gcn")
    top.add_argument("--dataset", default="CR")
    top.add_argument("--arrival", choices=["poisson", "bursty"],
                     default="poisson")
    top.add_argument("--rate", type=float, default=None,
                     help="offered req/s (default: --load x offline rate)")
    top.add_argument("--load", type=float, default=0.8,
                     help="offered load as a multiple of the system's "
                     "offline service rate (default 0.8)")
    top.add_argument("--requests", type=int, default=200)
    top.add_argument("--max-batch", type=int, default=8)
    top.add_argument("--streams", type=int, default=2)
    top.add_argument("--queue-depth", type=int, default=64)
    top.add_argument("--slo-ms", type=float, default=None,
                     help="latency SLO in ms (default 2.5x offline runtime)")
    top.add_argument("--slo-objective", type=float, default=0.99)

    me = sub.add_parser(
        "metrics", help="Prometheus-style text exposition of serving metrics"
    )
    me.add_argument("--expose", action="store_true", default=True,
                    help="render the Prometheus text format (the default "
                    "and only mode)")
    me.add_argument("--from-jsonl", default=None, metavar="PATH",
                    help="re-expose a --metrics-out JSONL file instead of "
                    "running a workload (last record per metric wins)")
    me.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    me.add_argument("--model", choices=_model_choices(),
                    default="gcn")
    me.add_argument("--dataset", default="CR")
    me.add_argument("--requests", type=int, default=64)

    rg = sub.add_parser(
        "regress", help="compare HEAD probes against the BENCH_*.json "
        "perf trajectory (exit 1 on regression)"
    )
    rg.add_argument("--probe", choices=["serving", "table5", "autotune", "all"],
                    default="all")
    rg.add_argument("--store-dir", default=".", metavar="DIR",
                    help="directory holding the BENCH_<probe>.json trend "
                    "stores (default: current directory)")
    rg.add_argument("--record", action="store_true",
                    help="append a trajectory point at HEAD instead of "
                    "comparing")

    pl = sub.add_parser(
        "plan", help="lower a cell and print each system's execution plan"
    )
    pl.add_argument("dataset", help="dataset abbreviation (e.g. CR)")
    pl.add_argument("model", choices=_model_choices())
    pl.add_argument("--system", choices=sorted(SYSTEMS), default=None,
                    help="limit to one system (default: all four)")
    pl.add_argument("--lint", action="store_true",
                    help="append the static lint report to each plan")

    li = sub.add_parser(
        "lint",
        help="static hazard/resource/determinism/access analysis of plans",
    )
    li.add_argument("--system", choices=sorted(SYSTEMS), default=None,
                    help="limit to one system (default: all four)")
    li.add_argument("--model", action="append", default=None,
                    choices=_model_choices(),
                    help="model(s) to lint (default: gcn and gat)")
    li.add_argument("--dataset", action="append", default=None,
                    help="dataset abbreviation(s) (default: CR CS PD)")
    li.add_argument("--strict", action="store_true",
                    help="exit 1 on error-severity findings; with "
                    "--baseline, on ANY finding the baseline does not "
                    "already record")
    li.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the findings as a stable JSON array "
                    "(plan/code/severity/op/buffer/message) instead of text")
    li.add_argument("--format", choices=["text", "json", "sarif"],
                    default=None, dest="fmt",
                    help="output format (sarif = SARIF 2.1.0 log for CI "
                    "code-scanning upload); --json is shorthand for "
                    "--format json")
    li.add_argument("--baseline", default=None, metavar="FILE",
                    help="suppress findings recorded in this baseline JSON "
                    "(keyed plan/code/op/buffer); stale suppressions are "
                    "reported")
    li.add_argument("--write-baseline", default=None, metavar="FILE",
                    help="record every finding of this run into FILE as a "
                    "baseline for --baseline")
    li.add_argument("--prune-baseline", action="store_true",
                    help="with --baseline: rewrite the file dropping "
                    "suppressions that match no current finding")
    li.add_argument("--explain", default=None, metavar="CODE",
                    help="print the registry entry for one finding code "
                    "(e.g. ACC002) and exit; unknown codes exit 2 with "
                    "the nearest registered code suggested")
    li.add_argument("--streams", type=int, default=2,
                    help="streams for the per-cell serving race self-check "
                    "(default 2; 0 disables the check)")

    vf = sub.add_parser(
        "verify",
        help="certify that the optimizer's rewrites preserve each cell's "
        "dataflow normal form (translation validation)",
    )
    vf.add_argument("--system", choices=sorted(SYSTEMS), default=None,
                    help="limit to one system (default: all four)")
    vf.add_argument("--model", action="append", default=None,
                    choices=_model_choices(),
                    help="model(s) to certify (default: gcn and gat)")
    vf.add_argument("--dataset", action="append", default=None,
                    help="dataset abbreviation(s) (default: CR CS PD)")
    vf.add_argument("--level", choices=["safe", "search"], default="search",
                    help="optimizer level to certify (default search)")
    vf.add_argument("--budget", type=int, default=16,
                    help="max candidate plans a searching pass may score")
    vf.add_argument("--json", action="store_true", dest="as_json",
                    help="emit per-cell certification rows as a JSON array")
    vf.add_argument("--format", choices=["text", "json", "sarif"],
                    default=None, dest="fmt",
                    help="output format (sarif = SARIF 2.1.0 log of the "
                    "EQ findings)")

    op = sub.add_parser(
        "opt",
        help="run the plan-IR optimizer pass pipeline on one cell and "
        "show each pass's rewrite decision",
    )
    op.add_argument("dataset", help="dataset abbreviation (e.g. CR)")
    op.add_argument("model", choices=_model_choices())
    op.add_argument("--system", choices=sorted(SYSTEMS), default=None,
                    help="limit to one system (default: all four)")
    op.add_argument("--level", choices=["safe", "search"], default="search",
                    help="optimizer level (default search)")
    op.add_argument("--budget", type=int, default=32,
                    help="max candidate plans a searching pass may score")
    op.add_argument("--json", action="store_true", dest="as_json",
                    help="emit per-system pass records as a JSON array")

    tn = sub.add_parser(
        "tune",
        help="auto-tune the compute-kernel knob space of one or more "
        "cells; persists winners in the tuned-plan store",
    )
    tn.add_argument("--dataset", action="append", default=None,
                    help="dataset abbreviation(s) (default: CR); repeatable")
    tn.add_argument("--model", choices=_model_choices(),
                    default="gcn")
    tn.add_argument("--system", choices=sorted(SYSTEMS), default="TLPGNN")
    tn.add_argument("--budget", type=int, default=32,
                    help="max distinct candidate measurements per cell")
    tn.add_argument("--store", default=None, metavar="FILE",
                    help="load/save the tuned-plan store at this JSON path")
    tn.add_argument("--warm", action="store_true",
                    help="after tuning, run each cell with opt=search so "
                    "the PlanCache holds the tuned plan")
    tn.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the tuning results as a JSON array")

    ud = sub.add_parser(
        "udf",
        help="describe a registered message-passing UDF: spec signature, "
        "derived framework lowering, derived effect/access tables",
    )
    ud.add_argument("model", nargs="?", default=None,
                    help="registered model name (default: list all)")
    ud.add_argument("--dataset", default="CR",
                    help="cell to bind the spec against (default CR)")
    ud.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the description as JSON")
    return p


def _config(args: argparse.Namespace) -> BenchConfig:
    return BenchConfig(feat_dim=args.feat, max_edges=args.max_edges, seed=args.seed)


def _cell(args, config):
    dataset = get_dataset(args.dataset, config)
    X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=config.seed)
    return dataset, X


def cmd_datasets(args: argparse.Namespace, out) -> int:
    from .bench import table4

    print(table4(_config(args)).render(), file=out)
    return 0


def _archive_report(report, args, config, spec, out, *, graph=None) -> None:
    """Record a profile into ``--archive DIR`` (shared by run/trace)."""
    archive = ProfileArchive(args.archive)
    path = archive.record(
        report, seed=config.seed, feat_dim=config.feat_dim,
        max_edges=config.max_edges, spec=spec, graph=graph,
    )
    print(f"archived profile -> {path}", file=out)


def cmd_run(args: argparse.Namespace, out) -> int:
    config = _config(args)
    dataset, X = _cell(args, config)
    res = run_system(
        SYSTEMS[args.system](), args.model, dataset, config, X=X,
        opt=getattr(args, "opt", None),
    )
    if res is None:
        print(
            f"{args.system} cannot run {args.model} on {args.dataset} "
            "(unsupported model or capacity failure — a dash in the paper)",
            file=out,
        )
        return 1
    print(res.report.summary(), file=out)
    if args.archive:
        _archive_report(
            res.report, args, config, config.spec_for(dataset), out,
            graph=dataset.graph,
        )
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    config = _config(args)
    dataset, X = _cell(args, config)
    rows = []
    for name, factory in SYSTEMS.items():
        res = run_system(factory(), args.model, dataset, config, X=X)
        rows.append((name, res.runtime_ms if res else None))
    ok = [(n, t) for n, t in rows if t is not None]
    print(f"{args.model.upper()} on {args.dataset} "
          f"(|V|={dataset.graph.num_vertices:,}, |E|={dataset.graph.num_edges:,}):",
          file=out)
    if not ok:
        # every system dashed this cell: still render the table, exit 1
        for name, _ in rows:
            print(f"  {name:<12} {'-':>10}  (dash, as in the paper)", file=out)
        return 1
    best = min(t for _, t in ok)
    for name, t in sorted(ok, key=lambda r: r[1]):
        marker = " <- fastest" if t == best else f"  ({t / best:.2f}x)"
        print(f"  {name:<12} {t:10.4f} ms{marker}", file=out)
    for name, t in rows:
        if t is None:
            print(f"  {name:<12} {'-':>10}  (dash, as in the paper)", file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    from .obs.timeline import write_timeline

    config = _config(args)
    dataset, X = _cell(args, config)
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        res = run_system(SYSTEMS[args.system](), args.model, dataset, config, X=X)
    finally:
        set_tracer(previous)
    if res is None:
        print(
            f"{args.system} cannot run {args.model} on {args.dataset} "
            "(dash cell — nothing to trace)",
            file=out,
        )
        return 1
    spec = config.spec_for(dataset)
    trace = write_timeline(
        args.out, res, spec, tracer=tracer,
        max_block_events_per_kernel=args.max_block_events,
    )
    meta = trace["otherData"]
    print(
        f"wrote {args.out}: {len(trace['traceEvents'])} events, "
        f"{meta['num_sms']} SM tracks, GPU time {meta['gpu_time_ms']:.3f} ms"
        + (f", {meta['dropped_events']} events dropped (cap)"
           if meta["dropped_events"] else ""),
        file=out,
    )
    if args.archive:
        _archive_report(res.report, args, config, spec, out, graph=dataset.graph)
    return 0


def cmd_diff(args: argparse.Namespace, out) -> int:
    try:
        baseline = load_run(args.baseline)
        candidate = load_run(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    result = diff_runs(baseline, candidate)
    print(
        f"baseline : {args.baseline} ({baseline['fingerprint']})\n"
        f"candidate: {args.candidate} ({candidate['fingerprint']})",
        file=out,
    )
    print(result.render(), file=out)
    return 0 if result.ok else 1


def cmd_experiment(args: argparse.Namespace, out) -> int:
    config = _config(args)
    if args.id in ("table1", "table2") and args.feat == 32:
        config = BenchConfig(
            feat_dim=128, max_edges=args.max_edges, seed=args.seed
        )
    result = ALL_EXPERIMENTS[args.id](config)
    print(result.render(), file=out)
    return 0


def cmd_roofline(args: argparse.Namespace, out) -> int:
    config = _config(args)
    dataset, X = _cell(args, config)
    spec = config.spec_for(dataset)
    system = SYSTEMS[args.system]()
    res = run_system(system, args.model, dataset, config, X=X)
    if res is None:
        print("cell not supported", file=out)
        return 1
    # re-estimate per kernel so each gets its own roofline point
    print(
        f"{args.system} / {args.model} / {args.dataset} "
        f"({res.report.kernel_launches} kernel(s)):",
        file=out,
    )
    for stats in res.report.stats.kernels:
        from .gpusim.scheduler import ScheduleResult

        sched = ScheduleResult(
            makespan_cycles=float(stats.warp_cycles.sum())
            if stats.warp_cycles.size
            else 1.0,
            busy_warp_cycles=float(stats.warp_cycles.sum()),
            overhead_cycles=0.0,
            num_units=1,
            policy="report",
        )
        timing = next(
            (k for k in res.report.timing.kernels if k.name == stats.name),
            None,
        )
        if timing is None:
            from .plan import time_parts

            timing = time_parts([(stats, sched)], spec)[0]
        print("  " + roofline(stats, timing, spec).describe(), file=out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    config = _config(args)
    config128 = BenchConfig(
        feat_dim=128, max_edges=args.max_edges, seed=args.seed
    )
    sections = []
    for exp_id, fn in ALL_EXPERIMENTS.items():
        cfg = config128 if exp_id in ("table1", "table2") else config
        sections.append(fn(cfg).render())
    report = "\n\n".join(sections)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report + "\n")
        print(f"wrote {len(sections)} experiments to {args.out}", file=out)
    else:
        print(report, file=out)
    return 0


def cmd_validate(args: argparse.Namespace, out) -> int:
    from .bench import validate_claims

    results = validate_claims(_config(args), only=args.only)
    failed = 0
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        failed += not r.passed
        print(f"[{status}] {r.claim_id}: {r.description}", file=out)
        print(f"       {r.detail}", file=out)
    print(f"\n{len(results) - failed}/{len(results)} claims hold", file=out)
    return 1 if failed else 0


def _make_servable(args: argparse.Namespace, config, out):
    """Build the (servable, spec) pair of a serving command, or None when
    the system does not implement the model."""
    from .frameworks.base import UnsupportedModelError
    from .serve import ServableModel

    dataset = get_dataset(args.dataset, config)
    spec = config.spec_for(dataset)
    try:
        servable = ServableModel(
            SYSTEMS[args.system](), args.model, dataset,
            feat_dim=config.feat_dim, spec=spec, seed=config.seed,
            opt=getattr(args, "opt", None),
        )
    except UnsupportedModelError as exc:
        print(f"cannot serve: {exc}", file=out)
        return None
    return servable, spec


def _serve_preflight(servable, spec, streams: int, out) -> int:
    """``serve --lint``: statically verify the plan and its cross-stream
    schedule before admitting any traffic.  Non-zero = refuse to serve."""
    from .lint import lint_plan, lint_schedule, serving_schedule

    plan = servable.system.lower(
        servable.model, servable.data, servable.X, spec
    )
    report = lint_plan(plan, spec)
    sched_report = lint_schedule(
        serving_schedule(plan, num_streams=max(streams, 1), batches=2)
    )
    print(report.render(), file=out)
    print(sched_report.render(), file=out)
    if report.errors or sched_report.errors:
        print("serve preflight: REFUSED (error-severity findings)", file=out)
        return 1
    print("serve preflight: ok", file=out)
    return 0


def _certified_preflight(servable, spec, out) -> int:
    """``serve --certified``: re-verify the tuned-plan store's equivalence
    certificate for the served cell.  Non-zero = refuse to serve."""
    from .verify import check_tuned_certificate

    check = check_tuned_certificate(
        servable.system, servable.model, servable.data, servable.X, spec
    )
    print(check.render(), file=out)
    if not check.ok:
        print(
            "serve --certified: REFUSED (no valid equivalence certificate "
            "for this cell's tuned plan)",
            file=out,
        )
        return 1
    print("serve --certified: ok", file=out)
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    import json

    from .bench.serving import serving_scenario
    from .obs.metrics import MetricsRegistry, get_registry, set_registry
    from .obs.reqtrace import RequestTraceCollector, set_request_collector
    from .plan import get_plan_cache
    from .serve import ServeConfig, serve_trace

    config = _config(args)
    previous_store = None
    if args.store:
        from .opt import TunedPlanStore, set_tuned_store

        try:
            loaded_store = TunedPlanStore.load(args.store)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read store {args.store}: {exc}", file=out)
            return 2
        previous_store = set_tuned_store(loaded_store)
    # reuse an already-installed registry so repeated in-process serves
    # accumulate counters (plan_cache_hit across warm passes included);
    # "is None" rather than "or": an empty registry is falsy (len 0)
    registry = get_registry()
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    collector = None
    previous_collector = None
    if args.trace_out or args.tree:
        collector = RequestTraceCollector()
        previous_collector = set_request_collector(collector)
    try:
        if args.compare:
            result = serving_scenario(
                config, model=args.model, slo_ms=args.slo_ms, registry=registry
            )
            print(result.render(), file=out)
            rc = 0
        else:
            num_requests = args.requests
            max_batch, streams = args.max_batch, args.streams
            if args.smoke:
                num_requests = min(num_requests, 64)
                max_batch = min(max_batch, 4)
                streams = min(streams, 2)
            made = _make_servable(args, config, out)
            if made is None:
                return 1
            servable, spec = made
            if args.lint:
                rc = _serve_preflight(servable, spec, streams, out)
                if rc:
                    return rc
            if args.certified:
                rc = _certified_preflight(servable, spec, out)
                if rc:
                    return rc
            rate = args.rate or 0.5 / servable.offline_runtime_s
            cfg = ServeConfig(
                arrival=args.arrival, rate_hz=rate, num_requests=num_requests,
                job=args.job, targets_per_request=args.targets,
                max_batch=max_batch, window_s=args.window_us * 1e-6,
                num_streams=streams, queue_depth=args.queue_depth,
                max_concurrent=spec.max_concurrent_kernels, seed=config.seed,
                slo_ms=args.slo_ms, slo_objective=args.slo_objective,
            )
            report = serve_trace(servable, cfg)
            report.publish(registry, system=args.system, dataset=args.dataset)
            print(report.summary(), file=out)
            rc = 0
            if args.smoke:
                ok = (
                    report.arrived == report.admitted + report.shed
                    and report.admitted == report.completed
                    and report.completed > 0
                )
                print(f"serve smoke: {'OK' if ok else 'FAILED'}", file=out)
                rc = 0 if ok else 1
        if collector is not None:
            if args.tree:
                for trace in collector.slowest(args.tree):
                    print(trace.render_tree(), file=out)
            if args.trace_out:
                events = collector.to_chrome_trace()
                with open(args.trace_out, "w") as fh:
                    json.dump({"traceEvents": events}, fh)
                print(
                    f"wrote {args.trace_out}: {len(events)} events, "
                    f"{len(collector.completed)} request track(s), "
                    f"{len(collector.shed)} shed",
                    file=out,
                )
        if args.metrics_out:
            cache = get_plan_cache()
            if cache is not None:
                cache.publish(registry)
            # mirror the plan-cache counters with the tuner's activity
            # (plans_tuned / tuned_plan_hit / tuned_plan_miss)
            from .opt import get_tuned_store

            get_tuned_store().publish(registry)
            n = registry.dump_jsonl(args.metrics_out)
            print(f"wrote {n} metrics to {args.metrics_out}", file=out)
        return rc
    finally:
        if collector is not None:
            set_request_collector(previous_collector)
        set_registry(previous)
        if previous_store is not None:
            from .opt import set_tuned_store

            set_tuned_store(previous_store)


def cmd_top(args: argparse.Namespace, out) -> int:
    """Serve one workload with SLO monitoring; render the dashboard."""
    from .obs.dashboard import render_top
    from .serve import ServeConfig, serve_trace

    config = _config(args)
    made = _make_servable(args, config, out)
    if made is None:
        return 1
    servable, spec = made
    offline_s = servable.offline_runtime_s
    slo_ms = args.slo_ms if args.slo_ms is not None else 2.5 * offline_s * 1e3
    rate = args.rate or args.load / offline_s
    cfg = ServeConfig(
        arrival=args.arrival, rate_hz=rate, num_requests=args.requests,
        max_batch=args.max_batch, num_streams=args.streams,
        queue_depth=args.queue_depth,
        max_concurrent=spec.max_concurrent_kernels, seed=config.seed,
        slo_ms=slo_ms, slo_objective=args.slo_objective,
    )
    report = serve_trace(servable, cfg)
    print(render_top(report.slo, report=report), file=out)
    return 0


def cmd_metrics(args: argparse.Namespace, out) -> int:
    """Prometheus text exposition: from a JSONL dump or a fresh run."""
    from .obs.expose import records_from_jsonl, render_prometheus
    from .obs.metrics import MetricsRegistry, set_registry
    from .plan import get_plan_cache
    from .serve import ServeConfig, serve_trace

    if args.from_jsonl:
        try:
            records = records_from_jsonl(args.from_jsonl)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read {args.from_jsonl}: {exc}", file=out)
            return 2
        print(render_prometheus(records), end="", file=out)
        return 0
    config = _config(args)
    made = _make_servable(args, config, out)
    if made is None:
        return 1
    servable, spec = made
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        cfg = ServeConfig(
            rate_hz=0.5 / servable.offline_runtime_s,
            num_requests=args.requests, max_batch=4, num_streams=2,
            max_concurrent=spec.max_concurrent_kernels, seed=config.seed,
            slo_ms=2.5 * servable.offline_runtime_s * 1e3,
        )
        report = serve_trace(servable, cfg)
        report.publish(registry, system=args.system, dataset=args.dataset)
        cache = get_plan_cache()
        if cache is not None:
            cache.publish(registry)
        from .opt import get_tuned_store

        get_tuned_store().publish(registry)
    finally:
        set_registry(previous)
    print(render_prometheus(registry), end="", file=out)
    return 0


def cmd_regress(args: argparse.Namespace, out) -> int:
    """Compare HEAD probe metrics against the recorded perf trajectory."""
    from .bench.regress import PROBES, compare_point, default_store_path, record_point

    config = _config(args)
    names = sorted(PROBES) if args.probe == "all" else [args.probe]
    rc = 0
    for name in names:
        store_path = default_store_path(name, args.store_dir)
        if args.record:
            point = record_point(name, config, store_path=store_path)
            print(
                f"recorded {name} point at rev {point['rev']} "
                f"({len(point['metrics'])} metrics) -> {store_path}",
                file=out,
            )
            continue
        try:
            diff = compare_point(name, config, store_path=store_path)
        except (OSError, ValueError) as exc:
            print(f"error: {name}: {exc}", file=out)
            return 2
        if diff is None:
            print(
                f"{name}: no trajectory point matches this config "
                f"fingerprint in {store_path} — record one with "
                "'repro regress --record'",
                file=out,
            )
            continue
        print(diff.render(), file=out)
        if not diff.ok:
            rc = 1
    return rc


def cmd_plan(args: argparse.Namespace, out) -> int:
    """Lower one cell per system and print the plan (no execution)."""
    from .frameworks.base import CapacityError, UnsupportedModelError

    config = _config(args)
    dataset, X = _cell(args, config)
    spec = config.spec_for(dataset)
    names = [args.system] if args.system else sorted(SYSTEMS)
    print(
        f"{args.model.upper()} on {args.dataset} "
        f"(|V|={dataset.graph.num_vertices:,}, "
        f"|E|={dataset.graph.num_edges:,}):\n",
        file=out,
    )
    lowered = 0
    for name in names:
        try:
            plan = SYSTEMS[name]().lower(args.model, dataset, X, spec)
        except (UnsupportedModelError, CapacityError) as exc:
            print(f"{name}: - ({type(exc).__name__}: {exc})\n", file=out)
            continue
        print(plan.describe(), file=out)
        if args.lint:
            from .lint import lint_plan

            print("  lint: " + lint_plan(plan, spec).render(), file=out)
        print(file=out)
        lowered += 1
    return 0 if lowered else 1


def _load_baseline(path: str) -> set[tuple[str, str, str, str]]:
    """Known-finding keys of a lint baseline file (see --write-baseline)."""
    import json

    with open(path) as fh:
        data = json.load(fh)
    return {
        (
            entry.get("plan", ""),
            entry.get("code", ""),
            entry.get("op", ""),
            entry.get("buffer", ""),
        )
        for entry in data.get("findings", ())
    }


def cmd_lint(args: argparse.Namespace, out) -> int:
    """Statically lint the lowered plans of a grid of cells (no execution)."""
    import json

    from .frameworks.base import CapacityError, UnsupportedModelError
    from .lint import (
        finding_rows,
        lint_plan,
        race_findings,
        serving_schedule,
    )
    from .lint.report import LintReport

    if args.explain:
        from .lint import RULES, explain

        try:
            print(explain(args.explain.upper()), file=out)
        except KeyError:
            import difflib

            close = difflib.get_close_matches(
                args.explain.upper(), sorted(RULES), n=1, cutoff=0.4
            )
            hint = f" — did you mean {close[0]}?" if close else ""
            print(f"unknown finding code: {args.explain}{hint}", file=out)
            return 2
        return 0

    fmt = args.fmt or ("json" if args.as_json else "text")
    machine = fmt != "text"
    baseline_keys: set[tuple[str, str, str, str]] = set()
    baseline_entries: list[dict] = []
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline_entries = json.load(fh).get("findings", [])
            baseline_keys = _load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=out)
            return 2

    config = _config(args)
    systems = [args.system] if args.system else sorted(SYSTEMS)
    models = args.model or ["gcn", "gat"]
    datasets = args.dataset or ["CR", "CS", "PD"]
    errors = warnings_ = cells = suppressed = kept_total = 0
    kept_rows: list[dict] = []  # unsuppressed findings, grid-stable order
    all_rows: list[dict] = []  # every finding (what --write-baseline records)
    matched_keys: set[tuple[str, str, str, str]] = set()
    text: list[str] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, config)
        X = make_features(
            dataset.graph.num_vertices, config.feat_dim, seed=config.seed
        )
        spec = config.spec_for(dataset)
        for model in models:
            for name in systems:
                try:
                    plan = SYSTEMS[name]().lower(model, dataset, X, spec)
                except (UnsupportedModelError, CapacityError) as exc:
                    text.append(
                        f"{name}/{model} on {ds_name}: - "
                        f"({type(exc).__name__})"
                    )
                    continue
                report = lint_plan(plan, spec)
                findings = list(report.findings)
                if args.streams > 0:
                    # concurrency self-check: the schedule repro serve
                    # would run (N batches of this plan, least-loaded
                    # stream assignment) must be HB race-free
                    findings += race_findings(
                        serving_schedule(
                            plan, num_streams=args.streams, batches=2
                        )
                    )
                cells += 1
                kept = []
                for f, row in zip(
                    findings, finding_rows(report.plan_label, findings)
                ):
                    all_rows.append(row)
                    key = (report.plan_label, *f.key())
                    if key in baseline_keys:
                        matched_keys.add(key)
                        suppressed += 1
                        continue
                    kept.append(f)
                    kept_rows.append(row)
                kept_total += len(kept)
                errors += sum(f.severity == "error" for f in kept)
                warnings_ += sum(f.severity == "warning" for f in kept)
                text.append(
                    LintReport(
                        plan_label=report.plan_label, findings=tuple(kept)
                    ).render()
                )
    stale_keys = baseline_keys - matched_keys
    if args.prune_baseline and args.baseline:
        live = [
            entry
            for entry in baseline_entries
            if (
                entry.get("plan", ""),
                entry.get("code", ""),
                entry.get("op", ""),
                entry.get("buffer", ""),
            )
            in matched_keys
        ]
        with open(args.baseline, "w") as fh:
            json.dump({"version": 1, "findings": live}, fh, indent=2)
            fh.write("\n")
        if not machine:
            text.append(
                f"pruned {len(baseline_entries) - len(live)} stale "
                f"suppression(s) from {args.baseline}"
            )
    if args.write_baseline:
        baseline = {
            "version": 1,
            "findings": [
                {k: row[k] for k in ("plan", "code", "op", "buffer")}
                for row in all_rows
            ],
        }
        with open(args.write_baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        if not machine:
            text.append(
                f"wrote {len(baseline['findings'])} finding(s) to "
                f"{args.write_baseline}"
            )
    if fmt == "json":
        # machine mode: the array is the whole output (stable field set)
        print(json.dumps(kept_rows, indent=2), file=out)
    elif fmt == "sarif":
        from .lint import sarif_log

        print(json.dumps(sarif_log(kept_rows), indent=2), file=out)
    else:
        for line in text:
            print(line, file=out)
        summary = (
            f"\nlinted {cells} plan(s): {errors} error(s), "
            f"{warnings_} warning(s)"
        )
        if args.baseline:
            summary += f", {suppressed} suppressed by baseline"
            if stale_keys:
                summary += (
                    f", {len(stale_keys)} stale suppression(s)"
                    + ("" if args.prune_baseline else " (--prune-baseline)")
                )
        print(summary, file=out)
    if args.strict:
        # a baseline promotes strict mode to "no new findings at all":
        # the recorded ones are accepted, anything else fails the run
        failed = kept_total if args.baseline else errors
        return 1 if failed else 0
    return 0


def cmd_opt(args: argparse.Namespace, out) -> int:
    """Lower one cell per system, optimize it, and report each pass."""
    import json

    from .frameworks.base import CapacityError, UnsupportedModelError
    from .opt import modeled_runtime_s, optimize_plan

    config = _config(args)
    dataset, X = _cell(args, config)
    spec = config.spec_for(dataset)
    names = [args.system] if args.system else sorted(SYSTEMS)
    rows = []
    optimized = 0
    for name in names:
        try:
            plan = SYSTEMS[name]().lower(args.model, dataset, X, spec)
        except (UnsupportedModelError, CapacityError) as exc:
            if not args.as_json:
                print(f"{name}: - ({type(exc).__name__}: {exc})\n", file=out)
            continue
        before_ms = modeled_runtime_s(plan, spec) * 1e3
        new_plan, records = optimize_plan(
            plan, spec, level=args.level, dataset=dataset, budget=args.budget
        )
        after_ms = modeled_runtime_s(new_plan, spec) * 1e3
        rows.append(
            {
                "system": name,
                "model": args.model,
                "dataset": args.dataset,
                "level": args.level,
                "before_ms": before_ms,
                "after_ms": after_ms,
                "before_kernels": plan.num_kernels,
                "after_kernels": new_plan.num_kernels,
                "passes": [
                    {
                        "name": r.name,
                        "applied": r.applied,
                        "before_ms": r.before_ms,
                        "after_ms": r.after_ms,
                        "detail": r.detail,
                    }
                    for r in records
                ],
            }
        )
        if not args.as_json:
            print(
                f"{name}/{args.model} on {args.dataset}: "
                f"{plan.num_kernels} -> {new_plan.num_kernels} kernel(s), "
                f"{before_ms:.3f} -> {after_ms:.3f} ms (level {args.level})",
                file=out,
            )
            for r in records:
                print(f"  {r.render()}", file=out)
            if not any(r.applied for r in records):
                print(
                    "  no rewrites applied, plan already "
                    "optimal/certified",
                    file=out,
                )
            print(new_plan.describe(), file=out)
            print(file=out)
        optimized += 1
    if args.as_json:
        print(json.dumps(rows, indent=2), file=out)
    return 0 if optimized else 1


def cmd_verify(args: argparse.Namespace, out) -> int:
    """Certify optimizer rewrites over a grid of cells: the verdict comes
    from the symbolic dataflow normal form, not from byte diffing."""
    import json

    from .lint import finding_rows, sarif_log
    from .verify import certify_grid

    config = _config(args)
    fmt = args.fmt or ("json" if args.as_json else "text")
    cells = certify_grid(
        config,
        systems=[args.system] if args.system else None,
        models=args.model,
        datasets=args.dataset,
        level=args.level,
        budget=args.budget,
    )
    failed = [c for c in cells if not c.ok]
    if fmt == "json":
        print(json.dumps([c.as_dict() for c in cells], indent=2), file=out)
    elif fmt == "sarif":
        rows: list[dict] = []
        for c in cells:
            if c.result is None:
                continue
            label = f"{c.system}/{c.model} on {c.dataset}"
            rows.extend(finding_rows(label, c.result.decision.findings))
        print(
            json.dumps(sarif_log(rows, tool_name="repro-verify"), indent=2),
            file=out,
        )
    else:
        for c in cells:
            label = f"{c.system}/{c.model} on {c.dataset}"
            if c.status == "dash":
                print(f"{label}: - ({c.reason})", file=out)
            elif c.status == "certified":
                assert c.result is not None and c.result.certificate is not None
                print(
                    f"{label}: certified "
                    f"({c.result.decision.verdict}, "
                    f"cert {c.result.certificate.cert_id[:12]}..)",
                    file=out,
                )
            else:
                print(f"{label}: FAILED — {c.reason}", file=out)
                if c.result is not None:
                    for f in c.result.decision.findings:
                        print(f"  {f.render()}", file=out)
        certified = sum(c.status == "certified" for c in cells)
        dashes = sum(c.status == "dash" for c in cells)
        print(
            f"\ncertified {certified}/{len(cells)} cell(s), "
            f"{dashes} dash(es), {len(failed)} failure(s)",
            file=out,
        )
    return 1 if failed else 0


def cmd_tune(args: argparse.Namespace, out) -> int:
    """Auto-tune cells; exit 1 if any tuned plan lost to the paper config."""
    import json
    import os

    from .opt import AutoTuner, TunedPlanStore, get_tuned_store, set_tuned_store

    config = _config(args)
    datasets = args.dataset or ["CR"]
    store = get_tuned_store()
    previous = None
    if args.store:
        if os.path.exists(args.store):
            store = TunedPlanStore.load(args.store)
            if store.dropped and not args.as_json:
                n = store.dropped
                print(
                    f"dropped {n} stale entr{'y' if n == 1 else 'ies'} "
                    f"(tuner version mismatch) while loading {args.store}",
                    file=out,
                )
        else:
            store = TunedPlanStore()
        previous = set_tuned_store(store)
    tuner = AutoTuner(budget=args.budget, seed=config.seed, store=store)
    rows = []
    rc = 0
    try:
        for abbr in datasets:
            dataset = get_dataset(abbr, config)
            spec = config.spec_for(dataset)
            X = make_features(
                dataset.graph.num_vertices, config.feat_dim, seed=config.seed
            )
            system = SYSTEMS[args.system]()
            result = tuner.tune(system, args.model, dataset, X, spec)
            row = result.as_dict()
            row["dataset"] = abbr
            rows.append(row)
            if result.tuned_ms > result.fixed_ms:
                rc = 1
            if not args.as_json:
                knobs = ", ".join(
                    f"{k}={v}" for k, v in sorted(result.best_knobs.items())
                )
                print(
                    f"{args.system}/{args.model} on {abbr}: "
                    f"fixed {result.fixed_ms:.3f} ms -> tuned "
                    f"{result.tuned_ms:.3f} ms "
                    f"({result.speedup_vs_fixed:.3f}x, "
                    f"{result.iterations} measurement(s) within budget "
                    f"{args.budget})",
                    file=out,
                )
                print(f"  winner: {knobs}", file=out)
            if args.warm:
                system.run(args.model, dataset, X, spec, opt="search")
        if args.store:
            store.save(args.store)
            if not args.as_json:
                print(
                    f"saved {len(store)} tuned plan(s) to {args.store}",
                    file=out,
                )
    finally:
        if previous is not None:
            set_tuned_store(previous)
    if args.as_json:
        print(json.dumps(rows, indent=2), file=out)
    return rc


def cmd_udf(args: argparse.Namespace, out) -> int:
    """Describe a registered UDF: everything downstream is derived."""
    import json

    from .frameworks.base import CapacityError, UnsupportedModelError
    from .kernels.tlpgnn import TLPGNNKernel
    from .lint.access import sector_class
    from .mp import build_model, model_features, registered_models

    config = _config(args)
    dataset, X = _cell(args, config)
    if args.model is None:
        rows = [
            {
                "name": name,
                "signature": build_model(
                    name, dataset.graph, X
                ).signature(),
            }
            for name in registered_models()
        ]
        if args.as_json:
            print(json.dumps(rows, indent=2), file=out)
        else:
            for row in rows:
                print(row["signature"], file=out)
        return 0

    name = args.model.lower()
    feats = model_features(name)
    if feats is None:
        print(
            f"unknown model {args.model!r}; registered: "
            + ", ".join(registered_models()),
            file=out,
        )
        return 2
    spec = config.spec_for(dataset)
    model = build_model(name, dataset.graph, X)
    workload = model.workload()

    # what each framework derives from the terms: support + pipeline
    systems: dict[str, dict] = {}
    for sysname in sorted(SYSTEMS):
        system = SYSTEMS[sysname]()
        if not system.supports(name):
            systems[sysname] = {"supported": False, "kernels": None}
            continue
        try:
            plan = system.lower(name, dataset, X, spec)
        except (UnsupportedModelError, CapacityError) as exc:
            systems[sysname] = {
                "supported": False,
                "kernels": None,
                "error": f"{type(exc).__name__}: {exc}",
            }
            continue
        systems[sysname] = {
            "supported": True,
            "kernels": [op.name for op in plan.ops],
        }

    # the fused kernel's derived tables (same derivation the lint checks)
    kernel = TLPGNNKernel()
    eff = kernel.effects(workload)
    acc = kernel.access_patterns(workload)
    info = {
        "name": name,
        "signature": model.signature(),
        "terms": {
            "feature": feats.feature,
            "scale": feats.scale,
            "op": feats.op,
            "softmax": feats.softmax,
            "self": feats.self_kind,
        },
        "systems": systems,
        "effects": {
            "kernel": kernel.name,
            "reads": list(eff.reads),
            "writes": list(eff.writes),
            "atomics": list(eff.atomics),
            "atomic_ops": int(eff.atomic_ops),
        },
        "access": [
            {
                "buffer": p.buffer,
                "role": p.role,
                "row": p.row,
                "trips": list(p.trips),
                "class": sector_class(p, acc.shapes),
            }
            for p in acc.patterns
        ],
    }
    if model.has_softmax:
        from .mp import softmax_stages

        info["softmax_stages"] = [
            {"key": s.key, "reads": list(s.reads), "write": s.write}
            for s in softmax_stages()
        ]
    if args.as_json:
        print(json.dumps(info, indent=2), file=out)
        return 0

    t = info["terms"]
    print(info["signature"], file=out)
    print(
        f"  terms    : send feat[{t['feature']}] scale={t['scale']} "
        f"reduce={t['op']} softmax={'yes' if t['softmax'] else 'no'} "
        f"self={t['self'] or '-'}",
        file=out,
    )
    print("  lowering (derived per framework):", file=out)
    for sysname, row in systems.items():
        if row["supported"]:
            detail = " -> ".join(row["kernels"])
            print(
                f"    {sysname:>10}: {len(row['kernels'])} kernel(s): "
                f"{detail}",
                file=out,
            )
        else:
            why = row.get("error", "declined by the spec terms")
            print(f"    {sysname:>10}: - ({why})", file=out)
    if "softmax_stages" in info:
        print("  unfused softmax staging:", file=out)
        for s in info["softmax_stages"]:
            print(
                f"    {s['key']:>10}: reads {','.join(s['reads'])} "
                f"-> {s['write']}",
                file=out,
            )
    e = info["effects"]
    line = f"reads {','.join(e['reads'])}; writes {','.join(e['writes'])}"
    if e["atomics"]:
        line += (
            f"; atomics {','.join(e['atomics'])} ({e['atomic_ops']} ops)"
        )
    print(f"  derived effects ({e['kernel']}): {line}", file=out)
    print(f"  derived access ({e['kernel']}):", file=out)
    for row in info["access"]:
        trips = f" x {','.join(row['trips'])}" if row["trips"] else ""
        print(
            f"    {row['role']:>5} {row['buffer']:<10} row={row['row']}"
            f"{trips} [{row['class']}]",
            file=out,
        )
    return 0


_COMMANDS = {
    "datasets": cmd_datasets,
    "validate": cmd_validate,
    "run": cmd_run,
    "compare": cmd_compare,
    "experiment": cmd_experiment,
    "report": cmd_report,
    "roofline": cmd_roofline,
    "trace": cmd_trace,
    "diff": cmd_diff,
    "serve": cmd_serve,
    "top": cmd_top,
    "metrics": cmd_metrics,
    "regress": cmd_regress,
    "plan": cmd_plan,
    "lint": cmd_lint,
    "verify": cmd_verify,
    "opt": cmd_opt,
    "tune": cmd_tune,
    "udf": cmd_udf,
}


def main(argv: list[str] | None = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
