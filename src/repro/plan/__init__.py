"""Compile/execute split: the shared ExecutionPlan IR and plan cache.

Every framework model in :mod:`repro.frameworks` used to interleave
lowering, numeric execution, counter analysis, and costing inside its own
``_pipeline``.  This package separates those concerns into three stages
shared by all systems (and by :mod:`repro.multigpu` and
:mod:`repro.serve`):

1. **lower** — a system's :meth:`~repro.frameworks.base.GNNSystem._lower`
   rule turns (model, graph, features, spec, knobs) into an
   :class:`ExecutionPlan`: an ordered list of :class:`KernelOp` entries
   plus one :class:`ComputeStep` describing the numeric output.
2. **execute** — :func:`execute_plan` produces the output features; one
   executor replaces the per-framework run loops.
3. **analyze/cost** — :func:`analyze_plan` + :func:`time_parts` +
   :func:`cost_plan` produce ``KernelStats``/``ScheduleResult``/
   ``KernelTiming`` through one shared path (the single source of truth
   for ``dispatch_seconds`` handling).

Stages 2 and 3 are memoized in a bounded :class:`PlanCache` keyed by
:func:`plan_fingerprint` — a content hash of graph + features + model +
system knobs + device spec — so warm-cache serving skips re-analysis
entirely.
"""

from .analyzer import analyze_plan, cost_plan, time_parts
from .cache import (
    PlanCache,
    PlanCacheEntry,
    get_plan_cache,
    plan_fingerprint,
    set_plan_cache,
)
from .executor import execute_plan
from .ir import ComputeStep, ExecutionPlan, KernelOp, PlanInfo, plan_for_kernel

__all__ = [
    "KernelOp",
    "ComputeStep",
    "ExecutionPlan",
    "PlanInfo",
    "plan_for_kernel",
    "execute_plan",
    "analyze_plan",
    "time_parts",
    "cost_plan",
    "PlanCache",
    "PlanCacheEntry",
    "plan_fingerprint",
    "get_plan_cache",
    "set_plan_cache",
]
