"""The shared analyze/cost stage: counters → schedule → modeled time.

One path — previously copy-pasted across ``frameworks/base.py``,
``kernels/base.py``, and ``bench/tables.py`` — turns a plan's ops into
``KernelStats``/``ScheduleResult`` pairs, times each with the
theoretical-occupancy-aware :func:`~repro.gpusim.costmodel.estimate_kernel`,
and assembles the :class:`~repro.gpusim.costmodel.PipelineTiming`.
:func:`cost_plan` is the single source of truth for ``dispatch_seconds``
handling (the per-kernel framework dispatch tax DGL-class runtimes pay).
"""

from __future__ import annotations

from ..gpusim.config import GPUSpec
from ..gpusim.costmodel import (
    KernelTiming,
    PipelineTiming,
    estimate_kernel,
    estimate_pipeline,
)
from ..gpusim.kernel import KernelStats, PipelineStats
from ..gpusim.occupancy import theoretical_occupancy
from ..gpusim.scheduler import ScheduleResult
from .ir import ExecutionPlan

__all__ = ["analyze_plan", "time_parts", "cost_plan"]

#: a (counters, schedule) pair, the unit flowing between analyze and cost
Part = tuple[KernelStats, ScheduleResult]


def analyze_plan(
    plan: ExecutionPlan, spec: GPUSpec
) -> tuple[PipelineStats, list[Part]]:
    """Run every op's counter model and aggregate the pipeline stats."""
    parts = [op.analyze(spec) for op in plan.ops]
    pipeline = PipelineStats(
        name=plan.pipeline_name, preprocess_seconds=plan.preprocess_seconds
    )
    for stats, _sched in parts:
        pipeline.add(stats)
    return pipeline, parts


def time_parts(parts: list[Part], spec: GPUSpec) -> list[KernelTiming]:
    """Cost each (stats, schedule) pair under its theoretical occupancy."""
    timings: list[KernelTiming] = []
    for stats, sched in parts:
        occ = theoretical_occupancy(stats.launch, spec).theoretical
        timings.append(
            estimate_kernel(stats, sched, spec, theoretical_occupancy=occ)
        )
    return timings


def cost_plan(
    pipeline: PipelineStats,
    timings: list[KernelTiming],
    spec: GPUSpec,
    *,
    dispatch_seconds: float | None = None,
) -> PipelineTiming:
    """Assemble per-kernel timings into the pipeline total.

    ``dispatch_seconds`` is the system's per-kernel host dispatch cost;
    ``None`` means bare kernel launches (no framework loop between them).
    """
    if dispatch_seconds is not None:
        eff_spec = spec.with_overrides(
            framework_dispatch_seconds=dispatch_seconds
        )
        return estimate_pipeline(
            pipeline, timings, eff_spec, framework_dispatch=True
        )
    return estimate_pipeline(pipeline, timings, spec)
