"""Bounded plan cache keyed by a content fingerprint.

A cache entry memoizes everything the execute + analyze/cost stages
produce for one (system, model, graph, features, spec, knobs) cell:
the output features, the aggregated :class:`~repro.gpusim.kernel.
PipelineStats`, and the :class:`~repro.gpusim.costmodel.PipelineTiming`.
A warm hit therefore skips lowering, numeric execution, and the whole
counter/cost analysis — the host-side win ``benchmarks/bench_serving.py``
measures.

Cache key (:func:`plan_fingerprint`) — content, never identity:

* the graph's :meth:`~repro.graph.csr.CSRGraph.fingerprint` (sha256 over
  the CSR arrays),
* the feature matrix bytes (shape + dtype + data),
* model name, system name, and the system's ``plan_knobs()`` dict,
* the full :class:`~repro.gpusim.config.GPUSpec`,
* the dataset's full-size hints (they steer TLPGNN's hybrid heuristic).

Invalidation rules: anything not in the key must not change results.
Two run paths bypass the cache by construction (see
``frameworks/base.py``): an explicit ``rng`` (caller-controlled attention
parameters) and an installed tracer (span replay must observe the real
execution, not a memoized one).

Hits and misses are published as ``plan_cache_hit`` / ``plan_cache_miss``
counters into the installed :mod:`repro.obs.metrics` registry.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.costmodel import PipelineTiming
from ..gpusim.kernel import PipelineStats
from ..obs.metrics import get_registry
from .ir import PlanInfo

__all__ = [
    "PlanCache",
    "PlanCacheEntry",
    "plan_fingerprint",
    "get_plan_cache",
    "set_plan_cache",
]

#: default entry bound — big enough for a bench sweep's working set,
#: small enough that cached output matrices stay cheap
DEFAULT_MAXSIZE = 32


def plan_fingerprint(
    *,
    system: str,
    model: str,
    graph,
    X: np.ndarray,
    spec: GPUSpec,
    knobs: dict | None = None,
    dataset=None,
    opt: dict | None = None,
) -> str:
    """Content sha256 identifying one lowered + analyzed cell.

    ``opt`` carries the optimizer context (level, tuner version, tuned
    knob dict) of an ``opt=``-enabled run — part of the key so an
    untuned cached plan is never served as a tuned one and vice versa.
    ``None`` (the pre-optimizer run path) is deliberately excluded from
    the payload, keeping every historical fingerprint stable.
    """
    payload = {
        "system": system,
        "model": model,
        "knobs": knobs or {},
        "spec": asdict(spec),
        "dataset": (
            {
                "abbr": dataset.spec.abbr,
                "scale": dataset.scale,
                "full_num_vertices": dataset.full_num_vertices,
                "full_avg_degree": dataset.full_avg_degree,
            }
            if dataset is not None
            else None
        ),
    }
    if opt is not None:
        payload["opt"] = opt
    h = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    h.update(graph.fingerprint().encode())
    X = np.ascontiguousarray(X)
    h.update(repr((X.shape, str(X.dtype))).encode())
    h.update(X.tobytes())
    return h.hexdigest()


@dataclass
class PlanCacheEntry:
    """Memoized execute + analyze/cost results of one plan."""

    output: np.ndarray
    stats: PipelineStats
    timing: PipelineTiming
    info: PlanInfo
    #: optimized-vs-lowered equivalence certificate (as_dict form) when
    #: the entry was produced under an optimizer level; None for opt=off
    #: runs — the certificate travels with the fingerprint so incremental
    #: plan patches (ROADMAP item 3) stay per-plan auditable
    certificate: dict | None = None


class PlanCache:
    """Bounded LRU over :class:`PlanCacheEntry`, with hit/miss counters."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, PlanCacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: str, **labels: str) -> PlanCacheEntry | None:
        """Look up a fingerprint; counts (and publishes) the hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._publish("plan_cache_miss", labels)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._publish("plan_cache_hit", labels)
        return entry

    def put(self, key: str, entry: PlanCacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> dict:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def publish(self, registry=None) -> None:
        """Publish the cache's state into a metrics registry (the installed
        one by default; no-op when none).

        Materializes both per-lookup counters — ``plan_cache_hit`` and
        ``plan_cache_miss`` — even at zero, so every consumer (``repro
        serve --metrics-out``, ``run_system`` sweeps) exposes the same
        counter set regardless of which events actually fired, plus
        ``plan_cache_{hits,misses,evictions,entries}`` gauges carrying the
        cache's lifetime state.
        """
        registry = registry if registry is not None else get_registry()
        if registry is None:
            return
        registry.counter("plan_cache_hit")
        registry.counter("plan_cache_miss")
        snap = self.snapshot()
        registry.gauge("plan_cache_entries").set(snap["entries"])
        registry.gauge("plan_cache_hits").set(snap["hits"])
        registry.gauge("plan_cache_misses").set(snap["misses"])
        registry.gauge("plan_cache_evictions").set(snap["evictions"])

    # ------------------------------------------------------------------
    @staticmethod
    def _publish(name: str, labels: dict) -> None:
        registry = get_registry()
        if registry is not None:
            registry.counter(name, **labels).inc()


#: process-wide cache, enabled by default (set to None to disable)
_PLAN_CACHE: PlanCache | None = PlanCache()


def get_plan_cache() -> PlanCache | None:
    """The installed process-wide plan cache (None = caching disabled)."""
    return _PLAN_CACHE


def set_plan_cache(cache: PlanCache | None) -> PlanCache | None:
    """Install (or disable with None) the plan cache; returns the previous."""
    global _PLAN_CACHE
    previous = _PLAN_CACHE
    _PLAN_CACHE = cache
    return previous
