"""The ExecutionPlan IR: what a lowered GNN pipeline *is*.

A plan is the compile-stage artifact of one (system, model, graph,
features, spec) cell: the ordered kernel list with each kernel's workload
or counter-model closure, the workload-balance choice, the fusion
structure, and one :class:`ComputeStep` describing how the numeric output
is produced.  Plans carry no timing — analysis and costing happen in
:mod:`repro.plan.analyzer` so they can be cached and re-dispatched
without re-lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.scheduler import ScheduleResult
from ..lint.access import KernelAccess
from ..lint.effects import KernelEffects
from ..models.convspec import ConvWorkload
from ..obs.tracer import span

__all__ = ["KernelOp", "ComputeStep", "ExecutionPlan", "PlanInfo", "plan_for_kernel"]

#: analyze closure signature for modeled (non-ConvKernel) ops
AnalyzeFn = Callable[[GPUSpec], tuple[KernelStats, ScheduleResult]]


@dataclass(frozen=True)
class KernelOp:
    """One kernel launch of a lowered pipeline.

    Two kinds exist:

    * ``kind="conv"`` — a real :class:`~repro.kernels.base.ConvKernel`
      over a :class:`~repro.models.convspec.ConvWorkload`; analysis runs
      the kernel's vectorized counter model.
    * ``kind="modeled"`` — a counter-model closure (``analyze_fn``) for
      kernels that exist only as launches in the framework's pipeline
      (DGL's elementwise glue, finalize kernels, the unfused GAT stages).
    """

    name: str
    kind: str  # "conv" | "modeled"
    kernel: Any | None = None
    workload: ConvWorkload | None = None
    analyze_fn: AnalyzeFn | None = None
    #: workload-balance choice ("hybrid" / "hardware" / "static" /
    #: "neighbor-group" / "edge-centric" / None for streaming glue)
    balance: str | None = None
    #: whether this op fuses what the baseline runs as multiple launches
    fused: bool = False
    #: declared effect table (buffers read/written/atomically merged +
    #: launch envelope); conv ops auto-populate from the kernel, modeled
    #: ops must declare explicitly — the lint analyses consume this
    effects: KernelEffects | None = None
    #: declared symbolic access table (per-buffer lane/iter expressions;
    #: see :mod:`repro.lint.access`); auto-populated like ``effects`` —
    #: every effects-declared buffer must carry a pattern or ACC001 fires
    access: KernelAccess | None = None

    def __post_init__(self) -> None:
        if self.kind == "conv" and self.workload is not None:
            if self.effects is None:
                declare = getattr(self.kernel, "effects", None)
                if callable(declare):
                    object.__setattr__(self, "effects", declare(self.workload))
            if self.access is None:
                declare = getattr(self.kernel, "access_patterns", None)
                if callable(declare):
                    object.__setattr__(self, "access", declare(self.workload))

    def analyze(self, spec: GPUSpec) -> tuple[KernelStats, ScheduleResult]:
        """Produce this op's counters + schedule for ``spec``."""
        if self.kind == "conv":
            with span("kernel.analyze", kernel=self.kernel.name) as sp:
                stats, sched = self.kernel.analyze(self.workload, spec)
                if sp is not None:
                    sp.set(num_units=sched.num_units, policy=sched.policy)
            return stats, sched
        if self.analyze_fn is None:
            raise ValueError(f"modeled op {self.name!r} has no analyze_fn")
        return self.analyze_fn(spec)


@dataclass(frozen=True)
class ComputeStep:
    """How a plan's numeric output is produced (the execute stage).

    ``kind="kernel"`` runs ``kernel.run(workload)``; ``kind="reference"``
    runs the exact functional reference over the workload (the baselines
    whose many-launch pipelines are numerically just the reference
    aggregation).  ``output_perm`` optionally un-permutes the output back
    to the caller's vertex order (GNNAdvisor's reordering).
    """

    kind: str  # "kernel" | "reference"
    workload: ConvWorkload
    kernel: Any | None = None
    #: span label for reference-kind execution
    label: str | None = None
    output_perm: np.ndarray | None = None


@dataclass(frozen=True)
class PlanInfo:
    """Light, cache-safe summary of a plan (attached to SystemResult)."""

    system: str
    model: str
    graph: str
    pipeline: str
    num_kernels: int
    op_names: tuple[str, ...]
    fingerprint: str | None = None
    #: True when the result came from a warm PlanCache entry
    cached: bool = False


@dataclass
class ExecutionPlan:
    """A lowered pipeline: ops + compute step + host-side cost metadata."""

    system: str
    model: str
    graph_name: str
    pipeline_name: str
    ops: list[KernelOp]
    compute: ComputeStep
    #: one-off host pre-processing charged to the pipeline (GNNAdvisor)
    preprocess_seconds: float = 0.0
    #: per-kernel framework dispatch cost (None = bare launches)
    dispatch_seconds: float | None = None
    #: content fingerprint (see :func:`repro.plan.cache.plan_fingerprint`);
    #: None when the plan was lowered outside the cacheable path
    fingerprint: str | None = None

    @property
    def num_kernels(self) -> int:
        return len(self.ops)

    @property
    def op_names(self) -> tuple[str, ...]:
        return tuple(op.name for op in self.ops)

    def info(self, *, cached: bool = False) -> PlanInfo:
        return PlanInfo(
            system=self.system,
            model=self.model,
            graph=self.graph_name,
            pipeline=self.pipeline_name,
            num_kernels=self.num_kernels,
            op_names=self.op_names,
            fingerprint=self.fingerprint,
            cached=cached,
        )

    def describe(self) -> str:
        """Human-readable lowering (the ``repro plan`` subcommand body)."""
        head = (
            f"{self.system}/{self.model} on {self.graph_name}: "
            f"{self.num_kernels} kernel(s), pipeline {self.pipeline_name}"
        )
        if self.fingerprint:
            head += f", fingerprint {self.fingerprint[:16]}"
        lines = [head]
        for i, op in enumerate(self.ops):
            attrs = ["conv" if op.kind == "conv" else "modeled"]
            if op.balance:
                attrs.append(f"balance={op.balance}")
            if op.fused:
                attrs.append("fused")
            lines.append(f"  [{i}] {op.name} ({', '.join(attrs)})")
            if op.effects is not None:
                lines.append(f"        {op.effects.summary()}")
            if op.access is not None:
                lines.append(f"        access: {op.access.summary()}")
        if self.dispatch_seconds:
            lines.append(
                f"  + framework dispatch "
                f"{self.dispatch_seconds * 1e6:.0f} us per kernel"
            )
        if self.preprocess_seconds:
            lines.append(
                f"  + host pre-processing "
                f"{self.preprocess_seconds * 1e3:.3f} ms (one-off)"
            )
        return "\n".join(lines)


def plan_for_kernel(
    kernel,
    workload: ConvWorkload,
    *,
    system: str = "kernel",
    model: str = "conv",
    pipeline_name: str | None = None,
    balance: str | None = None,
) -> ExecutionPlan:
    """Wrap a single ConvKernel launch as a one-op plan (multigpu shards)."""
    return ExecutionPlan(
        system=system,
        model=model,
        graph_name=workload.graph.name,
        pipeline_name=pipeline_name or f"{system}_{kernel.name}",
        ops=[
            KernelOp(
                name=kernel.name,
                kind="conv",
                kernel=kernel,
                workload=workload,
                balance=balance or getattr(kernel, "assignment", None),
            )
        ],
        compute=ComputeStep(kind="kernel", kernel=kernel, workload=workload),
    )
