"""The shared numeric executor: one run loop for every lowered plan.

Replaces the per-framework execution code that used to live inside each
system's ``_pipeline``: a plan's :class:`~repro.plan.ir.ComputeStep`
either runs a real ConvKernel or the exact functional reference, then
optionally un-permutes the output back to the caller's vertex order.
"""

from __future__ import annotations

import numpy as np

from ..models.convspec import reference_aggregate
from ..obs.reqtrace import current_batch_context
from ..obs.tracer import span
from .ir import ExecutionPlan

__all__ = ["execute_plan"]


def _request_tags() -> dict:
    """Request-level attribution for kernel spans: when this execution
    happens on behalf of a served batch, tag the span with its ids."""
    bctx = current_batch_context()
    if bctx is None:
        return {}
    return {"batch": bctx.bid, "rids": list(bctx.rids)}


def execute_plan(plan: ExecutionPlan) -> np.ndarray:
    """Produce the plan's output features (the execute stage)."""
    step = plan.compute
    if step.kind == "kernel":
        with span("kernel.run", kernel=step.kernel.name, **_request_tags()):
            output = step.kernel.run(step.workload)
    elif step.kind == "reference":
        with span(
            "kernel.run",
            kernel=step.label or plan.pipeline_name,
            **_request_tags(),
        ):
            output = reference_aggregate(step.workload)
    else:  # pragma: no cover - lowering rules only emit the two kinds
        raise ValueError(f"unknown compute kind {step.kind!r}")
    if step.output_perm is not None:
        output = output[step.output_perm]
    return output
