"""The TLPGNN kernel — the paper's contribution (Sections 4-6).

Two-level parallelism: level 1 maps each vertex to one warp (no atomics,
no intra-warp divergence); level 2 maps feature dimensions to the warp's
lanes (coalesced loads of each neighbour's feature row).  On top of that:

* hybrid dynamic workload assignment (hardware / software / heuristic),
* register caching of the edge-list bounds and the reduction accumulator,
* kernel fusion: attention workloads (GAT) run as a *single* kernel that
  recomputes edge logits in three in-register passes (max, sum-exp,
  aggregate) instead of materializing per-edge data.

``group_size`` < 32 splits each warp into independent lane groups, one
vertex each — the "half warp" configuration of Table 2.
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..balance.hybrid import hybrid_assignment
from ..balance.software import software_assignment
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats, LaunchConfig
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..lint.effects import LaunchEnvelope
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import (
    ConvKernel,
    feature_row_sectors,
    feature_rounds,
    index_span_sectors,
    make_amap,
)

__all__ = ["TLPGNNKernel", "per_vertex_counters"]


def _round_sectors(feat_dim: int, lanes: int) -> int:
    """Total sectors of one feature row fetched in ``lanes``-wide rounds."""
    full, rem = divmod(feat_dim, lanes)
    s = full * (-(-4 * lanes // 32))
    if rem:
        s += -(-4 * rem // 32)
    return s


def per_vertex_counters(
    degrees: np.ndarray,
    feat_dim: int,
    *,
    edge_scalar_loads: int = 0,
    attention: bool = False,
    register_cache: bool = True,
    group_size: int = 32,
    mean_reduce: bool = False,
) -> dict[str, np.ndarray]:
    """Per-vertex L1 request/sector/instruction counts of the TLPGNN kernel.

    Pure function of the degree sequence — this is what lets the Figure 11
    harness evaluate full-size workloads from a sampled degree sequence
    without materializing hundred-million-edge index arrays.
    """
    d = np.asarray(degrees, dtype=np.int64)
    n = d.size
    L = group_size
    R = feature_rounds(feat_dim, L)
    SR = _round_sectors(feat_dim, L)
    passes = 3 if attention else 1
    e_s = edge_scalar_loads

    req = np.full(n, 2, dtype=np.int64)
    l1 = np.full(n, 2, dtype=np.int64)
    req += d * passes * (1 + e_s)
    l1 += d * (1 + e_s)
    req += d * R
    l1 += d * SR
    if not register_cache:
        req += d + d * R
        l1 += d + d * SR
    store_req = np.full(n, R, dtype=np.int64)
    store_l1 = np.full(n, SR, dtype=np.int64)
    if not register_cache:
        store_req += d * R
        store_l1 += d * SR

    per_edge_instr = 2 * passes + R + e_s
    if attention:
        per_edge_instr += 6
    instr = 6 + R + d * per_edge_instr
    if mean_reduce:
        instr = instr + R
    return {
        "load_requests": req,
        "l1_load_sectors": l1,
        "store_requests": store_req,
        "l1_store_sectors": store_l1,
        "instructions": instr,
    }


class TLPGNNKernel(ConvKernel):
    """Warp-per-vertex, feature-parallel, fused graph-convolution kernel."""

    def __init__(
        self,
        *,
        group_size: int = 32,
        register_cache: bool = True,
        assignment: str = "hybrid",
        warps_per_block: int = 4,
        step: int = 8,
        hint_num_vertices: int | None = None,
        hint_avg_degree: float | None = None,
    ) -> None:
        if group_size not in (8, 16, 32):
            raise ValueError("group_size must be 8, 16 or 32")
        if assignment not in ("hardware", "software", "hybrid", "static"):
            raise ValueError("assignment must be hardware/software/hybrid/static")
        self.group_size = group_size
        self.register_cache = register_cache
        self.assignment = assignment
        self.warps_per_block = warps_per_block
        self.step = step
        self.hint_num_vertices = hint_num_vertices
        self.hint_avg_degree = hint_avg_degree
        self.name = f"tlpgnn[g={group_size},rc={int(register_cache)},{assignment}]"

    # ------------------------------------------------------------------
    def supports(self, workload: ConvWorkload) -> bool:
        return True  # attention fused in-kernel

    def _mapping(self) -> KernelMapping:
        """Level-1/level-2 schedule as data; effect and access tables are
        derived from it (plus the workload's UDF terms) in repro.mp."""
        return KernelMapping(
            unit="vertex_warp",
            lanes=self.group_size,
            register_cache=self.register_cache,
            warps_per_block=self.warps_per_block,
        )

    def effects(self, workload: ConvWorkload):
        # Warp-per-vertex: each warp owns its output row outright — no
        # atomics, no inter-warp writes (the paper's central claim).  The
        # envelope is the widest block any assignment may launch: the
        # software/hybrid task-pool path doubles warps_per_block.
        wpb = self.warps_per_block
        if self.assignment in ("software", "hybrid"):
            wpb *= 2
        return derive_effects(
            self._mapping(), workload,
            envelope=LaunchEnvelope(threads_per_block=wpb * 32),
        )

    def access_patterns(self, workload: ConvWorkload):
        # Level 1: one lane group per vertex — the CSR bounds and each
        # neighbour id are warp-uniform broadcasts.  Level 2: feature
        # dimensions ride the lanes, so every neighbour row and the output
        # row are consecutive-lane streams (Figure 5's coalescing claim).
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        # The warp-serial loop order is a rearrangement of the same sums the
        # reference computes; float addition order differs only within a
        # vertex's neighbour list, which allclose tolerances absorb.
        return self.reference(workload)

    # ------------------------------------------------------------------
    # counter model
    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        d = g.in_degrees.astype(np.int64)
        L = self.group_size
        R = feature_rounds(F, L)
        SF = feature_row_sectors(F)
        SR = _round_sectors(F, L)
        amap = make_amap(workload)
        attention = workload.attention is not None
        passes = 3 if attention else 1
        e_s = workload.edge_scalar_loads

        # ---------- L1TEX-level requests & sectors (per vertex) ----------
        # Index-boundary loads are register-cached; indices/scalar loads are
        # uniform (1 sector); feature rows are gathered once in the
        # aggregate pass.  Re-reads in passes 2..3 of the fused attention
        # kernel hit L1, so they issue requests but move no new sectors.
        counters = per_vertex_counters(
            d,
            F,
            edge_scalar_loads=e_s,
            attention=attention,
            register_cache=self.register_cache,
            group_size=L,
            mean_reduce=workload.reduce == "mean",
        )
        req_v = counters["load_requests"]
        l1_v = counters["l1_load_sectors"]
        store_req_v = counters["store_requests"]
        store_l1_v = counters["l1_store_sectors"]
        instr_v = counters["instructions"]
        # Pass-2/3 re-reads hit L1: they cost issue slots (already in req_v)
        # but no fresh sector service, so they stay out of the cycle cost —
        # yet Nsight's L1TEX sector counter still registers them.
        l1_hot = d * (passes - 1) * (1 + e_s)

        # ---------- DRAM traffic ----------
        idx_span = index_span_sectors(g.indptr, base=amap.indices_base)
        dram_load = int(idx_span.sum()) * passes
        dram_load += -(-4 * (n + 1) // 32)  # indptr array, streamed once
        if attention:
            # per-vertex attention scalars gathered by source id
            dram_load += cached_dram_sectors(
                passes * E, -(-4 * n // 32), spec.l2_bytes
            )
            dram_load += -(-4 * n // 32)  # att_dst, one uniform load/vertex
        elif e_s:
            # edge weights stream with the edge list
            dram_load += int(
                np.sum(index_span_sectors(g.indptr, base=amap.edge_val_base))
            )
        # neighbour feature rows through L2
        dram_load += cached_dram_sectors(E * SR, n * SF, spec.l2_bytes)
        dram_store = n * SF
        if not self.register_cache:
            # accumulator reads stay L1-hot (same row per warp iteration);
            # the write-through stores stream to L2 and spill to DRAM on
            # eviction
            dram_store += cached_dram_sectors(E * SR, n * SF, spec.l2_bytes)

        # ---------- per-scheduled-unit cycles ----------
        vertex_cycles = warp_cycles(
            spec,
            instructions=instr_v.astype(np.float64),
            requests=(req_v + store_req_v).astype(np.float64),
            sectors=(l1_v + store_l1_v).astype(np.float64),
        )
        groups_per_warp = spec.threads_per_warp // L
        if groups_per_warp > 1:
            # lane groups within a warp serialize on divergence; one warp
            # carries `groups_per_warp` vertices.
            pad = (-n) % groups_per_warp
            padded = np.pad(vertex_cycles, (0, pad))
            unit_cycles = padded.reshape(-1, groups_per_warp).sum(axis=1)
        else:
            unit_cycles = vertex_cycles

        schedule, launch = self._schedule(unit_cycles, g, spec)

        idle = (L - (F % L)) % L
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=int(dram_store),
            l1_load_sectors=int(l1_v.sum() + l1_hot.sum()),
            l1_store_sectors=int(store_l1_v.sum()),
            load_requests=int(req_v.sum()),
            store_requests=int(store_req_v.sum()),
            instructions=int(instr_v.sum()),
            warp_cycles=unit_cycles,
            divergent_lanes=int(idle) * int(d.sum() + n),
            workspace_bytes=0,
        )
        return stats, schedule

    def _schedule(
        self, unit_cycles: np.ndarray, g, spec: GPUSpec
    ) -> tuple[ScheduleResult, LaunchConfig]:
        if self.assignment == "hardware":
            sched, launch = hardware_assignment(
                unit_cycles, spec, warps_per_block=self.warps_per_block
            )
        elif self.assignment == "static":
            from ..gpusim.scheduler import static_schedule

            launch = LaunchConfig(
                num_blocks=max(1, -(-unit_cycles.size // self.warps_per_block)),
                threads_per_block=self.warps_per_block * spec.threads_per_warp,
            )
            sched = static_schedule(unit_cycles, launch, spec)
        elif self.assignment == "software":
            sched, launch = software_assignment(
                unit_cycles, spec, step=self.step,
                warps_per_block=self.warps_per_block * 2,
            )
        else:
            sched, launch, _policy = hybrid_assignment(
                unit_cycles,
                spec,
                num_vertices=self.hint_num_vertices or g.num_vertices,
                avg_degree=(
                    self.hint_avg_degree
                    if self.hint_avg_degree is not None
                    else g.avg_degree
                ),
                warps_per_block=self.warps_per_block,
                step=self.step,
            )
        return sched, launch

    # ------------------------------------------------------------------
    # micro-simulator replay (small graphs)
    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        n, F = g.num_vertices, workload.feat_dim
        L = self.group_size
        amap = make_amap(workload)
        attention = workload.attention is not None
        e_s = workload.edge_scalar_loads
        rounds = [
            (r * L, min(L, F - r * L)) for r in range(feature_rounds(F, L))
        ]
        passes = 3 if attention else 1
        for v in range(n):
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            sim.warp_load([amap.indptr_addr(v)])
            sim.warp_load([amap.indptr_addr(v + 1)])
            sim.issue(2)
            for p in range(passes):
                last_pass = p == passes - 1
                for i in range(start, end):
                    sim.warp_load([amap.indices_addr(i)])
                    if e_s:
                        # attention gathers att_src[src]; weighted workloads
                        # stream w[i] — both one uniform scalar.
                        addr = (
                            amap.edge_val_addr(int(g.indices[i]))
                            if attention
                            else amap.edge_val_addr(i)
                        )
                        sim.warp_load([addr])
                    sim.issue(2)
                    if last_pass:
                        if not self.register_cache:
                            sim.warp_load([amap.indptr_addr(v + 1)])
                        src = int(g.indices[i])
                        for off, lanes in rounds:
                            addrs = amap.feat_addr(src, off + np.arange(lanes))
                            sim.warp_load(addrs)
                            sim.issue(1)
                            if not self.register_cache:
                                addrs_o = amap.out_addr(v, off + np.arange(lanes))
                                sim.warp_load(addrs_o)
                                sim.warp_store(addrs_o)
            for off, lanes in rounds:
                sim.warp_store(amap.out_addr(v, off + np.arange(lanes)))
        return self.reference(workload)
