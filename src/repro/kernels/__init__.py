"""Graph-convolution kernels: TLPGNN (the contribution) and the baselines
the paper profiles against (push, edge-centric, pull thread-per-vertex,
GNNAdvisor neighbor groups), plus fusion building blocks."""

from .base import (
    ConvKernel,
    KernelResult,
    feature_row_sectors,
    feature_rounds,
    index_span_sectors,
    make_amap,
)
from .edge_centric import EdgeCentricKernel
from .edge_parallel_warp import EdgeParallelWarpKernel
from .fusion import streaming_kernel_stats, three_kernel_gat
from .neighbor_group import NeighborGroupKernel, build_groups
from .pull_cta import PullCTAKernel
from .pull_thread import PullThreadKernel
from .push import PushKernel
from .tlpgnn import TLPGNNKernel, per_vertex_counters

__all__ = [
    "ConvKernel",
    "KernelResult",
    "feature_row_sectors",
    "feature_rounds",
    "index_span_sectors",
    "make_amap",
    "TLPGNNKernel",
    "per_vertex_counters",
    "PullThreadKernel",
    "PullCTAKernel",
    "EdgeParallelWarpKernel",
    "PushKernel",
    "EdgeCentricKernel",
    "NeighborGroupKernel",
    "build_groups",
    "streaming_kernel_stats",
    "three_kernel_gat",
    "KERNELS",
]

#: Registry of the Table 1 / Table 2 kernel implementations by paper name.
KERNELS = {
    "pull": lambda: TLPGNNKernel(assignment="hardware"),
    "tlpgnn": lambda: TLPGNNKernel(),
    "half_warp": lambda: TLPGNNKernel(group_size=16, assignment="hardware"),
    "one_thread": PullThreadKernel,
    "one_cta": PullCTAKernel,
    "edge_parallel_warp": EdgeParallelWarpKernel,
    "push": PushKernel,
    "edge": EdgeCentricKernel,
    "gnnadvisor": NeighborGroupKernel,
}
