"""Thread-per-vertex pull kernel — the uncoalesced anti-pattern (Table 2).

Each CUDA thread gathers one vertex: lanes of a warp process 32 *different*
vertices, so every feature load touches 32 different rows (Figure 3a),
sector/request explodes, and uneven degrees cause intra-warp divergence.
The paper uses this implementation as the foil for Observation II.
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import cached_dram_sectors, scattered_rows_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import ConvKernel, feature_row_sectors, index_span_sectors, make_amap

__all__ = ["PullThreadKernel"]


class PullThreadKernel(ConvKernel):
    """One thread per destination vertex, scalar loop over edges and dims."""

    name = "pull_thread"

    def __init__(self, *, warps_per_block: int = 4) -> None:
        self.warps_per_block = warps_per_block

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="vertex_thread", warps_per_block=self.warps_per_block
        )

    def effects(self, workload: ConvWorkload):
        # Uncoalesced, but still pull-style: each thread owns one output
        # row, so the writes stay exclusive and atomic-free.
        return derive_effects(self._mapping(), workload)

    def access_patterns(self, workload: ConvWorkload):
        # The Figure 3a anti-pattern, symbolically: each lane walks its own
        # edge list (per-lane degree trips → DIV001), gathers rows lane by
        # lane (ACC002), and writes its own row at a row-pitch stride
        # (ACC003).  Only the indptr bounds load is coalesced.
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        d = g.in_degrees.astype(np.int64)
        e_s = workload.edge_scalar_loads
        SF = feature_row_sectors(F)
        amap = make_amap(workload)
        row_stride = 4 * F

        # group vertices into warps of 32 consecutive lanes
        W = -(-n // 32)
        pad = W * 32 - n
        dw = np.pad(d, (0, pad)).reshape(W, 32)
        lanes_w = np.minimum(
            np.full(W, 32), n - 32 * np.arange(W)
        ).astype(np.int64)
        D_w = dw.max(axis=1)  # divergent iteration count per warp
        sum_d_w = dw.sum(axis=1)

        def scat(active):
            return scattered_rows_sectors(int(active), row_stride)

        scat_unit = scat(1)  # sectors per active lane (1 when rows >= 32B)
        # per warp: indptr (2 reqs, consecutive lanes → spans), per iteration
        # one index load + e_s scalar loads + F feature loads, then F stores.
        req_w = 2 + D_w * (1 + e_s + F) + F
        l1_w = (
            2 * np.ceil(4 * lanes_w / 32).astype(np.int64)
            + sum_d_w * (1 + e_s) * scat_unit
            + F * sum_d_w * scat_unit
            + F * lanes_w * scat_unit
        )
        instr_w = 4 + D_w * (2 + F + e_s) + F
        divergent = int(((D_w[:, None] - dw) * (F + 1)).clip(min=0).sum())

        # DRAM: per-lane sequential index/weight streams hit L1; features are
        # full-sector touches per access.
        idx_span = index_span_sectors(g.indptr, base=amap.indices_base)
        dram_load = int(idx_span.sum())
        dram_load += -(-4 * (n + 1) // 32)
        if e_s:
            dram_load += int(
                np.sum(index_span_sectors(g.indptr, base=amap.edge_val_base))
            )
        dram_load += cached_dram_sectors(E * F * scat_unit, n * SF, spec.l2_bytes)
        dram_store = n * SF

        cycles = warp_cycles(
            spec,
            instructions=instr_w.astype(np.float64),
            requests=req_w.astype(np.float64),
            sectors=l1_w.astype(np.float64),
        )
        schedule, launch = hardware_assignment(
            cycles, spec, warps_per_block=self.warps_per_block
        )
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=int(dram_store),
            l1_load_sectors=int(l1_w.sum()),
            l1_store_sectors=int((F * lanes_w * scat_unit).sum()),
            load_requests=int(req_w.sum() - W * F),
            store_requests=int(W * F),
            instructions=int(instr_w.sum()),
            warp_cycles=cycles,
            divergent_lanes=divergent,
        )
        # l1_load double-counted the store portion inside l1_w; fix split.
        stats.l1_load_sectors -= stats.l1_store_sectors
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        n, F = g.num_vertices, workload.feat_dim
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        indptr, indices = g.indptr, g.indices
        for w0 in range(0, n, 32):
            vs = np.arange(w0, min(w0 + 32, n))
            sim.warp_load(amap.indptr_addr(vs))
            sim.warp_load(amap.indptr_addr(vs + 1))
            sim.issue(4)
            starts = indptr[vs].copy()
            ends = indptr[vs + 1]
            t = 0
            dmax = int((ends - starts).max(initial=0))
            for t in range(dmax):
                pos = starts + t
                active = pos < ends
                if not active.any():
                    break
                sim.diverge(int(len(vs) - active.sum()) * (F + 1))
                sim.warp_load(amap.indices_addr(pos[active]))
                if e_s:
                    sim.warp_load(amap.edge_val_addr(pos[active]))
                srcs = indices[pos[active]]
                sim.issue(2)
                for j in range(F):
                    sim.warp_load(amap.feat_addr(srcs, j))
                    sim.issue(1)
            for j in range(F):
                sim.warp_store(amap.out_addr(vs, j))
        return self.reference(workload)
