"""Edge-centric scatter kernel with atomic updates (Table 1 baseline).

Each warp owns a chunk of consecutive edges (COO order) and, for each edge,
atomically adds the weighted source row into the destination row.  The
workload is perfectly balanced across warps — the upside the paper grants
edge-parallelism — but every edge pays the atomic toll, and consecutive
edges of the same destination serialize hard (Observation I).
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..gpusim.atomics import scatter_collision_rate
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import ConvKernel, feature_row_sectors, feature_rounds, make_amap

__all__ = ["EdgeCentricKernel"]


class EdgeCentricKernel(ConvKernel):
    """Warp-per-edge-chunk atomic scatter (X-Stream-style edge parallel)."""

    name = "edge_centric"

    def __init__(self, *, edges_per_warp: int = 32, warps_per_block: int = 4) -> None:
        if edges_per_warp < 1:
            raise ValueError("edges_per_warp must be >= 1")
        self.edges_per_warp = edges_per_warp
        self.warps_per_block = warps_per_block

    def supports(self, workload: ConvWorkload) -> bool:
        return workload.attention is None and workload.reduce != "max"

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="edge_chunk", warps_per_block=self.warps_per_block
        )

    def effects(self, workload: ConvWorkload):
        # Pure scatter over COO chunks (no indptr): every edge atomically
        # merges a feature row into its destination — no plain stores at
        # all; even the self term rides the atomic path.
        return derive_effects(self._mapping(), workload)

    def access_patterns(self, workload: ConvWorkload):
        # COO streaming: ids and rows are lane-coalesced per edge, but the
        # destination row of every atomic is indirected — the chunk's edges
        # scatter over arbitrary output rows (ACC004, Observation I).
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        e_s = workload.edge_scalar_loads
        R = feature_rounds(F, 32)
        SF = feature_row_sectors(F)
        epw = self.edges_per_warp

        W = max(1, -(-E // epw))
        edges_w = np.full(W, epw, dtype=np.int64)
        if E:
            edges_w[-1] = E - epw * (W - 1)
        else:
            edges_w[:] = 0

        # per edge: src idx + dst idx + scalar (uniform loads), gather src
        # row, atomic dst row
        req_w = edges_w * (2 + e_s + R)
        l1_load_w = edges_w * (2 + e_s) + edges_w * SF
        l1_atomic_w = edges_w * SF
        atomic_req_w = edges_w * R
        instr_w = 2 + edges_w * (3 + R + e_s)

        # DRAM: COO src/dst (+weights) stream sequentially; rows gather
        # through L2; atomics read-modify-write destination rows.
        stream_arrays = 2 + e_s
        dram_load = stream_arrays * (-(-4 * E // 32)) if E else 0
        dram_load += cached_dram_sectors(E * SF, n * SF, spec.l2_bytes)
        dram_atomic = cached_dram_sectors(E * SF, n * SF, spec.l2_bytes)
        dram_load += dram_atomic  # read half of the RMW

        collision = scatter_collision_rate(g.in_degrees)

        cycles = warp_cycles(
            spec,
            instructions=instr_w.astype(np.float64),
            requests=(req_w + atomic_req_w).astype(np.float64),
            sectors=(l1_load_w + l1_atomic_w).astype(np.float64),
        )
        schedule, launch = hardware_assignment(
            cycles, spec, warps_per_block=self.warps_per_block
        )
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=0,
            atomic_sectors=int(dram_atomic),
            l1_load_sectors=int(l1_load_w.sum()),
            l1_atomic_sectors=int(l1_atomic_w.sum()),
            load_requests=int(req_w.sum()),
            atomic_requests=int(atomic_req_w.sum()),
            atomic_ops=int(E) * F,
            atomic_collision_rate=float(collision),
            instructions=int(instr_w.sum()),
            warp_cycles=cycles,
        )
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        F = workload.feat_dim
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        src, dst = g.edge_list()
        rounds = [(r * 32, min(32, F - r * 32)) for r in range(feature_rounds(F, 32))]
        E = g.num_edges
        for c0 in range(0, E, self.edges_per_warp):
            sim.issue(2)
            for i in range(c0, min(c0 + self.edges_per_warp, E)):
                sim.warp_load([amap.indices_addr(i)])  # src id
                sim.warp_load([amap.indices_addr(i)])  # dst id (COO twin)
                if e_s:
                    sim.warp_load([amap.edge_val_addr(i)])
                sim.issue(3)
                for off, lanes in rounds:
                    sim.warp_load(amap.feat_addr(int(src[i]), off + np.arange(lanes)))
                    sim.warp_atomic(amap.out_addr(int(dst[i]), off + np.arange(lanes)))
                    sim.issue(1)
        return self.reference(workload)
