"""GNNAdvisor-style neighbor-group kernel (Table 1 / Figure 8 baseline).

Each vertex's neighbour list is pre-partitioned into fixed-size groups;
each group is processed by one warp (feature-parallel lanes, like TLPGNN's
second level) and the per-group partial result is merged into the vertex's
row with ``atomicAdd`` — the atomic traffic Figure 8 charts.  Group-table
construction is the pre-processing overhead the framework layer accounts
for.
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..gpusim.atomics import scatter_collision_rate
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import (
    ConvKernel,
    feature_row_sectors,
    feature_rounds,
    index_span_sectors,
    make_amap,
)

__all__ = ["NeighborGroupKernel", "build_groups"]


def build_groups(in_degrees: np.ndarray, group_size: int) -> np.ndarray:
    """Sizes of the fixed-size neighbour groups, vertex-major.

    A vertex of degree ``d`` yields ``ceil(d/group_size)`` groups: full
    groups followed by the remainder.  Returned with a parallel array of
    owning vertex ids via :func:`group_owners`.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    d = np.asarray(in_degrees, dtype=np.int64)
    n_full = d // group_size
    rem = d % group_size
    counts = n_full + (rem > 0)
    # for each vertex: n_full groups of `group_size`, then the remainder
    sizes = np.full(int(counts.sum()), group_size, dtype=np.int64)
    # the last group of each vertex with a remainder is the remainder
    ends = np.cumsum(counts)
    has_rem = rem > 0
    sizes[ends[has_rem] - 1] = rem[has_rem]
    return sizes


def group_owners(in_degrees: np.ndarray, group_size: int) -> np.ndarray:
    """Owning vertex of each group (parallel to :func:`build_groups`)."""
    d = np.asarray(in_degrees, dtype=np.int64)
    counts = d // group_size + (d % group_size > 0)
    return np.repeat(np.arange(d.size, dtype=np.int64), counts)


class NeighborGroupKernel(ConvKernel):
    """Warp-per-neighbour-group gather with atomic merge (GNNAdvisor)."""

    name = "neighbor_group"

    def __init__(self, *, group_size: int = 3, warps_per_block: int = 4) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        self.warps_per_block = warps_per_block
        self.name = f"neighbor_group[gs={group_size}]"

    def supports(self, workload: ConvWorkload) -> bool:
        return workload.attention is None and workload.reduce != "max"

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="neighbor_group",
            lanes=16,  # GNNAdvisor's half-warp dimension tiling
            warps_per_block=self.warps_per_block,
            group_size=self.group_size,
            reads_group_table=True,
        )

    def effects(self, workload: ConvWorkload):
        # One warp per neighbour group; groups of the same vertex merge
        # their partial rows with atomicAdd — sum(ceil(d/gs)) * F element
        # ops, Figure 8's traffic.  The host-built group table is an input.
        return derive_effects(self._mapping(), workload)

    def access_patterns(self, workload: ConvWorkload):
        # Feature rows are fetched as two half-warp requests (GNNAdvisor's
        # dimension tiling): each half is still a consecutive-lane stream.
        # The atomic merge targets the group's *own* vertex row — warp
        # collisions, but no indirected scatter (Figure 8, not Figure 7).
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        d = g.in_degrees
        e_s = workload.edge_scalar_loads
        R = feature_rounds(F, 32)
        SF = feature_row_sectors(F)
        amap = make_amap(workload)

        sizes = build_groups(d, self.group_size)
        n_groups = sizes.size

        # per group: 3 metadata loads (start, size, owner), per edge the
        # index + scalar + feature row, one atomic row merge
        # GNNAdvisor's dimension tiling splits each row fetch into two
        # requests (half-coalesced): double the issue cost; each half-request
        # touches ceil(SF/2) sectors (so narrow rows re-touch their sector).
        half_sectors = 2 * (-(-SF // 2))
        req_g = 3 + sizes * (1 + e_s + 2 * R)
        l1_load_g = 3 + sizes * (1 + e_s) + sizes * half_sectors
        l1_atomic_g = np.full(n_groups, SF, dtype=np.int64)
        atomic_req_g = np.full(n_groups, R, dtype=np.int64)
        instr_g = 4 + sizes * (2 + R + e_s) + R

        idx_span = index_span_sectors(g.indptr, base=amap.indices_base)
        dram_load = int(idx_span.sum()) + 3 * (-(-4 * n_groups // 32))
        if e_s:
            dram_load += int(
                np.sum(index_span_sectors(g.indptr, base=amap.edge_val_base))
            )
        # the group-table streams pollute L2, halving its effective reach
        dram_load += cached_dram_sectors(E * SF, n * SF, spec.l2_bytes // 2)
        dram_atomic = cached_dram_sectors(n_groups * SF, n * SF, spec.l2_bytes)
        dram_load += dram_atomic

        groups_per_vertex = d // self.group_size + (d % self.group_size > 0)
        collision = scatter_collision_rate(groups_per_vertex, window=8)

        cycles = warp_cycles(
            spec,
            instructions=instr_g.astype(np.float64),
            requests=(req_g + atomic_req_g).astype(np.float64),
            sectors=(l1_load_g + l1_atomic_g).astype(np.float64),
        )
        schedule, launch = hardware_assignment(
            cycles, spec, warps_per_block=self.warps_per_block
        )
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=0,
            atomic_sectors=int(dram_atomic),
            l1_load_sectors=int(l1_load_g.sum()),
            l1_atomic_sectors=int(l1_atomic_g.sum()),
            load_requests=int(req_g.sum()),
            atomic_requests=int(atomic_req_g.sum()),
            atomic_ops=int(n_groups) * F,
            atomic_collision_rate=float(collision),
            instructions=int(instr_g.sum()),
            warp_cycles=cycles,
            workspace_bytes=int(3 * 4 * n_groups),  # the group table
        )
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        F = workload.feat_dim
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        rounds = [(r * 32, min(32, F - r * 32)) for r in range(feature_rounds(F, 32))]
        gs = self.group_size
        for v in range(g.num_vertices):
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            for g0 in range(start, end, gs):
                sim.warp_load([amap.indptr_addr(v)])  # group meta x3
                sim.warp_load([amap.indptr_addr(v)])
                sim.warp_load([amap.indptr_addr(v)])
                sim.issue(4)
                for i in range(g0, min(g0 + gs, end)):
                    sim.warp_load([amap.indices_addr(i)])
                    if e_s:
                        sim.warp_load([amap.edge_val_addr(i)])
                    sim.issue(2)
                    src = int(g.indices[i])
                    for off, lanes in rounds:
                        # half-coalesced: the dimension tiling splits each
                        # row fetch into two requests
                        half = -(-lanes // 2)
                        sim.warp_load(amap.feat_addr(src, off + np.arange(half)))
                        sim.warp_load(
                            amap.feat_addr(src, off + half + np.arange(lanes - half))
                        )
                        sim.issue(2)
                for off, lanes in rounds:
                    sim.warp_atomic(amap.out_addr(v, off + np.arange(lanes)))
                    sim.issue(1)
        return self.reference(workload)
