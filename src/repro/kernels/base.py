"""Kernel base class and shared counter helpers.

All graph-convolution kernels expose the same three-tier interface:

* ``run(workload)`` — exact functional output (vectorized numpy mirroring
  the kernel's math; every kernel must agree with the reference).
* ``analyze(workload, spec)`` — vectorized counter model producing
  :class:`~repro.gpusim.kernel.KernelStats` and a schedule.
* ``trace(workload, sim)`` — replay the access pattern warp by warp
  through the micro-simulator (small graphs; validates ``analyze``).

Kernels are *feature-parallel in the lanes* (the paper's second level)
except :class:`~repro.kernels.pull_thread.PullThreadKernel`, which is the
uncoalesced thread-per-vertex anti-pattern of Table 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..gpusim.costmodel import KernelTiming
from ..gpusim.kernel import KernelStats, LaunchConfig
from ..gpusim.microsim import AddressMap, MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..lint.access import KernelAccess
from ..lint.effects import KernelEffects
from ..models.convspec import ConvWorkload, reference_aggregate
from ..obs.tracer import span

__all__ = [
    "ConvKernel",
    "KernelResult",
    "feature_row_sectors",
    "feature_rounds",
    "index_span_sectors",
    "make_amap",
]


def feature_row_sectors(feat_dim: int, *, sector_bytes: int = 32) -> int:
    """Sectors one full float32 feature row occupies (``ceil(4F/32)``)."""
    if feat_dim <= 0:
        raise ValueError("feat_dim must be positive")
    return -(-4 * feat_dim // sector_bytes)


def feature_rounds(feat_dim: int, lanes: int = 32) -> int:
    """Chunks of ``lanes`` dimensions needed to cover a feature row."""
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    return -(-feat_dim // lanes)


def index_span_sectors(
    indptr: np.ndarray, *, itemsize: int = 4, base: int = 0, sector_bytes: int = 32
) -> np.ndarray:
    """Per-vertex sectors of the contiguous ``indices[start:end)`` span.

    This is the post-L1 (DRAM) footprint of streaming a vertex's edge list:
    sequential uniform loads re-hit the same sector for ``sector/itemsize``
    consecutive edges.
    """
    starts = base + itemsize * indptr[:-1]
    lengths = itemsize * np.diff(indptr)
    first = starts // sector_bytes
    last = (starts + np.maximum(lengths, 1) - 1) // sector_bytes
    return np.where(lengths > 0, last - first + 1, 0).astype(np.int64)


def make_amap(workload: ConvWorkload) -> AddressMap:
    """Standard device layout for a workload (shared by trace/analyze)."""
    g = workload.graph
    return AddressMap.create(g.num_vertices, g.num_edges, workload.feat_dim)


@dataclass
class KernelResult:
    """Everything one kernel execution yields."""

    output: np.ndarray
    stats: KernelStats
    schedule: ScheduleResult
    timing: KernelTiming


class ConvKernel(ABC):
    """Interface shared by all graph-convolution kernels."""

    name: str = "kernel"

    @abstractmethod
    def run(self, workload: ConvWorkload) -> np.ndarray:
        """Functional output of the kernel (must equal the reference)."""

    @abstractmethod
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        """Vectorized counter model + schedule for the workload."""

    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        """Micro-simulator replay (small graphs); returns the output."""
        raise NotImplementedError(f"{self.name} has no micro-sim trace")

    def effects(self, workload: ConvWorkload) -> KernelEffects | None:
        """Declared effect table for ``workload`` (buffers + launch
        envelope; see :mod:`repro.lint.effects`).  ``None`` means the
        kernel declares nothing — the hazard lint flags that as an error,
        so every concrete kernel overrides this."""
        return None

    def access_patterns(self, workload: ConvWorkload) -> KernelAccess | None:
        """Declared symbolic access table for ``workload`` (per-buffer
        lane/iter expressions; see :mod:`repro.lint.access`).  ``None``
        means the kernel declares nothing — the access lint flags that as
        an ACC001 error, so every concrete kernel overrides this."""
        return None

    def supports(self, workload: ConvWorkload) -> bool:
        """Whether the kernel can execute the workload (attention etc.)."""
        return workload.attention is None

    def execute(self, workload: ConvWorkload, spec: GPUSpec = V100) -> KernelResult:
        """Run + analyze + cost-model in one call."""
        with span("kernel.run", kernel=self.name):
            output = self.run(workload)
        with span("kernel.analyze", kernel=self.name) as sp:
            stats, schedule = self.analyze(workload, spec)
            if sp is not None:
                sp.set(num_units=schedule.num_units, policy=schedule.policy)
        with span("kernel.timing", kernel=self.name) as sp:
            from ..plan import time_parts

            timing = time_parts([(stats, schedule)], spec)[0]
            if sp is not None:
                sp.add_modeled(timing.gpu_seconds)
        return KernelResult(output=output, stats=stats, schedule=schedule, timing=timing)

    # ------------------------------------------------------------------
    @staticmethod
    def reference(workload: ConvWorkload) -> np.ndarray:
        return reference_aggregate(workload)

    def _default_launch(
        self,
        num_units: int,
        spec: GPUSpec,
        *,
        warps_per_block: int = 4,
        regs_per_thread: int = 32,
    ) -> LaunchConfig:
        """One warp per work unit, grouped ``warps_per_block`` to a block."""
        blocks = max(1, -(-num_units // warps_per_block))
        return LaunchConfig(
            num_blocks=blocks,
            threads_per_block=warps_per_block * spec.threads_per_warp,
            regs_per_thread=regs_per_thread,
        )
