"""Push-style scatter kernel with atomic updates (Table 1 baseline).

Warp-per-*source*-vertex, feature-parallel lanes: each warp walks its
vertex's out-edges and atomically adds the (weighted) source row into every
destination's result row.  Correct without synchronization only because of
the atomics — which is exactly the overhead Observation I measures.
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..gpusim.atomics import scatter_collision_rate
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import (
    ConvKernel,
    feature_row_sectors,
    feature_rounds,
    index_span_sectors,
    make_amap,
)

__all__ = ["PushKernel"]


class PushKernel(ConvKernel):
    """Warp-per-source-vertex atomic scatter over out-edges."""

    name = "push"

    def __init__(self, *, warps_per_block: int = 4) -> None:
        self.warps_per_block = warps_per_block

    def supports(self, workload: ConvWorkload) -> bool:
        # scatter cannot express per-destination softmax or max-reduce
        return workload.attention is None and workload.reduce != "max"

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="source_push", warps_per_block=self.warps_per_block
        )

    def effects(self, workload: ConvWorkload):
        # Each warp initializes its own source row (exclusive write of the
        # self term), then scatters into arbitrary destination rows: every
        # edge merges a full feature row with atomicAdd (E*F element ops).
        return derive_effects(self._mapping(), workload)

    def access_patterns(self, workload: ConvWorkload):
        # Lane-level traffic is as coalesced as TLPGNN's (own row reads,
        # consecutive-lane rounds) — the scatter damage is at the *row*
        # level: every edge atomically targets an indirected destination
        # row, so units collide (ACC004) where warp-per-vertex cannot.
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        # Scatter over out-edges computes the same sums as the gather
        # reference (plus the same mean/self handling).
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        rev = g.reverse()
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        o = rev.in_degrees.astype(np.int64)  # out-degrees of original graph
        e_s = workload.edge_scalar_loads
        R = feature_rounds(F, 32)
        SF = feature_row_sectors(F)
        amap = make_amap(workload)

        # per source vertex: bounds, own row, per edge (dst idx + scalar +
        # atomic rows)
        req_v = 2 + R + o * (1 + e_s)
        l1_load_v = 2 + SF + o * (1 + e_s)
        l1_atomic_v = o * SF
        atomic_req_v = o * R
        store_req_v = np.full(n, R, dtype=np.int64)  # self-term output init
        store_l1_v = np.full(n, SF, dtype=np.int64)
        instr_v = 6 + R + o * (2 + R + e_s)

        idx_span = index_span_sectors(rev.indptr, base=amap.indices_base)
        dram_load = int(idx_span.sum()) + -(-4 * (n + 1) // 32)
        dram_load += n * SF  # each source row read once
        if e_s:
            # edge weights indexed by original edge id — a permuted gather
            dram_load += cached_dram_sectors(E, -(-4 * E // 32), spec.l2_bytes)
        dram_atomic = cached_dram_sectors(E * SF, n * SF, spec.l2_bytes)
        # the read half of the read-modify-write
        dram_load += dram_atomic

        collision = scatter_collision_rate(g.in_degrees)
        cycles = warp_cycles(
            spec,
            instructions=instr_v.astype(np.float64),
            requests=(req_v + atomic_req_v + store_req_v).astype(np.float64),
            sectors=(l1_load_v + l1_atomic_v + store_l1_v).astype(np.float64),
        )
        schedule, launch = hardware_assignment(
            cycles, spec, warps_per_block=self.warps_per_block
        )
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=int(n) * SF,
            atomic_sectors=int(dram_atomic),
            l1_load_sectors=int(l1_load_v.sum()),
            l1_store_sectors=int(store_l1_v.sum()),
            l1_atomic_sectors=int(l1_atomic_v.sum()),
            load_requests=int(req_v.sum()),
            store_requests=int(store_req_v.sum()),
            atomic_requests=int(atomic_req_v.sum()),
            atomic_ops=int(E) * F,
            atomic_collision_rate=collision,
            instructions=int(instr_v.sum()),
            warp_cycles=cycles,
        )
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        rev = g.reverse()
        F = workload.feat_dim
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        rounds = [(r * 32, min(32, F - r * 32)) for r in range(feature_rounds(F, 32))]
        for v in range(g.num_vertices):
            start, end = int(rev.indptr[v]), int(rev.indptr[v + 1])
            sim.warp_load([amap.indptr_addr(v)])
            sim.warp_load([amap.indptr_addr(v + 1)])
            for off, lanes in rounds:
                sim.warp_load(amap.feat_addr(v, off + np.arange(lanes)))
                sim.warp_store(amap.out_addr(v, off + np.arange(lanes)))
            sim.issue(6)
            for i in range(start, end):
                dst = int(rev.indices[i])
                sim.warp_load([amap.indices_addr(i)])
                if e_s:
                    sim.warp_load([amap.edge_val_addr(i)])
                sim.issue(2)
                for off, lanes in rounds:
                    sim.warp_atomic(amap.out_addr(dst, off + np.arange(lanes)))
                    sim.issue(1)
        return self.reference(workload)
