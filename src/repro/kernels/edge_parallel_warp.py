"""Edge-parallel looping scheme inside the warp — Figure 5(a) of the paper.

The second-level design alternative TLPGNN rejects: within a warp-per-vertex
mapping, lanes process *different edges at the same feature dimension*
("feature-then-edge" order).  All 32 lanes then target the same output
element, so each step ends in an intra-warp reduction (modeled as a shuffle
tree — the atomic-free best case; a naive version would use atomics), and
the feature loads are scattered across 32 different rows (uncoalesced).

TLPGNN's feature parallelism (Figure 5(b)) wins on both counts; this kernel
exists to reproduce that design comparison quantitatively.
"""

from __future__ import annotations

import numpy as np

from ..balance.hardware import hardware_assignment
from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats
from ..gpusim.memory import cached_dram_sectors, scattered_rows_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult
from ..gpusim.warpcost import warp_cycles
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import ConvKernel, feature_row_sectors, index_span_sectors, make_amap

__all__ = ["EdgeParallelWarpKernel"]

#: cycles of a 32-lane shuffle reduction tree (5 rounds)
SHUFFLE_REDUCE_CYCLES = 10.0


class EdgeParallelWarpKernel(ConvKernel):
    """Warp-per-vertex with lanes over edges (feature-then-edge order)."""

    name = "edge_parallel_warp"

    def __init__(self, *, warps_per_block: int = 4) -> None:
        self.warps_per_block = warps_per_block

    def supports(self, workload: ConvWorkload) -> bool:
        return workload.attention is None and workload.reduce != "max"

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="edge_tile", warps_per_block=self.warps_per_block
        )

    def effects(self, workload: ConvWorkload):
        # Still warp-per-vertex at level 1: the shuffle tree keeps the
        # cross-lane reduction in registers, so the output write stays
        # exclusive (the naive atomic variant is what TLPGNN rejects).
        return derive_effects(self._mapping(), workload)

    def access_patterns(self, workload: ConvWorkload):
        # Feature-then-edge order: the edge-id tile is a consecutive-lane
        # stream, but every feature load puts 32 *different* source rows on
        # the lanes (ACC002 — Figure 5(a)'s uncoalesced case), and tail
        # tiles mask lanes on every low-degree vertex (DIV002).
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        d = g.in_degrees.astype(np.int64)
        e_s = workload.edge_scalar_loads
        SF = feature_row_sectors(F)
        amap = make_amap(workload)
        row_stride = 4 * F
        scat = scattered_rows_sectors(1, row_stride)

        # per vertex: lanes sweep the edge list in tiles of 32; for each
        # feature dim the tile's 32 lanes load 32 scattered elements and
        # shuffle-reduce into lane 0.
        tiles = -(-d // 32)
        tail = np.where(d > 0, d - 32 * (tiles - 1), 0)
        # index + scalar loads: coalesced across the tile (consecutive edges)
        req_v = 2 + tiles * (1 + e_s)
        l1_idx = index_span_sectors(g.indptr, base=amap.indices_base)
        l1_v = 2 + l1_idx * (1 + e_s)
        # feature loads: per tile, per dim: one scattered request
        req_v = req_v + tiles * F
        full_tiles = np.maximum(tiles - 1, 0)
        l1_feat = F * (full_tiles * 32 + tail) * scat
        l1_v = l1_v + l1_feat
        store_req_v = np.full(n, F // 32 + (F % 32 > 0), dtype=np.int64)
        store_l1_v = np.full(n, SF, dtype=np.int64)
        instr_v = 6 + tiles * F * 2

        dram_load = int(l1_idx.sum()) + -(-4 * (n + 1) // 32)
        if e_s:
            dram_load += int(
                np.sum(index_span_sectors(g.indptr, base=amap.edge_val_base))
            )
        dram_load += cached_dram_sectors(E * F * scat, n * SF, spec.l2_bytes)
        dram_store = n * SF

        cycles = warp_cycles(
            spec,
            instructions=instr_v.astype(np.float64),
            requests=(req_v + store_req_v).astype(np.float64),
            sectors=(l1_v + store_l1_v).astype(np.float64),
        ) + SHUFFLE_REDUCE_CYCLES * tiles * F

        schedule, launch = hardware_assignment(
            cycles, spec, warps_per_block=self.warps_per_block
        )
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=int(dram_store),
            l1_load_sectors=int(l1_v.sum()),
            l1_store_sectors=int(store_l1_v.sum()),
            load_requests=int(req_v.sum()),
            store_requests=int(store_req_v.sum()),
            instructions=int(instr_v.sum()),
            warp_cycles=cycles,
            divergent_lanes=int((F * (32 * tiles - d)).clip(min=0).sum()),
        )
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        F = workload.feat_dim
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        for v in range(g.num_vertices):
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            sim.warp_load([amap.indptr_addr(v)])
            sim.warp_load([amap.indptr_addr(v + 1)])
            sim.issue(6)
            for t0 in range(start, end, 32):
                idx = np.arange(t0, min(t0 + 32, end))
                # tail tiles leave lanes without an edge for every dim
                sim.diverge((32 - len(idx)) * F)
                sim.warp_load(amap.indices_addr(idx))
                if e_s:
                    sim.warp_load(amap.edge_val_addr(idx))
                srcs = g.indices[idx]
                for j in range(F):
                    sim.warp_load(amap.feat_addr(srcs, j))
                    sim.issue(2)
            for j0 in range(0, F, 32):
                lanes = min(32, F - j0)
                sim.warp_store(amap.out_addr(v, j0 + np.arange(lanes)))
        return self.reference(workload)
