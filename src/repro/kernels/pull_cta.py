"""CTA-per-vertex pull kernel — the third level-1 mapping of Section 4.2.

"Mapping a vertex to a whole CTA introduces synchronization overhead into
the kernels ... coordinating the warps in the same CTA to accomplish the
computation of a single vertex requires extra sync operations, and atomic
operations are needed to update the resulting feature of the vertex."

Each thread block (``warps_per_block`` warps) processes one vertex: the
warps split the edge list, accumulate partials, and combine them through
shared memory with ``__syncthreads`` barriers plus a final atomic-free
reduction (tree reduce across warps).  Correct, coalesced — but it burns
block-level synchronization on every vertex and wastes whole blocks on
low-degree vertices, which is why the paper picks warp-per-vertex.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats, LaunchConfig
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.microsim import MicroSim
from ..gpusim.scheduler import ScheduleResult, hardware_schedule
from ..gpusim.warpcost import warp_cycles
from ..lint.effects import LaunchEnvelope
from ..models.convspec import ConvWorkload
from ..mp.derive import KernelMapping, derive_access, derive_effects
from .base import (
    ConvKernel,
    feature_row_sectors,
    feature_rounds,
    index_span_sectors,
    make_amap,
)

__all__ = ["PullCTAKernel"]

#: cycles one __syncthreads barrier costs each participating warp
SYNC_CYCLES = 30.0


class PullCTAKernel(ConvKernel):
    """One thread block per destination vertex, warps splitting the edges."""

    name = "pull_cta"

    def __init__(self, *, warps_per_block: int = 4) -> None:
        if warps_per_block < 1:
            raise ValueError("warps_per_block must be >= 1")
        self.warps_per_block = warps_per_block
        self.name = f"pull_cta[w={warps_per_block}]"

    def _mapping(self) -> KernelMapping:
        return KernelMapping(
            unit="vertex_cta", warps_per_block=self.warps_per_block
        )

    def effects(self, workload: ConvWorkload):
        # CTA-per-vertex: warps combine partial rows through a shared-
        # memory tree reduce (one staged feature row per warp), then the
        # block's lane group writes its vertex row exclusively.  The smem
        # staging depends on the feature width, so the envelope is built
        # here rather than from the mapping alone.
        smem = 4 * workload.feat_dim * self.warps_per_block
        return derive_effects(
            self._mapping(), workload,
            envelope=LaunchEnvelope(
                threads_per_block=self.warps_per_block * 32,
                shared_mem_per_block=smem,
            ),
        )

    def access_patterns(self, workload: ConvWorkload):
        # CTA-per-vertex keeps TLPGNN's coalescing (feature dims on the
        # lanes, warp-uniform indices) — its costs are synchronization and
        # wasted blocks, which the resource/cost models account, not the
        # access shape.
        return derive_access(self._mapping(), workload)

    def run(self, workload: ConvWorkload) -> np.ndarray:
        return self.reference(workload)

    # ------------------------------------------------------------------
    def analyze(
        self, workload: ConvWorkload, spec: GPUSpec = V100
    ) -> tuple[KernelStats, ScheduleResult]:
        g = workload.graph
        n, E, F = g.num_vertices, g.num_edges, workload.feat_dim
        d = g.in_degrees.astype(np.int64)
        W = self.warps_per_block
        e_s = workload.edge_scalar_loads
        R = feature_rounds(F, 32)
        SF = feature_row_sectors(F)
        amap = make_amap(workload)

        # per vertex (= per block): the edge list splits across W warps
        # (each edge visited exactly once); one barrier + shared-memory tree
        # reduce (log2 W rounds of smem traffic) combines the partials.
        per_warp_edges = -(-d // W)  # the slowest warp's share
        sync_rounds = max(int(np.ceil(np.log2(max(W, 2)))), 1)
        req_v = 2 * W + d * (1 + e_s + R)
        l1_v = 2 * W + d * (1 + e_s + SF)
        store_req_v = np.full(n, R, dtype=np.int64)
        store_l1_v = np.full(n, SF, dtype=np.int64)
        instr_v = (
            8 * W
            + d * (2 + R + e_s)
            + sync_rounds * W * 4  # smem staging of partial rows
            + R
        )

        # block-serial cost per vertex: the slowest warp's share plus the
        # barrier + reduction epilogue every warp waits through.
        block_cycles = warp_cycles(
            spec,
            instructions=(
                8.0 + per_warp_edges * (2 + R + e_s) + sync_rounds * 4.0
            ),
            requests=(2.0 + per_warp_edges * (1 + e_s + R) + store_req_v),
            sectors=(2.0 + per_warp_edges * (1 + e_s + SF) + store_l1_v),
        ) + SYNC_CYCLES * (sync_rounds + 1)

        idx_span = index_span_sectors(g.indptr, base=amap.indices_base)
        dram_load = int(idx_span.sum()) + -(-4 * (n + 1) // 32)
        if e_s:
            dram_load += int(
                np.sum(index_span_sectors(g.indptr, base=amap.edge_val_base))
            )
        dram_load += cached_dram_sectors(E * SF, n * SF, spec.l2_bytes)
        dram_store = n * SF

        launch = LaunchConfig(
            num_blocks=max(n, 1),
            threads_per_block=W * spec.threads_per_warp,
        )
        # every block's W warps are *held* for the block's duration (that is
        # what the schedule sees), but only their fair share of the edge
        # work is useful — barrier wait must not count as memory-active
        # occupancy, or CTA mapping would look better than it is.
        held = np.repeat(block_cycles, W)
        useful = np.repeat(
            warp_cycles(
                spec,
                instructions=(8.0 + (d / W) * (2 + R + e_s)),
                requests=(2.0 + (d / W) * (1 + e_s + R)),
                sectors=(2.0 + (d / W) * (1 + e_s + SF)),
            ),
            W,
        )
        schedule = hardware_schedule(held, launch, spec)
        stats = KernelStats(
            name=self.name,
            launch=launch,
            load_sectors=int(dram_load),
            store_sectors=int(dram_store),
            l1_load_sectors=int(l1_v.sum()),
            l1_store_sectors=int(store_l1_v.sum()),
            load_requests=int(req_v.sum()),
            store_requests=int(store_req_v.sum()),
            instructions=int(instr_v.sum()),
            warp_cycles=useful,
            divergent_lanes=int(((per_warp_edges * W - d) * R).sum()),
        )
        return stats, schedule

    # ------------------------------------------------------------------
    def trace(self, workload: ConvWorkload, sim: MicroSim) -> np.ndarray:
        g = workload.graph
        F = workload.feat_dim
        W = self.warps_per_block
        e_s = workload.edge_scalar_loads
        amap = make_amap(workload)
        rounds = [(r * 32, min(32, F - r * 32)) for r in range(feature_rounds(F, 32))]
        for v in range(g.num_vertices):
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            for w in range(W):
                sim.warp_load([amap.indptr_addr(v)])
                sim.warp_load([amap.indptr_addr(v + 1)])
                sim.issue(8)
                for i in range(start + w, end, W):
                    sim.warp_load([amap.indices_addr(i)])
                    if e_s:
                        sim.warp_load([amap.edge_val_addr(i)])
                    sim.issue(2)
                    src = int(g.indices[i])
                    for off, lanes in rounds:
                        sim.warp_load(amap.feat_addr(src, off + np.arange(lanes)))
                        sim.issue(1)
            # barrier + smem tree reduce (no global traffic), then one store
            sim.issue(4 * max(int(np.ceil(np.log2(max(W, 2)))), 1) * W)
            for off, lanes in rounds:
                sim.warp_store(amap.out_addr(v, off + np.arange(lanes)))
        return self.reference(workload)
