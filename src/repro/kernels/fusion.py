"""Kernel fusion building blocks: ApplyEdge / ApplyVertex pipelines.

Section 6 of the paper: most GNN convolutions decompose into *ApplyEdge*
(compute a message per edge) and *ApplyVertex* (reduce messages per
vertex).  Unfused pipelines materialize every intermediate in global
memory; TLPGNN fuses everything into one kernel.  This module provides

* :func:`streaming_kernel_stats` — the generic cost of one elementwise /
  gather / segment kernel over edge- or vertex-parallel data (also the
  workhorse of the DGL baseline model),
* :func:`three_kernel_gat` — the paper's hand-written 3-kernel GAT
  (ApplyEdge logits → edge softmax → weighted aggregate), the middle column
  of Table 3.

The 1-kernel column of Table 3 is :class:`~repro.kernels.tlpgnn.TLPGNNKernel`
with an attention workload.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import V100, GPUSpec
from ..gpusim.kernel import KernelStats, LaunchConfig, PipelineStats
from ..gpusim.memory import cached_dram_sectors
from ..gpusim.scheduler import ScheduleResult, hardware_schedule, static_schedule
from ..gpusim.warpcost import warp_cycles
from ..lint.access import KernelAccess
from ..models.convspec import ConvWorkload, reference_aggregate
from ..mp.derive import softmax_stage_access
from .base import feature_row_sectors, index_span_sectors, make_amap

__all__ = [
    "streaming_kernel_stats",
    "three_kernel_gat",
    "three_kernel_gat_access",
    "three_kernel_gat_stats",
    "gat_edge_pipeline_output",
]


def streaming_kernel_stats(
    name: str,
    num_items: int,
    spec: GPUSpec = V100,
    *,
    read_bytes_per_item: float = 8.0,
    write_bytes_per_item: float = 4.0,
    gather_touches: int = 0,
    gather_unique_sectors: int = 0,
    instr_per_item: float = 3.0,
    workspace_bytes: int = 0,
    warps_per_block: int = 8,
    segment_imbalance: np.ndarray | None = None,
    schedule_policy: str = "hardware",
    l2_efficiency: float = 1.0,
) -> tuple[KernelStats, ScheduleResult]:
    """Cost one streaming (coalesced elementwise / segment / SpMM-ish) kernel.

    ``num_items`` items are processed one-per-thread with coalesced
    sequential reads/writes; ``gather_*`` adds an irregular gather component
    (for SpMM-style kernels).  ``segment_imbalance`` optionally replaces the
    uniform per-warp cost with a per-unit cost vector (e.g. per-row work of
    an SpMM), which is what makes DGL's SpMM sensitive to degree skew.
    """
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    items = max(num_items, 1)
    W = -(-items // spec.threads_per_warp)
    total_read = read_bytes_per_item * num_items
    total_write = write_bytes_per_item * num_items
    l1_load = int(-(-total_read // spec.sector_bytes)) + gather_touches
    l1_store = int(-(-total_write // spec.sector_bytes))
    load_req = max(1, int(-(-l1_load // 4)))
    store_req = max(1, int(-(-l1_store // 4)))
    dram_load = int(-(-total_read // spec.sector_bytes))
    if gather_touches:
        # Unfused pipelines co-stream materialized edge tensors through L2,
        # polluting the cache the gathers rely on; l2_efficiency < 1 models
        # that loss (the fused kernel keeps the full cache).
        dram_load += cached_dram_sectors(
            gather_touches,
            gather_unique_sectors,
            int(spec.l2_bytes * l2_efficiency),
        )
    dram_store = l1_store

    if segment_imbalance is not None:
        cycles = np.asarray(segment_imbalance, dtype=np.float64)
    else:
        per_warp_sectors = (l1_load + l1_store) / W
        per_warp_req = (load_req + store_req) / W
        cycles = warp_cycles(
            spec,
            instructions=np.full(W, instr_per_item * spec.threads_per_warp / 1.0),
            requests=np.full(W, per_warp_req),
            sectors=np.full(W, per_warp_sectors),
        )
    launch = LaunchConfig(
        num_blocks=max(1, -(-max(cycles.size, 1) // warps_per_block)),
        threads_per_block=warps_per_block * spec.threads_per_warp,
    )
    schedule_fn = (
        static_schedule if schedule_policy == "static" else hardware_schedule
    )
    schedule = schedule_fn(cycles, launch, spec)
    stats = KernelStats(
        name=name,
        launch=launch,
        load_sectors=dram_load,
        store_sectors=dram_store,
        l1_load_sectors=l1_load,
        l1_store_sectors=l1_store,
        load_requests=load_req,
        store_requests=store_req,
        instructions=int(instr_per_item * items),
        warp_cycles=cycles,
        workspace_bytes=workspace_bytes,
    )
    return stats, schedule


# ----------------------------------------------------------------------
# the 3-kernel GAT pipeline of Table 3
# ----------------------------------------------------------------------
def gat_edge_pipeline_output(workload: ConvWorkload) -> np.ndarray:
    """Functional output of the unfused GAT pipelines (edge data
    materialized); numerically identical to the fused path."""
    if workload.attention is None:
        raise ValueError("GAT pipeline needs an attention workload")
    return reference_aggregate(workload)


def three_kernel_gat(
    workload: ConvWorkload,
    spec: GPUSpec = V100,
    *,
    schedule_policy: str = "hardware",
    register_cache: bool = True,
    l2_efficiency: float = 0.35,
) -> tuple[np.ndarray, PipelineStats, list[tuple[KernelStats, ScheduleResult]]]:
    """The paper's hand-written three-kernel GAT convolution.

    Output + counters in one call; :func:`three_kernel_gat_stats` is the
    analysis-only half (what plan lowering uses — the output comes from
    the shared executor instead).
    """
    pipeline, parts = three_kernel_gat_stats(
        workload,
        spec,
        schedule_policy=schedule_policy,
        register_cache=register_cache,
        l2_efficiency=l2_efficiency,
    )
    return gat_edge_pipeline_output(workload), pipeline, parts


def three_kernel_gat_access(
    workload: ConvWorkload,
    *,
    logits: str = "tmp:logits",
    alpha: str = "tmp:alpha",
) -> dict[str, KernelAccess]:
    """Access tables of the unfused GAT stages, keyed by stage.

    ApplyEdge is the pipeline's uncoalesced step: every edge gathers the
    two per-vertex attention scalars through ``indices`` (ACC002).  The
    softmax and the streaming sides stay lane-coalesced; the aggregate
    re-reads its global accumulator because the unfused pipelines run
    without register caching.  ``alpha`` names the buffer the softmax
    materializes (FeatGraph keeps a transient, the unfused TLPGNN path
    writes the downstream kernel's ``edge_vals``).

    The staging itself is the UDF normalization term made explicit —
    the tables are derived in :func:`repro.mp.derive.softmax_stage_access`
    (single source of truth shared with the framework lowerings); this
    wrapper keeps the historical kernel-layer entry point.
    """
    return softmax_stage_access(workload, logits=logits, alpha=alpha)


def three_kernel_gat_stats(
    workload: ConvWorkload,
    spec: GPUSpec = V100,
    *,
    schedule_policy: str = "hardware",
    register_cache: bool = True,
    l2_efficiency: float = 0.35,
) -> tuple[PipelineStats, list[tuple[KernelStats, ScheduleResult]]]:
    """Counter model of the three-kernel GAT (no numeric execution).

    Kernel 1 (ApplyEdge): logits[e] = LeakyReLU(att_src[src] + att_dst[dst])
    — written to global memory.  Kernel 2 (ApplyVertex): per-destination
    softmax over the logits — rewritten in place.  Kernel 3 (ApplyVertex):
    weighted feature aggregation reading the per-edge alphas.
    """
    if workload.attention is None:
        raise ValueError("three_kernel_gat needs an attention workload")
    g = workload.graph
    n, E, Fdim = g.num_vertices, g.num_edges, workload.feat_dim
    SF = feature_row_sectors(Fdim)
    amap = make_amap(workload)
    att_sectors = -(-4 * n // 32)

    pipeline = PipelineStats(name="gat_three_kernel")
    parts: list[tuple[KernelStats, ScheduleResult]] = []

    # K1: per edge, gather two vertex scalars, write one float
    k1 = streaming_kernel_stats(
        "gat_apply_edge",
        E,
        spec,
        read_bytes_per_item=8.0,  # src & dst ids
        write_bytes_per_item=4.0,
        gather_touches=2 * E,
        gather_unique_sectors=2 * att_sectors,
        instr_per_item=4.0,
        workspace_bytes=4 * E,
    )
    # K2: segment softmax — read logits twice (max pass + exp/normalize),
    # write alphas; per-vertex segments make the work skewed.
    seg_cycles = warp_cycles(
        spec,
        instructions=4.0 + 3.0 * g.in_degrees.astype(np.float64),
        requests=2.0 + 2.0 * g.in_degrees.astype(np.float64) / 8.0,
        sectors=2.0 + 2.0 * index_span_sectors(g.indptr, base=amap.edge_val_base),
    )
    k2 = streaming_kernel_stats(
        "gat_edge_softmax",
        E,
        spec,
        read_bytes_per_item=8.0,
        write_bytes_per_item=4.0,
        instr_per_item=6.0,
        workspace_bytes=4 * E,
        segment_imbalance=seg_cycles,
        schedule_policy=schedule_policy,
    )
    # K3: weighted aggregation — stream alphas + indices, gather rows,
    # write output rows.
    R = -(-Fdim // 32)
    acc = 0 if register_cache else 2  # accumulator kept in global memory
    agg_cycles = warp_cycles(
        spec,
        instructions=6.0 + g.in_degrees.astype(np.float64) * (2 + R),
        requests=2.0 + g.in_degrees.astype(np.float64) * (2 + R + acc * R),
        sectors=2.0 + g.in_degrees.astype(np.float64) * (2 + SF + acc * SF) + SF,
    )
    k3 = streaming_kernel_stats(
        "gat_aggregate",
        E,
        spec,
        read_bytes_per_item=8.0,
        write_bytes_per_item=4.0 * Fdim * n / max(E, 1),
        gather_touches=E * SF * (1 + acc),
        gather_unique_sectors=n * SF,
        instr_per_item=3.0 + SF,
        segment_imbalance=agg_cycles,
        schedule_policy=schedule_policy,
        l2_efficiency=l2_efficiency,
    )
    for stats, sched in (k1, k2, k3):
        pipeline.add(stats)
        parts.append((stats, sched))
    return pipeline, parts
