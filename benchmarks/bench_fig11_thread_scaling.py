"""Figure 11: scalability against thread count (full-size degree sequences)."""

from repro.bench import fig11

from conftest import run_and_report


def test_fig11_thread_scaling(benchmark, config):
    result = run_and_report(benchmark, fig11, config)
    for rec in result.records:
        sp = rec["speedups"]
        assert sp[0] == 1.0
        assert all(b >= a for a, b in zip(sp, sp[1:], strict=False))  # monotone
        assert sp[-1] > 30.0  # paper: 45.3x-67.5x at 128 blocks
