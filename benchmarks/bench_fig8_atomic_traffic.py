"""Figure 8: GNNAdvisor atomic-write traffic (GCN/GIN over 7 datasets)."""

from repro.bench import fig8

from conftest import run_and_report


def test_fig8_atomic_traffic(benchmark, config):
    result = run_and_report(benchmark, fig8, config)
    assert len(result.records) == 14
    assert all(r["atomic_bytes"] > 0 for r in result.records)
    # traffic grows with graph size within each model series
    gcn = [r["atomic_bytes"] for r in result.records if r["model"] == "gcn"]
    assert gcn[-1] > gcn[0]  # OH >> CS
