"""Table 1: atomic-operation impact — push / edge-centric / GNNAdvisor /
pull implementations of the GCN convolution (ovcar_8h-like, feat 128)."""

from repro.bench import table1

from conftest import run_and_report


def test_table1_atomics(benchmark, config_f128):
    result = run_and_report(benchmark, table1, config_f128)
    recs = {r["kernel"].split("[")[0]: r for r in result.records}
    pull = [r for r in result.records if r["kernel"].startswith("tlpgnn")][0]
    others = [r for r in result.records if not r["kernel"].startswith("tlpgnn")]
    # Observation I: the atomic-free pull kernel wins
    assert all(pull["gpu_ms"] < r["gpu_ms"] for r in others)
    assert pull["atomic_bytes"] == 0
