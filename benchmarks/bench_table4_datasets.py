"""Table 4: graph benchmark statistics (paper spec vs loaded stand-ins)."""

from repro.bench import table4

from conftest import run_and_report


def test_table4_datasets(benchmark, config):
    result = run_and_report(benchmark, table4, config)
    assert len(result.records) == 11
    for rec in result.records:
        assert rec["num_edges"] <= max(config.max_edges * 1.05, rec["num_vertices"])
