"""Table 5: the main comparison — 4 models x 11 datasets x 4 systems."""

import os

from repro.bench import table5
from repro.bench.regress import default_store_path, record_point

from conftest import run_and_report

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def test_table5_main(benchmark, config):
    result = run_and_report(benchmark, table5, config)
    assert len(result.records) == 44
    wins = sum(1 for r in result.records if r["speedup"] > 1.0)
    # the paper's headline: TLPGNN beats the best baseline almost everywhere
    # (41 of 44 cells in the paper; our model has no losing cells)
    assert wins >= 40
    # GNNAdvisor dashes exactly where the paper has them
    dashes = [r for r in result.records if r["GNNA."] is None]
    assert len(dashes) == 2 * 4 + 2 * 11  # 4 big graphs x2 models + sage/gat


def test_record_table5_trajectory_point(config):
    """Append this run's table5-probe metrics to the BENCH_table5.json
    trend store (``repro regress`` compares HEAD against it)."""
    point = record_point(
        "table5", config, store_path=default_store_path("table5", REPO_ROOT)
    )
    assert point["metrics"]["speedup"] > 1.0
    print(
        f"\nrecorded table5 trajectory point at rev {point['rev']} "
        f"({len(point['metrics'])} metrics)"
    )
