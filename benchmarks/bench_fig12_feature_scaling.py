"""Figure 12: normalized runtime against feature size (16 -> 512)."""

from repro.bench import fig12

from conftest import run_and_report


def test_fig12_feature_scaling(benchmark, config):
    result = run_and_report(benchmark, fig12, config)
    for rec in result.records:
        norm = rec["normalized"]
        assert norm[0] == 1.0
        assert all(b > a for a, b in zip(norm, norm[1:], strict=False))  # monotone in F
        # 512 dims = 32x the work of 16; paper measures 27x-41.6x
        assert 10.0 < norm[-1] < 120.0  # ON crosses the L2 cliff, overshooting
