"""Design-knob ablations beyond the paper's figures.

Sweeps the tunables DESIGN.md calls out — warps-per-block (hardware
assignment balance vs scheduling overhead), the software pool's chunk step,
and the TLPGNN lane-group size — and records where each optimum falls.
"""

import numpy as np

from repro.bench import BenchConfig, get_dataset, make_features
from repro.gpusim import software_pool_schedule
from repro.kernels import TLPGNNKernel
from repro.models import build_conv

from conftest import MAX_EDGES, SEED


def _workload(abbr, feat=32):
    cfg = BenchConfig(feat_dim=feat, max_edges=MAX_EDGES, seed=SEED)
    ds = get_dataset(abbr, cfg)
    X = make_features(ds.graph.num_vertices, feat, seed=SEED)
    return build_conv("gcn", ds.graph, X), cfg.spec_for(ds)


def test_warps_per_block_sweep(benchmark):
    """Paper §5: fewer warps/block balances better but schedules more blocks."""
    wl, spec = _workload("RD")

    def sweep():
        out = {}
        for wpb in (1, 2, 4, 8, 16):
            k = TLPGNNKernel(assignment="hardware", warps_per_block=wpb)
            out[wpb] = k.execute(wl, spec).timing.gpu_seconds
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["times"] = {str(k): v for k, v in times.items()}
    # huge blocks must not be the optimum on a skewed graph
    assert min(times, key=times.get) < 16


def test_pool_step_sweep(benchmark):
    """Chunk size of Algorithm 1: tiny steps pay atomics, huge steps unbalance."""
    wl, spec = _workload("RD")
    stats, _ = TLPGNNKernel(assignment="software").analyze(wl, spec)

    def sweep():
        return {
            step: software_pool_schedule(
                stats.warp_cycles, spec, step=step
            ).makespan_cycles
            for step in (1, 2, 8, 64, 512)
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {str(k): v for k, v in spans.items()}
    assert spans[512] >= spans[8]  # giant chunks unbalance


def test_group_size_sweep(benchmark):
    """Lanes per vertex: 32 is right for feat >= 32; smaller groups only pay
    off when most lanes would idle."""
    wl16, spec = _workload("RD", feat=16)
    wl128, _ = _workload("RD", feat=128)

    def sweep():
        out = {}
        for feat, wl in (("f16", wl16), ("f128", wl128)):
            for gs in (8, 16, 32):
                k = TLPGNNKernel(group_size=gs, assignment="hardware")
                out[f"{feat}/g{gs}"] = k.execute(wl, spec).timing.gpu_seconds
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["times"] = {k: v for k, v in times.items()}
    # group size is a weak knob once the kernel is bandwidth-bound — the
    # paper's fig-12 "half the warp idle costs little" observation
    for feat in ("f16", "f128"):
        vals = [times[f"{feat}/g{g}"] for g in (8, 16, 32)]
        assert max(vals) / min(vals) < 1.4


def test_device_scaling_preserves_ordering(benchmark):
    """The scaled-device mode must not change who wins."""
    from repro.bench import run_comparison

    def compare():
        out = {}
        for scale_device in (True, False):
            cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED,
                              scale_device=scale_device)
            res = run_comparison("gcn", "RD", cfg)
            out[scale_device] = {
                k: (None if v is None else v.runtime_ms) for k, v in res.items()
            }
        return out

    res = benchmark.pedantic(compare, rounds=1, iterations=1)
    for _mode, times in res.items():
        valid = {k: v for k, v in times.items() if v is not None}
        assert min(valid, key=valid.get) == "TLPGNN"
