"""Table 3: kernel-launch impact — DGL (18) vs 3-kernel vs 1-kernel GAT."""

from repro.bench import table3

from conftest import run_and_report


def test_table3_fusion(benchmark, config):
    result = run_and_report(benchmark, table3, config)
    recs = {r["config"]: r for r in result.records}
    # Observation III: fewer kernels, faster runtime, less memory
    assert recs["One-Kernel"]["runtime"] < recs["Three-Kernel"]["runtime"]
    assert recs["Three-Kernel"]["runtime"] < recs["DGL"]["runtime"]
    assert recs["One-Kernel"]["usage"] < recs["DGL"]["usage"]
