"""Serving comparison: sustained throughput at a fixed p99 SLO (ISSUE 2).

Replays identical seeded open-loop traces against TLPGNN, DGL-sim, and
GNNAdvisor served through ``repro.serve`` (dynamic micro-batching, two
streams, bounded admission) and reports the highest offered rate each
system sustains with zero shed requests and p99 under the SLO.

Also measures the plan-cache host-side win (ISSUE 3): deploying the same
servable twice, the second offline profile hits the
:class:`repro.plan.PlanCache` and must cost measurably less wall time.
"""

import os
import time

from repro.bench import BenchConfig
from repro.bench.harness import get_dataset
from repro.bench.regress import default_store_path, record_point
from repro.bench.serving import serving_scenario
from repro.frameworks import TLPGNNEngine
from repro.plan import get_plan_cache
from repro.serve import ServableModel

from conftest import MAX_EDGES, SEED, run_and_report

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def test_serving_comparison(benchmark):
    cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED)
    result = run_and_report(
        benchmark, serving_scenario, cfg, datasets=("CS", "CR"),
        num_requests=120,
    )
    by_cell = {
        (r["dataset"], r["system"]): r
        for r in result.records
        if r.get("supported")
    }
    # the acceptance claim: TLPGNN sustains strictly more load than
    # DGL-sim at the same p99 SLO on both datasets
    for abbr in ("CS", "CR"):
        assert (
            by_cell[(abbr, "TLPGNN")]["sustained_rps"]
            > by_cell[(abbr, "DGL")]["sustained_rps"]
        )


def test_plan_cache_warm_deploy_is_cheaper():
    """Cold vs warm ServableModel deployment: the warm offline profile is
    a plan-cache hit and costs less host wall time."""
    cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED)
    ds = get_dataset("CS", cfg)
    spec = cfg.spec_for(ds)
    cache = get_plan_cache()
    assert cache is not None
    cache.clear()

    def deploy():
        t0 = time.perf_counter()
        servable = ServableModel(
            TLPGNNEngine(), "gcn", ds,
            feat_dim=cfg.feat_dim, spec=spec, seed=cfg.seed,
        )
        servable.offline_timing
        return time.perf_counter() - t0, servable

    t_cold, cold = deploy()
    t_warm, warm = deploy()
    assert not cold.plan_info.cached
    assert warm.plan_info.cached
    assert cache.hits >= 1
    assert t_warm < t_cold
    print(
        f"\ncold deploy {t_cold * 1e3:.2f} ms, warm {t_warm * 1e3:.2f} ms "
        f"({t_cold / t_warm:.1f}x host win)"
    )


def test_record_serving_trajectory_point():
    """Append this run's serving-probe metrics to the BENCH_serving.json
    trend store (the perf-regression observatory's time series; ``repro
    regress`` compares HEAD against the latest matching point)."""
    cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED)
    point = record_point(
        "serving", cfg, store_path=default_store_path("serving", REPO_ROOT)
    )
    assert point["metrics"]["completed"] > 0
    assert point["fingerprint"]
    print(
        f"\nrecorded serving trajectory point at rev {point['rev']} "
        f"({len(point['metrics'])} metrics)"
    )
