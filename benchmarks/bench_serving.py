"""Serving comparison: sustained throughput at a fixed p99 SLO (ISSUE 2).

Replays identical seeded open-loop traces against TLPGNN, DGL-sim, and
GNNAdvisor served through ``repro.serve`` (dynamic micro-batching, two
streams, bounded admission) and reports the highest offered rate each
system sustains with zero shed requests and p99 under the SLO.
"""

from repro.bench import BenchConfig
from repro.bench.serving import serving_scenario

from conftest import MAX_EDGES, SEED, run_and_report


def test_serving_comparison(benchmark):
    cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED)
    result = run_and_report(
        benchmark, serving_scenario, cfg, datasets=("CS", "CR"),
        num_requests=120,
    )
    by_cell = {
        (r["dataset"], r["system"]): r
        for r in result.records
        if r.get("supported")
    }
    # the acceptance claim: TLPGNN sustains strictly more load than
    # DGL-sim at the same p99 SLO on both datasets
    for abbr in ("CS", "CR"):
        assert (
            by_cell[(abbr, "TLPGNN")]["sustained_rps"]
            > by_cell[(abbr, "DGL")]["sustained_rps"]
        )
