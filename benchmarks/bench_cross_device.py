"""Cross-device check: do the paper's conclusions carry from V100 to A100?

The paper evaluates on a V100 only; this bench reruns a representative
slice of Table 5 on an A100-class spec (more SMs, 6.7x the L2, 1.7x the
bandwidth) and asserts the qualitative conclusions survive the hardware
generation — the kind of robustness a reviewer would ask about.
"""

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import DGLSystem, FeatGraphSystem, TLPGNNEngine
from repro.gpusim import A100, V100

from conftest import MAX_EDGES, SEED


def test_conclusions_hold_on_a100(benchmark):
    def run():
        out = {}
        for device_name, spec in (("V100", V100), ("A100", A100)):
            cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED, spec=spec)
            for model, abbr in (("gcn", "OH"), ("gat", "RD"), ("gcn", "RD")):
                ds = get_dataset(abbr, cfg)
                X = make_features(ds.graph.num_vertices, cfg.feat_dim, seed=SEED)
                cell = {}
                for name, factory in (
                    ("DGL", DGLSystem),
                    ("FeatGraph", FeatGraphSystem),
                    ("TLPGNN", TLPGNNEngine),
                ):
                    res = run_system(factory(), model, ds, cfg, X=X)
                    cell[name] = res.runtime_ms
                out[(device_name, model, abbr)] = cell
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = {
        "/".join(k): v for k, v in res.items()
    }
    print()
    for (dev, model, abbr), cell in res.items():
        best = min(cell.values())
        order = sorted(cell, key=cell.get)
        print(f"  {dev} {model} {abbr}: " + " < ".join(
            f"{n} {cell[n]:.2f}ms" for n in order))
        # TLPGNN stays fastest on both devices
        assert order[0] == "TLPGNN"
    # A100's bigger bandwidth should shrink absolute times
    for model, abbr in (("gcn", "OH"), ("gat", "RD")):
        assert (
            res[("A100", model, abbr)]["TLPGNN"]
            < res[("V100", model, abbr)]["TLPGNN"] * 1.05
        )
