"""Figure 9: achieved occupancy — FeatGraph vs TLPGNN (GCN convolution)."""

from repro.bench import fig9

from conftest import run_and_report


def test_fig9_occupancy(benchmark, config):
    result = run_and_report(benchmark, fig9, config)
    avg = {
        r["system"]: r["occupancy"]
        for r in result.records
        if r["dataset"] == "average"
    }
    # the paper reports 41.2% (FeatGraph) vs 68.2% (TLPGNN)
    assert avg["TLPGNN"] > avg["FeatGraph"]
