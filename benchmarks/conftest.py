"""Benchmark configuration shared by all table/figure benches.

Each benchmark regenerates one table or figure of the paper through
pytest-benchmark (single-round pedantic timing — a regeneration is a full
experiment, not a microbenchmark) and attaches the produced rows to
``benchmark.extra_info`` so the numbers land in the benchmark report.

Scale knobs: ``REPRO_MAX_EDGES`` (default 2_000_000) bounds the synthetic
dataset stand-ins; the modeled device shrinks with the data so modeled
milliseconds stay comparable with the paper's full-size numbers.
"""

import os

import pytest

from repro.bench import BenchConfig

MAX_EDGES = int(os.environ.get("REPRO_MAX_EDGES", 2_000_000))
SEED = int(os.environ.get("REPRO_SEED", 7))


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return BenchConfig(max_edges=MAX_EDGES, seed=SEED)


@pytest.fixture(scope="session")
def config_f128() -> BenchConfig:
    return BenchConfig(feat_dim=128, max_edges=MAX_EDGES, seed=SEED)


#: rendered tables/figures are persisted here on every benchmark run
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_and_report(benchmark, fn, *args, **kwargs):
    """Run a regenerator once under the benchmark clock, print it, and
    persist the rendered table to ``benchmarks/results/``."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    rendered = result.render()
    print()
    print(rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = result.exp_id.lower().replace(" ", "")
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(rendered + "\n")
    benchmark.extra_info["exp_id"] = result.exp_id
    benchmark.extra_info["rows"] = result.rows
    return result
