"""Auto-tuner vs. the paper's fixed TLPGNN configuration, per Table-4 cell.

For every Table-4 dataset the ``repro.opt`` tuner searches the
compute-kernel knob space of the TLPGNN gcn cell and must *rediscover or
beat* the paper's fixed configuration (hybrid assignment, 4 warps/block,
step 8, group_size 32) on modeled runtime — tie or win, never lose (the
tuner measures the fixed configuration first, so losing is structurally
impossible; the assert documents the contract).

Each cell also reports won/lost/tied of the tuned plan against the
hand-enumerated ``bench_design_space.py`` space (thread / warp / cta4 /
cta8 vertex mappings + the edge-parallel looping scheme) — the gSuite-
style framework-independent tuning matrix.
"""

from repro.bench import BenchConfig, get_dataset, make_features
from repro.frameworks import SYSTEMS
from repro.graph.datasets import DATASET_ORDER
from repro.kernels import (
    EdgeParallelWarpKernel,
    PullCTAKernel,
    PullThreadKernel,
    TLPGNNKernel,
)
from repro.opt import AutoTuner, TunedPlanStore, kernel_from_knobs
from repro.opt.passes import modeled_runtime_s
from repro.opt.rewrites import _conv_index, _with_kernel

from conftest import MAX_EDGES, SEED

#: the hand-enumerated bench_design_space.py candidates (level-1 mappings
#: + the level-2 edge-parallel alternative)
DESIGN_SPACE = {
    "thread": lambda: PullThreadKernel(),
    "warp": lambda: TLPGNNKernel(assignment="hardware"),
    "cta4": lambda: PullCTAKernel(warps_per_block=4),
    "cta8": lambda: PullCTAKernel(warps_per_block=8),
    "edge_parallel": lambda: EdgeParallelWarpKernel(),
}

MODEL = "gcn"
#: large enough to cover the full mapping × launch-geometry space
#: (~60 candidates), so every hand-enumerated design-space point is
#: provably inside the tuner's measured set
BUDGET = 64


def _tune_cell(abbr: str, config: BenchConfig) -> dict:
    ds = get_dataset(abbr, config)
    spec = config.spec_for(ds)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    system = SYSTEMS["TLPGNN"]()
    tuner = AutoTuner(budget=BUDGET, seed=config.seed, store=TunedPlanStore())
    result = tuner.tune(system, MODEL, ds, X, spec)

    # score the tuned plan against the hand-enumerated space on the same
    # (safe-optimized) plan skeleton the tuner searched
    plan = system.lower(MODEL, ds, X, spec)
    idx = _conv_index(plan)
    tuned_kernel = kernel_from_knobs(result.best_knobs, dataset=ds)
    tuned_ms = modeled_runtime_s(
        _with_kernel(plan, idx, tuned_kernel), spec
    ) * 1e3
    won = lost = tied = 0
    hand_ms = {}
    for label, factory in DESIGN_SPACE.items():
        kernel = factory()
        if not kernel.supports(plan.ops[idx].workload):
            continue
        ms = modeled_runtime_s(_with_kernel(plan, idx, kernel), spec) * 1e3
        hand_ms[label] = ms
        if tuned_ms < ms * (1 - 1e-9):
            won += 1
        elif tuned_ms > ms * (1 + 1e-9):
            lost += 1
        else:
            tied += 1
    return {
        "dataset": abbr,
        "fixed_ms": result.fixed_ms,
        "tuned_ms": result.tuned_ms,
        "speedup": result.speedup_vs_fixed,
        "iterations": result.iterations,
        "best": result.best_knobs,
        "won": won,
        "lost": lost,
        "tied": tied,
        "hand_ms": hand_ms,
    }


def test_autotune_table4(benchmark):
    config = BenchConfig(max_edges=MAX_EDGES, seed=SEED)

    def run():
        return [_tune_cell(abbr, config) for abbr in DATASET_ORDER]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    print()
    print(
        f"{'cell':>6} {'fixed_ms':>10} {'tuned_ms':>10} {'speedup':>8} "
        f"{'iters':>5} {'vs design space':>16}  winner"
    )
    for r in rows:
        best = r["best"]
        if best.get("kernel") == "tlpgnn":
            label = (
                f"tlpgnn[{best['assignment']},w={best['warps_per_block']},"
                f"s={best['step']},g={best['group_size']}]"
            )
        else:
            label = best.get("kernel", "?")
        print(
            f"{r['dataset']:>6} {r['fixed_ms']:>10.4f} {r['tuned_ms']:>10.4f} "
            f"{r['speedup']:>7.3f}x {r['iterations']:>5} "
            f"{r['won']:>4}W/{r['lost']}L/{r['tied']}T       {label}"
        )
    # the acceptance contract: tie or win on EVERY Table-4 dataset,
    # never lose to the paper's fixed configuration; never lose to the
    # hand-enumerated design-space candidates either
    for r in rows:
        assert r["tuned_ms"] <= r["fixed_ms"] * (1 + 1e-9), r["dataset"]
        assert r["iterations"] <= BUDGET, r["dataset"]
        assert r["lost"] == 0, (r["dataset"], r["hand_ms"])
