"""Plan-cache smoke check (CI): two identical in-process serve passes.

The first ``repro serve --smoke`` pass lowers, executes, and analyzes the
offline pipeline (a plan-cache miss); the second pass must hit the
process-wide :class:`repro.plan.PlanCache`, report ``plan_cache_hit > 0``
through the shared metrics registry, and finish in less host wall time.

Run as a script: ``PYTHONPATH=src python benchmarks/plan_cache_smoke.py``.
Exits non-zero when any of the three assertions fails.
"""

import io
import sys
import time

from repro.cli import main
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.plan import get_plan_cache

ARGS = [
    "--max-edges", "200000",
    "serve", "--smoke",
    "--system", "TLPGNN", "--model", "gcn", "--dataset", "CR",
]


def timed_pass(label: str) -> float:
    out = io.StringIO()
    t0 = time.perf_counter()
    rc = main(list(ARGS), out=out)
    elapsed = time.perf_counter() - t0
    print(f"{label}: rc={rc}, {elapsed * 1e3:.1f} ms host wall time")
    if rc != 0:
        print(out.getvalue())
        sys.exit(f"{label} serve pass failed (rc={rc})")
    return elapsed


def run() -> None:
    cache = get_plan_cache()
    if cache is None:
        sys.exit("plan cache is disabled; smoke check needs it on")
    cache.clear()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        t_cold = timed_pass("cold pass")
        t_warm = timed_pass("warm pass")
    finally:
        set_registry(previous)

    hits = sum(
        rec["value"]
        for rec in registry.snapshot()
        if rec["name"] == "plan_cache_hit"
    )
    print(f"plan_cache_hit total: {hits}")
    print(f"cache state: {cache.snapshot()}")
    if hits <= 0:
        sys.exit("warm pass reported no plan_cache_hit")
    if t_warm >= t_cold:
        sys.exit(
            f"warm pass not faster: cold {t_cold * 1e3:.1f} ms "
            f"vs warm {t_warm * 1e3:.1f} ms"
        )
    print("plan-cache smoke OK")


if __name__ == "__main__":
    run()
