"""Table 2: coalesced memory access — one-thread vs half-warp per vertex."""

from repro.bench import table2

from conftest import run_and_report


def test_table2_coalescing(benchmark, config_f128):
    result = run_and_report(benchmark, table2, config_f128)
    thread, warp = result.records
    # Observation II: warp mapping crushes thread mapping
    assert warp["runtime_ms"] < thread["runtime_ms"]
    assert thread["sectors_per_request"] > 3 * warp["sectors_per_request"]
