"""Design-space ablation (paper §4.2-4.3): the mapping choices behind the
two-level parallelism paradigm, quantified head-to-head.

Level 1 (vertex mapping): thread vs warp vs CTA per vertex.
Level 2 (within-warp looping): edge parallelism vs feature parallelism.
"""

from repro.bench import BenchConfig, get_dataset, make_features
from repro.kernels import (
    EdgeParallelWarpKernel,
    PullCTAKernel,
    PullThreadKernel,
    TLPGNNKernel,
)
from repro.models import build_conv

from conftest import MAX_EDGES, SEED


def _workload(abbr, feat=32):
    cfg = BenchConfig(feat_dim=feat, max_edges=MAX_EDGES, seed=SEED)
    ds = get_dataset(abbr, cfg)
    X = make_features(ds.graph.num_vertices, feat, seed=SEED)
    return build_conv("gcn", ds.graph, X), cfg.spec_for(ds)


def test_level1_vertex_mapping(benchmark):
    wl, spec = _workload("OH")

    def run():
        return {
            "thread": PullThreadKernel().execute(wl, spec).timing.gpu_seconds,
            "warp": TLPGNNKernel(assignment="hardware")
            .execute(wl, spec)
            .timing.gpu_seconds,
            "cta4": PullCTAKernel(warps_per_block=4)
            .execute(wl, spec)
            .timing.gpu_seconds,
            "cta8": PullCTAKernel(warps_per_block=8)
            .execute(wl, spec)
            .timing.gpu_seconds,
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gpu_seconds"] = t
    print()
    for k, v in sorted(t.items(), key=lambda kv: kv[1]):
        print(f"  {k:>7}: {v * 1e3:8.3f} ms ({t['warp'] and v / t['warp']:.2f}x of warp)")
    assert t["warp"] == min(t.values())


def test_level2_looping_scheme(benchmark):
    wl, spec = _workload("PI")

    def run():
        return {
            "feature_parallel": TLPGNNKernel(assignment="hardware")
            .execute(wl, spec)
            .timing.gpu_seconds,
            "edge_parallel": EdgeParallelWarpKernel()
            .execute(wl, spec)
            .timing.gpu_seconds,
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gpu_seconds"] = t
    print(
        f"\n  feature parallelism is "
        f"{t['edge_parallel'] / t['feature_parallel']:.2f}x faster than edge "
        "parallelism"
    )
    assert t["feature_parallel"] < t["edge_parallel"]
