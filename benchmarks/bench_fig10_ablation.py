"""Figure 10: technique benefits — cumulative ablation over edge-centric."""

from repro.bench import fig10

from conftest import run_and_report


def test_fig10_ablation(benchmark, config):
    result = run_and_report(benchmark, fig10, config)
    assert len(result.records) == 44
    import numpy as np

    # nearly every cell improves over the baseline overall, substantially
    # in the mean (paper: 8.6x-12.9x per-model averages)
    totals = [r["total"] for r in result.records]
    assert min(totals) > 0.9
    assert np.mean(totals) > 1.8
    # the two-level parallelism step alone helps on average (paper: 2.5-2.8x)
    assert np.mean([r["+TLP"] for r in result.records]) > 1.1
    # hybrid assignment helps most on the four largest graphs (paper: ~2x)
    big = [r["+Hybrid"] for r in result.records if r["dataset"] in
           ("CL", "ON", "RD", "OT")]
    assert np.mean(big) > 1.1
