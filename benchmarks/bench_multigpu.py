"""Multi-GPU scaling (the paper's future work): conv time vs device count."""

import numpy as np

from repro.bench import BenchConfig, get_dataset, make_features
from repro.multigpu import distribute_conv

from conftest import MAX_EDGES, SEED


def test_multigpu_scaling(benchmark):
    cfg = BenchConfig(max_edges=MAX_EDGES, seed=SEED)
    ds = get_dataset("OA", cfg)
    X = make_features(ds.graph.num_vertices, cfg.feat_dim, seed=SEED)

    def sweep():
        out = {}
        for k in (1, 2, 4, 8):
            res = distribute_conv(ds.graph, X, k, spec=cfg.spec_for(ds), seed=0)
            out[k] = {
                "conv_ms": res.conv_seconds * 1e3,
                "exchange_ms": res.exchange_seconds * 1e3,
                "halo_mb": res.halo_bytes / 1e6,
                "balance": res.load_balance,
            }
        return out

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["scaling"] = {str(k): v for k, v in res.items()}
    print()
    for k, v in res.items():
        print(
            f"  {k} device(s): conv {v['conv_ms']:.3f} ms + exchange "
            f"{v['exchange_ms']:.3f} ms (halo {v['halo_mb']:.2f} MB, "
            f"balance {v['balance']:.2f})"
        )
    # per-device conv time must shrink with more devices
    assert res[8]["conv_ms"] < res[1]["conv_ms"]
    # and the halo exchange must grow — the trade-off the paper's future
    # work would have to balance
    assert res[8]["halo_mb"] > res[2]["halo_mb"]
