"""Every shipped example must run end to end (in-process smoke tests)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL = [
    "quickstart.py",
    "profiling_analysis.py",
    "gat_social_network.py",
    "balance_tuning.py",
    "multi_gpu_partition.py",
    "hetero_rgcn.py",
    "train_gcn.py",
    "trace_timeline.py",
    "custom_conv.py",
]


@pytest.mark.parametrize("name", ALL)
def test_example_runs(name, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples may write output files
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(ALL)
