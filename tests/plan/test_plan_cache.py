"""Plan cache behavior: warm hits are transparent, bounds are enforced."""

import numpy as np
import pytest

from repro.frameworks import SYSTEMS, TLPGNNEngine
from repro.graph import erdos_renyi
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.tracer import Tracer, set_tracer
from repro.plan import (
    PlanCache,
    PlanCacheEntry,
    get_plan_cache,
    set_plan_cache,
)


def _features(graph, feat_dim=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((graph.num_vertices, feat_dim), dtype=np.float32)


class TestWarmHitTransparency:
    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    @pytest.mark.parametrize("model", ["gcn", "gat"])
    def test_cold_and_warm_results_identical(self, small_random, name, model):
        system = SYSTEMS[name]()
        if not system.supports(model):
            pytest.skip(f"{name} does not implement {model}")
        X = _features(small_random)
        cache = get_plan_cache()
        cold = system.run(model, small_random, X)
        assert cache.misses >= 1 and cache.hits == 0
        warm = SYSTEMS[name]().run(model, small_random, X)
        assert cache.hits >= 1

        np.testing.assert_array_equal(cold.output, warm.output)
        cold_d = cold.report.as_dict()
        warm_d = warm.report.as_dict()
        # host preprocess wall time is genuinely nondeterministic
        cold_d.pop("preprocess_ms", None)
        warm_d.pop("preprocess_ms", None)
        assert cold_d == warm_d

        assert cold.plan is not None and not cold.plan.cached
        assert warm.plan is not None and warm.plan.cached
        assert warm.plan.fingerprint == cold.plan.fingerprint
        assert warm.plan.op_names == cold.plan.op_names

    def test_warm_output_is_a_private_copy(self, small_random):
        X = _features(small_random)
        system = TLPGNNEngine()
        cold = system.run("gcn", small_random, X)
        cold.output[:] = -1.0  # caller scribbles on its result
        warm = system.run("gcn", small_random, X)
        assert not np.array_equal(warm.output, cold.output)
        warm.output[:] = -2.0
        again = system.run("gcn", small_random, X)
        assert not np.array_equal(again.output, warm.output)

    def test_hit_and_miss_counters_published(self, small_random):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            X = _features(small_random)
            TLPGNNEngine().run("gcn", small_random, X)
            TLPGNNEngine().run("gcn", small_random, X)
        finally:
            set_registry(previous)
        by_name = {
            rec["name"]: rec["value"]
            for rec in registry.snapshot()
            if rec["name"].startswith("plan_cache")
        }
        assert by_name["plan_cache_miss"] == 1.0
        assert by_name["plan_cache_hit"] == 1.0


class TestCacheBypass:
    def test_explicit_rng_bypasses_cache(self, small_random):
        X = _features(small_random)
        cache = get_plan_cache()
        system = TLPGNNEngine()
        system.run("gcn", small_random, X, rng=np.random.default_rng(1))
        system.run("gcn", small_random, X, rng=np.random.default_rng(1))
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0

    def test_installed_tracer_bypasses_cache(self, small_random):
        X = _features(small_random)
        cache = get_plan_cache()
        system = TLPGNNEngine()
        system.run("gcn", small_random, X)  # prime the cache
        previous = set_tracer(Tracer())
        try:
            res = system.run("gcn", small_random, X)
        finally:
            set_tracer(previous)
        assert cache.hits == 0  # the traced run did not consult the cache
        assert res.plan is not None and not res.plan.cached

    def test_disabled_cache_still_runs(self, small_random):
        X = _features(small_random)
        previous = set_plan_cache(None)
        try:
            res = TLPGNNEngine().run("gcn", small_random, X)
        finally:
            set_plan_cache(previous)
        assert res.plan is not None and not res.plan.cached


class TestKeySensitivity:
    def test_different_knobs_do_not_collide(self, small_random):
        X = _features(small_random)
        cache = get_plan_cache()
        a = TLPGNNEngine().run("gcn", small_random, X)
        b = TLPGNNEngine(register_cache=False).run("gcn", small_random, X)
        assert cache.hits == 0 and cache.misses == 2
        assert a.plan.fingerprint != b.plan.fingerprint

    def test_different_features_do_not_collide(self, small_random):
        cache = get_plan_cache()
        TLPGNNEngine().run("gcn", small_random, _features(small_random, seed=0))
        TLPGNNEngine().run("gcn", small_random, _features(small_random, seed=1))
        assert cache.hits == 0 and cache.misses == 2


class TestEviction:
    def test_eviction_respects_bound(self):
        cache = PlanCache(maxsize=3)
        previous = set_plan_cache(cache)
        try:
            system = TLPGNNEngine()
            graphs = [
                erdos_renyi(30, 90, seed=s, name=f"g{s}") for s in range(5)
            ]
            for g in graphs:
                system.run("gcn", g, _features(g))
        finally:
            set_plan_cache(previous)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.misses == 5

    def test_lru_order_keeps_recently_used(self):
        cache = PlanCache(maxsize=2)
        previous = set_plan_cache(cache)
        try:
            system = TLPGNNEngine()
            g0 = erdos_renyi(30, 90, seed=0, name="g0")
            g1 = erdos_renyi(30, 90, seed=1, name="g1")
            g2 = erdos_renyi(30, 90, seed=2, name="g2")
            X0, X1, X2 = _features(g0), _features(g1), _features(g2)
            system.run("gcn", g0, X0)
            system.run("gcn", g1, X1)
            system.run("gcn", g0, X0)  # refresh g0
            system.run("gcn", g2, X2)  # evicts g1, not g0
            system.run("gcn", g0, X0)
        finally:
            set_plan_cache(previous)
        assert cache.hits == 2  # both g0 re-runs
        assert cache.evictions == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_clear_resets_counters(self, small_random):
        cache = get_plan_cache()
        X = _features(small_random)
        TLPGNNEngine().run("gcn", small_random, X)
        TLPGNNEngine().run("gcn", small_random, X)
        assert cache.hits == 1
        cache.clear()
        snap = cache.snapshot()
        assert snap["entries"] == snap["hits"] == snap["misses"] == 0


def test_cache_entry_holds_analysis(small_random):
    """A cache entry memoizes output + stats + timing + plan identity."""
    X = _features(small_random)
    cache = get_plan_cache()
    res = TLPGNNEngine().run("gcn", small_random, X)
    [entry] = [cache.get(res.plan.fingerprint)]
    assert isinstance(entry, PlanCacheEntry)
    assert entry.timing.runtime_seconds == res.report.timing.runtime_seconds
    assert entry.stats.num_kernels == res.report.kernel_launches
    assert entry.info.op_names == res.plan.op_names
