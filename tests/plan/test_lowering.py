"""Lowering determinism + plan IR structure across the four systems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import SYSTEMS
from repro.frameworks.dglsim import DGL_KERNEL_COUNTS
from repro.graph import erdos_renyi, power_law
from repro.plan import ExecutionPlan, plan_fingerprint


def _features(graph, feat_dim=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((graph.num_vertices, feat_dim), dtype=np.float32)


@given(
    n=st.integers(4, 50),
    m=st.integers(1, 200),
    feat=st.sampled_from([8, 16, 32]),
    model=st.sampled_from(["gcn", "gin", "sage", "gat"]),
    name=st.sampled_from(sorted(SYSTEMS)),
    skewed=st.booleans(),
    seed=st.integers(0, 20),
)
@settings(max_examples=60, deadline=None)
def test_lowering_is_deterministic(n, m, feat, model, name, skewed, seed):
    """Same inputs lower to identical plan fingerprints and op lists."""
    system = SYSTEMS[name]()
    if not system.supports(model):
        return
    g = power_law(n, m, seed=seed) if skewed else erdos_renyi(n, m, seed=seed)
    X = _features(g, feat, seed=seed)
    a = system.lower(model, g, X)
    b = SYSTEMS[name]().lower(model, g, X)
    assert isinstance(a, ExecutionPlan)
    assert a.fingerprint == b.fingerprint
    assert a.op_names == b.op_names
    assert a.num_kernels == b.num_kernels
    assert a.pipeline_name == b.pipeline_name


@given(seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_fingerprint_changes_with_any_key_part(seed):
    """Flipping each cache-key component flips the fingerprint."""
    g = erdos_renyi(20, 60, seed=seed)
    g2 = erdos_renyi(20, 61, seed=seed)
    X = _features(g, 8, seed=seed)
    from repro.gpusim.config import V100

    base = dict(system="S", model="gcn", graph=g, X=X, spec=V100, knobs={"k": 1})
    ref = plan_fingerprint(**base)
    assert plan_fingerprint(**{**base, "system": "T"}) != ref
    assert plan_fingerprint(**{**base, "model": "gin"}) != ref
    assert plan_fingerprint(**{**base, "graph": g2}) != ref
    assert plan_fingerprint(**{**base, "X": X + 1.0}) != ref
    assert plan_fingerprint(**{**base, "knobs": {"k": 2}}) != ref
    # and stability: recomputing yields the same digest
    assert plan_fingerprint(**base) == ref


def test_lowering_has_no_side_effects(small_random):
    """lower() is the compile stage only: nothing executes, nothing caches."""
    from repro.plan import get_plan_cache

    X = _features(small_random)
    cache = get_plan_cache()
    plan = SYSTEMS["TLPGNN"]().lower("gcn", small_random, X)
    assert len(cache) == 0 and cache.misses == 0
    assert plan.fingerprint is not None
    assert plan.num_kernels == 1


def test_dgl_plan_matches_paper_kernel_counts(small_random):
    X = _features(small_random)
    for model, count in DGL_KERNEL_COUNTS.items():
        plan = SYSTEMS["DGL"]().lower(model, small_random, X)
        assert plan.num_kernels == count, model


def test_describe_mentions_every_op(small_random):
    X = _features(small_random)
    plan = SYSTEMS["DGL"]().lower("gcn", small_random, X)
    text = plan.describe()
    for op in plan.op_names:
        assert op in text
    assert plan.fingerprint[:16] in text
