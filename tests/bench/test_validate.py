"""The claim validator: registry, selection, error containment."""

from repro.bench import BenchConfig, CLAIMS, validate_claims
from repro.bench.validate import ClaimResult

CFG = BenchConfig(max_edges=60_000, seed=7)


class TestRegistry:
    def test_seven_claims(self):
        assert len(CLAIMS) == 7
        assert "obs1-atomics" in CLAIMS
        assert "table5-dashes" in CLAIMS

    def test_descriptions_nonempty(self):
        for desc, fn in CLAIMS.values():
            assert desc and callable(fn)


class TestValidation:
    def test_selected_claim_passes(self):
        results = validate_claims(CFG, only=["table5-dashes"])
        assert len(results) == 1
        assert results[0].passed
        assert "GNNAdvisor" in results[0].detail

    def test_level_claims_pass(self):
        results = validate_claims(
            CFG, only=["level1-warp-mapping", "level2-feature-parallel"]
        )
        assert all(r.passed for r in results)

    def test_unknown_only_yields_empty(self):
        assert validate_claims(CFG, only=["nope"]) == []

    def test_errors_reported_not_raised(self, monkeypatch):
        import repro.bench.validate as v

        def boom(config):
            raise RuntimeError("kaput")

        monkeypatch.setitem(v.CLAIMS, "obs1-atomics", ("desc", boom))
        results = validate_claims(CFG, only=["obs1-atomics"])
        assert len(results) == 1
        assert not results[0].passed
        assert "kaput" in results[0].detail

    def test_result_shape(self):
        r = ClaimResult("x", "d", True, "ok")
        assert r.claim_id == "x" and r.passed
