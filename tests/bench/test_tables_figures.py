"""Smoke + shape tests of every table/figure regenerator (reduced scale)."""

import numpy as np
import pytest

from repro.bench import (
    ABLATION_STAGES,
    BenchConfig,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    get_dataset,
    run_comparison,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.bench.report import TableResult, render_table

CFG = BenchConfig(max_edges=60_000, seed=7)
CFG128 = BenchConfig(feat_dim=128, max_edges=60_000, seed=7)


class TestRenderer:
    def test_render_table_widths(self):
        out = render_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[2]) for l in lines[2:4])

    def test_render_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row width"):
            render_table("T", ["a"], [["1", "2"]])

    def test_table_result_render(self):
        t = TableResult(
            exp_id="X", title="t", headers=["h"], rows=[["v"]], notes="n"
        )
        r = t.render()
        assert "X: t" in r and "n" in r


class TestTables:
    def test_table1_shape(self):
        t = table1(CFG128)
        assert len(t.records) == 4
        assert t.headers[1:] == ["Push", "Edge", "GnnA.", "Pull"]
        assert len(t.rows) == 5

    def test_table2_shape(self):
        t = table2(CFG128)
        assert len(t.records) == 2
        assert len(t.rows) == 4

    def test_table3_shape(self):
        t = table3(CFG)
        assert [r["config"] for r in t.records] == [
            "DGL", "Three-Kernel", "One-Kernel",
        ]
        assert len(t.rows) == 8

    def test_table4_covers_registry(self):
        t = table4(CFG)
        assert len(t.rows) == 11
        # loaded average degree matches the paper spec within tolerance
        for rec in t.records:
            from repro.graph import DATASETS

            spec = DATASETS[rec["abbr"]]
            assert rec["avg_degree"] == pytest.approx(spec.avg_degree, rel=0.06)

    def test_table5_subset(self):
        t = table5(CFG, models=("gcn",), datasets=("CR", "RD"))
        assert len(t.records) == 2
        rd = next(r for r in t.records if r["dataset"] == "RD")
        assert rd["GNNA."] is None  # capacity dash
        assert rd["TLPGNN"] is not None


class TestFigures:
    def test_fig8_shape(self):
        t = fig8(CFG)
        assert len(t.records) == 14
        assert {r["model"] for r in t.records} == {"gcn", "gin"}

    def test_fig9_average_rows(self):
        t = fig9(CFG)
        avgs = [r for r in t.records if r["dataset"] == "average"]
        assert len(avgs) == 2
        assert all(0.0 <= r["occupancy"] <= 1.0 for r in t.records)

    def test_fig10_stage_keys(self):
        t = fig10(CFG, models=("gcn",), datasets=("PI",))
        rec = t.records[0]
        assert set(rec) >= {"+TLP", "+Hybrid", "+Cache", "total", "baseline_ms"}
        assert "+Fusion" not in rec  # only GAT has the fusion stage

    def test_fig10_gat_has_fusion(self):
        t = fig10(CFG, models=("gat",), datasets=("PI",))
        assert "+Fusion" in t.records[0]

    def test_ablation_stage_registry(self):
        assert list(ABLATION_STAGES) == [
            "Baseline", "+TLP", "+Hybrid", "+Cache", "+Fusion",
        ]

    def test_fig11_monotone(self):
        t = fig11(CFG, models=("gcn",), datasets=("CL",), block_counts=(1, 4, 16))
        sp = t.records[0]["speedups"]
        assert sp == sorted(sp)

    def test_fig12_monotone(self):
        t = fig12(CFG, models=("gin",), datasets=("CL",), feat_sizes=(16, 64))
        norm = t.records[0]["normalized"]
        assert norm[0] == 1.0 and norm[1] > 1.0


class TestHarness:
    def test_run_comparison_returns_all_systems(self):
        res = run_comparison("gcn", "CR", CFG)
        assert set(res) == {"DGL", "GNNAdvisor", "FeatGraph", "TLPGNN"}
        assert all(v is not None for v in res.values())

    def test_dataset_cache_is_shared(self):
        a = get_dataset("CR", CFG)
        b = get_dataset("CR", BenchConfig(max_edges=60_000, seed=7))
        assert a is b  # same (max_edges, seed) key

    def test_spec_for_scales_device(self):
        ds = get_dataset("RD", CFG)
        spec = CFG.spec_for(ds)
        assert spec.num_sms < CFG.spec.num_sms
        full = get_dataset("CR", CFG)
        assert CFG.spec_for(full) is CFG.spec

    def test_scale_device_off(self):
        cfg = BenchConfig(max_edges=60_000, seed=7, scale_device=False)
        ds = get_dataset("RD", cfg)
        assert cfg.spec_for(ds) is cfg.spec
