"""Regression tests for ``get_dataset`` cache keying (ISSUE 2 satellite).

The seed version keyed ``lru_cache`` on the raw ``(abbr, config)`` pair, so
numpy scalar knobs (unhashable 0-d arrays, or ``np.int64`` hashing apart
from equal ints in older numpy) and abbreviation aliases (" cs " vs "CS")
either crashed the cache or duplicated entries. The key is now canonical.
"""

import numpy as np

from repro.bench import BenchConfig, get_dataset
from repro.bench.harness import _cached_dataset, _dataset_key


def _fresh_cache():
    _cached_dataset.cache_clear()
    return _cached_dataset


class TestDatasetKey:
    def test_alias_normalization(self):
        cfg = BenchConfig(max_edges=60_000, seed=7)
        assert _dataset_key(" cs ", cfg) == _dataset_key("CS", cfg)
        assert _dataset_key("cs", cfg) == _dataset_key("CS", cfg)

    def test_numpy_scalars_coerced(self):
        a = BenchConfig(max_edges=np.int64(60_000), seed=np.int64(7))
        b = BenchConfig(max_edges=60_000, seed=7)
        assert _dataset_key("CS", a) == _dataset_key("CS", b)

    def test_zero_d_array_hashable_after_coercion(self):
        # a 0-d array is unhashable; the canonical key must swallow it
        cfg = BenchConfig(max_edges=np.array(60_000), seed=np.array(7))
        key = _dataset_key("CS", cfg)
        hash(key)  # must not raise
        assert key == ("CS", 60_000, 7)


class TestGetDatasetCache:
    def test_aliased_configs_share_one_entry(self):
        cache = _fresh_cache()
        cfg_int = BenchConfig(max_edges=60_000, seed=7)
        cfg_np = BenchConfig(max_edges=np.int64(60_000), seed=np.int64(7))
        d1 = get_dataset("CS", cfg_int)
        d2 = get_dataset(" cs ", cfg_np)
        assert d1 is d2
        info = cache.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_unhashable_config_knobs_do_not_crash(self):
        _fresh_cache()
        cfg = BenchConfig(max_edges=np.array(60_000), seed=np.array(7))
        dataset = get_dataset("CS", cfg)
        assert dataset.graph.num_edges <= 60_000

    def test_distinct_configs_miss(self):
        cache = _fresh_cache()
        get_dataset("CS", BenchConfig(max_edges=60_000, seed=7))
        get_dataset("CS", BenchConfig(max_edges=60_000, seed=8))
        assert cache.cache_info().misses == 2
