"""Sweep utilities."""

import pytest

from repro.bench import BenchConfig, sweep_feature_dims, sweep_grid, sweep_scales

CFG = BenchConfig(max_edges=60_000, seed=7)


class TestSweeps:
    def test_feature_dim_sweep_monotone(self):
        t = sweep_feature_dims(
            "gcn", "PI", feat_dims=(16, 64), systems=("TLPGNN",), config=CFG
        )
        recs = [r for r in t.records if r["system"] == "TLPGNN"]
        assert recs[0]["runtime_ms"] < recs[1]["runtime_ms"]

    def test_feature_dim_sweep_dashes(self):
        t = sweep_feature_dims(
            "gat", "CR", feat_dims=(16,), systems=("GNNAdvisor",), config=CFG
        )
        assert t.records[0]["runtime_ms"] is None
        assert "-" in t.rows[0]

    def test_scale_sensitivity_bounded(self):
        t = sweep_scales(
            "gcn", "RD", max_edges=(60_000, 240_000), system="TLPGNN", config=CFG
        )
        a, b = (r["runtime_ms"] for r in t.records)
        # device scaling keeps modeled time within a small factor across scales
        assert max(a, b) / min(a, b) < 3.0

    def test_grid_shape(self):
        t = sweep_grid(models=("gcn",), datasets=("CR", "PI"), config=CFG)
        assert len(t.rows) == 1
        assert len(t.records) == 2
        assert all(r["runtime_ms"] is not None for r in t.records)

    def test_render(self):
        t = sweep_grid(models=("gcn",), datasets=("CR",), config=CFG)
        assert "runtime" in t.render()
