"""End-to-end checks of the paper's headline claims on reduced workloads.

These assert the *shape* of the evaluation: who wins, directionally by how
much, and where the paper's profiling observations show up in the model.
"""

import numpy as np
import pytest

from repro.bench import BenchConfig, ablation_series, get_dataset, make_features, run_system
from repro.frameworks import DGLSystem, FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine
from repro.kernels import (
    EdgeCentricKernel,
    NeighborGroupKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
)
from repro.models import build_conv

#: reduced scale so the whole module stays fast
CFG = BenchConfig(max_edges=150_000, seed=7)


def _runtime(system, model, abbr, feat=32):
    cfg = BenchConfig(feat_dim=feat, max_edges=CFG.max_edges, seed=CFG.seed)
    ds = get_dataset(abbr, cfg)
    res = run_system(system, model, ds, cfg)
    assert res is not None
    return res.runtime_ms


class TestObservationI:
    """Atomic writes drastically lower performance (Table 1)."""

    @pytest.fixture(scope="class")
    def table1_metrics(self):
        cfg = BenchConfig(feat_dim=128, max_edges=CFG.max_edges, seed=CFG.seed)
        ds = get_dataset("OH", cfg)
        X = make_features(ds.graph.num_vertices, 128, seed=7)
        wl = build_conv("gcn", ds.graph, X)
        spec = cfg.spec_for(ds)
        out = {}
        for name, k in {
            "push": PushKernel(),
            "edge": EdgeCentricKernel(),
            "gnna": NeighborGroupKernel(),
            "pull": TLPGNNKernel(assignment="hardware"),
        }.items():
            res = k.execute(wl, spec)
            out[name] = res
        return out

    def test_pull_fastest(self, table1_metrics):
        t = {k: v.timing.gpu_seconds for k, v in table1_metrics.items()}
        assert t["pull"] < min(t["push"], t["edge"], t["gnna"])

    def test_pull_speedup_in_paper_range(self, table1_metrics):
        t = {k: v.timing.gpu_seconds for k, v in table1_metrics.items()}
        # paper: 1.8x / 1.6x / 5.8x over push / edge / GNNAdvisor
        assert 1.2 < t["push"] / t["pull"] < 6.0
        assert 1.2 < t["edge"] / t["pull"] < 6.0
        assert 1.2 < t["gnna"] / t["pull"] < 12.0

    def test_pull_has_no_atomic_traffic(self, table1_metrics):
        assert table1_metrics["pull"].stats.atomic_bytes == 0
        for k in ("push", "edge", "gnna"):
            assert table1_metrics[k].stats.atomic_bytes > 0

    def test_pull_highest_sm_utilization(self, table1_metrics):
        u = {k: v.timing.sm_utilization for k, v in table1_metrics.items()}
        assert u["pull"] >= max(u["push"], u["edge"], u["gnna"])

    def test_pull_lowest_stall(self, table1_metrics):
        s = {k: v.timing.stall_scoreboard_cycles for k, v in table1_metrics.items()}
        assert s["pull"] <= min(s["push"], s["edge"], s["gnna"])


class TestObservationII:
    """Coalesced access: warp-mapping crushes thread-mapping (Table 2)."""

    @pytest.fixture(scope="class")
    def table2_metrics(self):
        cfg = BenchConfig(feat_dim=128, max_edges=CFG.max_edges, seed=CFG.seed)
        ds = get_dataset("OH", cfg)
        X = make_features(ds.graph.num_vertices, 128, seed=7)
        wl = build_conv("gcn", ds.graph, X)
        spec = cfg.spec_for(ds)
        return {
            "thread": PullThreadKernel().execute(wl, spec),
            "half_warp": TLPGNNKernel(
                group_size=16, assignment="hardware"
            ).execute(wl, spec),
        }

    def test_half_warp_much_faster(self, table2_metrics):
        ratio = (
            table2_metrics["thread"].timing.gpu_seconds
            / table2_metrics["half_warp"].timing.gpu_seconds
        )
        assert ratio > 4.0  # paper: 27.3x

    def test_sector_per_request_gap(self, table2_metrics):
        spr_t = table2_metrics["thread"].stats.sectors_per_request
        spr_w = table2_metrics["half_warp"].stats.sectors_per_request
        assert spr_t > 3 * spr_w  # paper: 9.2 vs 2.1
        assert spr_w < 4.0

    def test_stall_gap(self, table2_metrics):
        assert (
            table2_metrics["thread"].timing.stall_scoreboard_cycles
            > table2_metrics["half_warp"].timing.stall_scoreboard_cycles
        )


class TestObservationIII:
    """Fewer kernels win (Table 3): one < three < DGL-18 for GAT."""

    @pytest.fixture(scope="class")
    def table3(self):
        from repro.bench import table3 as t3

        cfg = BenchConfig(feat_dim=32, max_edges=CFG.max_edges, seed=CFG.seed)
        return {r["config"]: r for r in t3(cfg).records}

    def test_kernel_counts(self, table3):
        assert table3["DGL"]["kernels"] == 18
        assert table3["Three-Kernel"]["kernels"] == 3
        assert table3["One-Kernel"]["kernels"] == 1

    def test_runtime_ordering(self, table3):
        assert (
            table3["One-Kernel"]["runtime"]
            < table3["Three-Kernel"]["runtime"]
            < table3["DGL"]["runtime"]
        )

    def test_launch_overhead_ordering(self, table3):
        gap = {k: v["runtime"] - v["gpu"] for k, v in table3.items()}
        assert gap["One-Kernel"] < gap["Three-Kernel"] < gap["DGL"]

    def test_memory_usage_ordering(self, table3):
        assert (
            table3["One-Kernel"]["usage"]
            < table3["Three-Kernel"]["usage"]
            < table3["DGL"]["usage"]
        )

    def test_traffic_ordering(self, table3):
        assert (
            table3["One-Kernel"]["traffic"]
            < table3["Three-Kernel"]["traffic"]
            < table3["DGL"]["traffic"]
        )


class TestMainComparison:
    """Table 5 shape: TLPGNN beats every baseline on representative cells."""

    @pytest.mark.parametrize("model", ["gcn", "gat"])
    @pytest.mark.parametrize("abbr", ["CR", "PI", "RD"])
    def test_tlpgnn_wins(self, model, abbr):
        ours = _runtime(TLPGNNEngine(), model, abbr)
        for factory in (DGLSystem, FeatGraphSystem):
            assert ours < _runtime(factory(), model, abbr)

    def test_tlpgnn_beats_gnnadvisor(self):
        ours = _runtime(TLPGNNEngine(), "gcn", "PD")
        theirs = _runtime(GNNAdvisorSystem(), "gcn", "PD")
        assert ours < theirs


class TestAblation:
    """Figure 10 shape: each cumulative technique helps."""

    @pytest.fixture(scope="class")
    def series(self):
        return {
            "gcn": ablation_series("gcn", "PI", CFG),
            "gat": ablation_series("gat", "PI", CFG),
        }

    def test_tlp_helps(self, series):
        assert series["gcn"]["+TLP"] < series["gcn"]["Baseline"]

    def test_cache_helps(self, series):
        assert series["gcn"]["+Cache"] <= series["gcn"]["+Hybrid"]

    def test_fusion_helps_gat(self, series):
        assert series["gat"]["+Fusion"] < series["gat"]["+Cache"]

    def test_total_speedup_substantial(self, series):
        total = series["gcn"]["Baseline"] / series["gcn"]["+Cache"]
        assert total > 1.5  # paper: ~12.9x averaged over all datasets


class TestScalability:
    def test_thread_count_scaling_near_linear(self):
        """Figure 11: speedup grows strongly with resident blocks.  Run at
        the default (largest) scale — thread scaling needs enough total work
        relative to the hub."""
        from repro.bench import fig11

        t = fig11(BenchConfig(seed=7), models=("gcn",), datasets=("RD",),
                  block_counts=(1, 8, 64, 128))
        sp = t.records[0]["speedups"]
        assert sp[0] == 1.0
        assert sp[1] > 5.0
        assert sp[2] > 30.0
        assert sp[3] > 45.0  # paper: 67.5x average at 128 blocks

    def test_feature_size_scaling_linearish(self):
        """Figure 12: runtime grows roughly linearly with feature size, and
        size-16 pays less than half-rate (idle lanes are cheap)."""
        from repro.bench import fig12

        t = fig12(CFG, models=("gcn",), datasets=("RD",),
                  feat_sizes=(16, 32, 128))
        norm = t.records[0]["normalized"]
        assert norm[0] == 1.0
        assert norm[1] < 2.0  # 32 dims less than 2x the 16-dim time
        assert 4.0 < norm[2] < 24.0  # ~8x linear, superlinear like the paper
