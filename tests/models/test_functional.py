"""Functional ops: dense activations and segment reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import functional as F


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert F.relu(x).tolist() == [0.0, 0.0, 2.0]

    def test_leaky_relu(self):
        x = np.array([-10.0, 5.0])
        out = F.leaky_relu(x, 0.2)
        assert out.tolist() == [-2.0, 5.0]

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((5, 7))
        s = F.softmax(x, axis=-1)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-6)

    def test_softmax_stable_for_large_inputs(self):
        s = F.softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(s, [0.5, 0.5])

    def test_dropout_identity_eval(self, rng):
        x = np.ones((4, 4))
        assert np.array_equal(F.dropout(x, 0.5, rng, training=False), x)
        assert np.array_equal(F.dropout(x, 0.0, rng), x)

    def test_dropout_scales(self, rng):
        x = np.ones((2000,))
        out = F.dropout(x, 0.5, rng)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert out.mean() == pytest.approx(1.0, rel=0.1)

    def test_dropout_validates_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(np.ones(3), 1.0, rng)

    def test_linear(self):
        x = np.eye(3, dtype=np.float32)
        w = np.arange(9, dtype=np.float32).reshape(3, 3)
        np.testing.assert_allclose(F.linear(x, w), w)
        np.testing.assert_allclose(F.linear(x, w, np.ones(3)), w + 1)

    def test_linear_shape_check(self):
        with pytest.raises(ValueError):
            F.linear(np.ones((2, 3)), np.ones((4, 2)))

    def test_xavier_bounds(self, rng):
        w = F.xavier_uniform((100, 100), rng)
        a = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= a)
        assert w.dtype == np.float32


def _naive_segment(values, indptr, op, empty):
    n = len(indptr) - 1
    out = []
    for i in range(n):
        seg = values[indptr[i] : indptr[i + 1]]
        out.append(op(seg) if len(seg) else empty)
    return np.array(out)


class TestSegmentOps:
    @pytest.fixture
    def segments(self):
        indptr = np.array([0, 3, 3, 7, 8])
        values = np.array([1.0, 2.0, 3.0, -1.0, 5.0, 2.0, 2.0, 9.0])
        return values, indptr

    def test_segment_sum(self, segments):
        v, p = segments
        np.testing.assert_allclose(F.segment_sum(v, p), [6.0, 0.0, 8.0, 9.0])

    def test_segment_mean(self, segments):
        v, p = segments
        np.testing.assert_allclose(F.segment_mean(v, p), [2.0, 0.0, 2.0, 9.0])

    def test_segment_max(self, segments):
        v, p = segments
        np.testing.assert_allclose(F.segment_max(v, p), [3.0, 0.0, 5.0, 9.0])

    def test_segment_2d(self, segments):
        v, p = segments
        v2 = np.stack([v, 2 * v], axis=1)
        out = F.segment_sum(v2, p)
        np.testing.assert_allclose(out[:, 1], 2 * out[:, 0])

    def test_trailing_empty_segments(self):
        v = np.array([1.0, 2.0])
        p = np.array([0, 2, 2, 2])
        np.testing.assert_allclose(F.segment_sum(v, p), [3.0, 0.0, 0.0])

    def test_all_empty(self):
        p = np.array([0, 0, 0])
        np.testing.assert_allclose(F.segment_sum(np.zeros(0), p), [0.0, 0.0])
        np.testing.assert_allclose(F.segment_max(np.zeros(0), p), [0.0, 0.0])

    def test_segment_softmax_sums_to_one(self, segments):
        v, p = segments
        sm = F.segment_softmax(v, p)
        sums = F.segment_sum(sm.astype(np.float64), p)
        lengths = np.diff(p)
        np.testing.assert_allclose(sums[lengths > 0], 1.0, rtol=1e-6)

    def test_segment_softmax_stability(self):
        v = np.array([1e4, 1e4, -1e4])
        p = np.array([0, 3])
        sm = F.segment_softmax(v, p)
        assert np.isfinite(sm).all()
        np.testing.assert_allclose(sm[:2], 0.5, rtol=1e-6)

    def test_segment_softmax_requires_1d(self):
        with pytest.raises(ValueError):
            F.segment_softmax(np.ones((3, 2)), np.array([0, 3]))


@given(
    lengths=st.lists(st.integers(0, 6), min_size=1, max_size=12),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_segment_ops_match_naive(lengths, seed):
    rng = np.random.default_rng(seed)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    values = rng.standard_normal(int(indptr[-1]))
    np.testing.assert_allclose(
        F.segment_sum(values, indptr),
        _naive_segment(values, indptr, np.sum, 0.0),
        rtol=1e-9, atol=1e-9,
    )
    np.testing.assert_allclose(
        F.segment_max(values, indptr),
        _naive_segment(values, indptr, np.max, 0.0),
        rtol=1e-9, atol=1e-9,
    )
    np.testing.assert_allclose(
        F.segment_mean(values, indptr),
        _naive_segment(values, indptr, np.mean, 0.0),
        rtol=1e-9, atol=1e-9,
    )
