"""GNN model conv semantics vs naive per-vertex loops, and full layers."""

import numpy as np
import pytest

from repro.models import (
    GATLayer,
    GCNLayer,
    GINLayer,
    MODEL_NAMES,
    SAGELayer,
    build_conv,
    reference_aggregate,
)
from repro.models.convspec import AttentionSpec, ConvWorkload
from repro.models.gcn import gcn_norm

from ..conftest import make_workload


def naive_conv(workload) -> np.ndarray:
    """Literal per-vertex double loop over Eq. (1) of the paper."""
    g = workload.graph
    X = workload.X.astype(np.float64)
    w = workload.resolved_edge_weights().astype(np.float64)
    out = np.zeros_like(X)
    for u in range(g.num_vertices):
        lo, hi = g.indptr[u], g.indptr[u + 1]
        msgs = [w[i] * X[g.indices[i]] for i in range(lo, hi)]
        if msgs:
            reduce_fn = {"sum": np.sum, "mean": np.mean, "max": np.max}
            out[u] = reduce_fn[workload.reduce](msgs, axis=0)
        if workload.self_coeff is not None:
            out[u] += workload.self_coeff[u] * X[u]
    return out.astype(np.float32)


class TestReferenceVsNaive:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_all_models(self, small_random, model):
        wl = make_workload(small_random, model, 8)
        np.testing.assert_allclose(
            reference_aggregate(wl), naive_conv(wl), rtol=1e-4, atol=1e-5
        )

    def test_max_reduce(self, small_random, rng):
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        wl = ConvWorkload(graph=small_random, X=X, reduce="max")
        np.testing.assert_allclose(
            reference_aggregate(wl), naive_conv(wl), rtol=1e-5, atol=1e-6
        )

    def test_empty_neighborhoods_zero(self, star_graph, rng):
        X = rng.standard_normal((star_graph.num_vertices, 4), dtype=np.float32)
        wl = ConvWorkload(graph=star_graph, X=X, reduce="sum")
        out = reference_aggregate(wl)
        assert np.all(out[1:] == 0)
        np.testing.assert_allclose(out[0], X[1:].sum(axis=0), rtol=1e-4)


class TestGCN:
    def test_norm_symmetric(self, tiny_graph):
        w, self_coeff = gcn_norm(tiny_graph)
        assert w.shape == (tiny_graph.num_edges,)
        assert np.all(w > 0) and np.all(w <= 1.0)
        # vertex A (deg 3): self coeff 1/4
        assert self_coeff[0] == pytest.approx(0.25)

    def test_figure1_example(self, tiny_graph):
        """Vertex A aggregates B, C, D weighted by degree (paper Fig. 1)."""
        X = np.eye(4, dtype=np.float32)
        wl = build_conv("gcn", tiny_graph, X)
        out = reference_aggregate(wl)
        # A's new feature mixes contributions from B, C, D and itself
        assert np.all(out[0] > 0)

    def test_layer_shapes(self, small_random, rng):
        layer = GCNLayer.init(8, 5, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        out = layer.forward(small_random, X)
        assert out.shape == (small_random.num_vertices, 5)
        assert np.all(out >= 0)  # ReLU

    def test_layer_no_activation(self, small_random, rng):
        layer = GCNLayer.init(8, 5, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        out = layer.forward(small_random, X, activation=False)
        assert np.any(out < 0)


class TestGIN:
    def test_self_term(self, chain_graph, rng):
        X = rng.standard_normal((chain_graph.num_vertices, 4), dtype=np.float32)
        wl = build_conv("gin", chain_graph, X)
        out = reference_aggregate(wl)
        # vertex 0 has no in-edges: output = (1+eps)*X[0] with eps=0
        np.testing.assert_allclose(out[0], X[0], rtol=1e-6)
        # vertex i>0: X[i] + X[i-1]
        np.testing.assert_allclose(out[3], X[3] + X[2], rtol=1e-5)

    def test_eps(self, chain_graph, rng):
        from repro.models.gin import build_gin_conv

        X = rng.standard_normal((chain_graph.num_vertices, 4), dtype=np.float32)
        wl = build_gin_conv(chain_graph, X, eps=0.5)
        out = reference_aggregate(wl)
        np.testing.assert_allclose(out[0], 1.5 * X[0], rtol=1e-6)

    def test_layer(self, small_random, rng):
        layer = GINLayer.init(8, 16, 4, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        assert layer.forward(small_random, X).shape == (
            small_random.num_vertices, 4,
        )


class TestSAGE:
    def test_mean_aggregation(self, chain_graph, rng):
        X = rng.standard_normal((chain_graph.num_vertices, 4), dtype=np.float32)
        wl = build_conv("sage", chain_graph, X)
        out = reference_aggregate(wl)
        np.testing.assert_allclose(out[5], X[4], rtol=1e-5)  # mean of one
        assert np.all(out[0] == 0)  # no neighbours

    def test_graphsage_alias(self, small_random, rng):
        X = rng.standard_normal((small_random.num_vertices, 4), dtype=np.float32)
        a = build_conv("sage", small_random, X)
        b = build_conv("graphsage", small_random, X)
        np.testing.assert_allclose(
            reference_aggregate(a), reference_aggregate(b)
        )

    def test_layer(self, small_random, rng):
        layer = SAGELayer.init(8, 6, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        assert layer.forward(small_random, X).shape == (
            small_random.num_vertices, 6,
        )


class TestGAT:
    def test_attention_weights_normalized(self, gat_workload):
        w = gat_workload.resolved_edge_weights()
        g = gat_workload.graph
        sums = np.zeros(g.num_vertices)
        dst = np.repeat(np.arange(g.num_vertices), g.in_degrees)
        np.add.at(sums, dst, w.astype(np.float64))
        nonempty = g.in_degrees > 0
        np.testing.assert_allclose(sums[nonempty], 1.0, rtol=1e-5)

    def test_output_in_convex_hull(self, small_random, rng):
        # softmax weights are convex: each output row bounded by neighbour
        # feature extremes
        X = rng.standard_normal((small_random.num_vertices, 4), dtype=np.float32)
        wl = make_workload(small_random, "gat", 4)
        out = reference_aggregate(wl)
        assert np.all(out <= wl.X.max() + 1e-5)
        assert np.all(out >= wl.X.min() - 1e-5)

    def test_layer(self, small_random, rng):
        layer = GATLayer.init(8, 6, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        assert layer.forward(small_random, X).shape == (
            small_random.num_vertices, 6,
        )


class TestConvWorkloadValidation:
    def test_bad_reduce(self, tiny_graph):
        with pytest.raises(ValueError, match="reduce"):
            ConvWorkload(graph=tiny_graph, X=np.ones((4, 2), np.float32),
                         reduce="prod")

    def test_bad_feature_rows(self, tiny_graph):
        with pytest.raises(ValueError, match="rows"):
            ConvWorkload(graph=tiny_graph, X=np.ones((3, 2), np.float32))

    def test_bad_edge_weights(self, tiny_graph):
        with pytest.raises(ValueError, match="per edge"):
            ConvWorkload(
                graph=tiny_graph,
                X=np.ones((4, 2), np.float32),
                edge_weights=np.ones(3, np.float32),
            )

    def test_attention_excludes_weights(self, tiny_graph):
        att = AttentionSpec(
            att_src=np.zeros(4, np.float32), att_dst=np.zeros(4, np.float32)
        )
        with pytest.raises(ValueError, match="exclusive"):
            ConvWorkload(
                graph=tiny_graph,
                X=np.ones((4, 2), np.float32),
                edge_weights=np.ones(6, np.float32),
                attention=att,
            )

    def test_attention_requires_sum(self, tiny_graph):
        att = AttentionSpec(
            att_src=np.zeros(4, np.float32), att_dst=np.zeros(4, np.float32)
        )
        with pytest.raises(ValueError, match="sum"):
            ConvWorkload(
                graph=tiny_graph,
                X=np.ones((4, 2), np.float32),
                attention=att,
                reduce="mean",
            )

    def test_unknown_model(self, tiny_graph):
        with pytest.raises(ValueError, match="unknown model"):
            build_conv("transformer", tiny_graph, np.ones((4, 2), np.float32))

    def test_edge_scalar_loads(self, small_random, rng):
        gcn = make_workload(small_random, "gcn", 4)
        gin = make_workload(small_random, "gin", 4)
        gat = make_workload(small_random, "gat", 4)
        assert gcn.edge_scalar_loads == 1
        assert gin.edge_scalar_loads == 0
        assert gat.edge_scalar_loads == 1
