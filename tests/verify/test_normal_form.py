"""The dataflow normal form: schedule-blind, rewrite-invariant, decidable."""

from dataclasses import replace

import numpy as np
import pytest

from repro.frameworks import SYSTEMS
from repro.kernels import EdgeCentricKernel, PullThreadKernel, TLPGNNKernel
from repro.lint.effects import LaunchEnvelope, effect_table
from repro.mp import MessageSpec, ReduceSpec, bind
from repro.opt import optimize_plan
from repro.plan import ComputeStep, ExecutionPlan
from repro.plan.ir import plan_for_kernel
from repro.verify import (
    ORDER_EXACT,
    ORDER_FLOAT_SUM,
    decide_equivalence,
    normalize_plan,
)

ENV = LaunchEnvelope(threads_per_block=128)


class TestOrderingClasses:
    def test_exclusive_kernel_is_exact(self, tiny_workload):
        nf = normalize_plan(plan_for_kernel(TLPGNNKernel(), tiny_workload))
        assert nf.provable
        assert nf.terms[0].ordering == ORDER_EXACT

    def test_atomic_float_sum_is_reassociation_class(self, tiny_workload):
        nf = normalize_plan(plan_for_kernel(EdgeCentricKernel(), tiny_workload))
        assert nf.provable
        assert nf.terms[0].ordering == ORDER_FLOAT_SUM

    def test_reference_compute_is_exact(self, cr_cell):
        ds, X, spec, _ = cr_cell
        plan = SYSTEMS["DGL"]().lower("gcn", ds, X, spec)
        assert plan.compute.kind == "reference"
        nf = normalize_plan(plan)
        assert nf.terms[0].ordering == ORDER_EXACT

    def test_idempotent_atomic_merge_is_exact(self, tiny_workload):
        # an atomic max merge cannot observe arrival order: any merge
        # order yields the same result, so the class normalizes to exact
        class _AtomicMax:
            name = "atomic-max"

            def effects(self, workload):
                return effect_table(
                    reads=("indptr", "indices", "feat"), atomics=("out",),
                    atomic_ops=64, launch=ENV,
                )

        w = replace(tiny_workload, edge_weights=None, reduce="max")
        plan = ExecutionPlan(
            system="X", model="m", graph_name=w.graph.name,
            pipeline_name="p", ops=[],
            compute=ComputeStep(kind="kernel", workload=w,
                                kernel=_AtomicMax()),
        )
        assert normalize_plan(plan).terms[0].ordering == ORDER_EXACT

    def test_effectless_kernel_is_unprovable(self, tiny_workload):
        class _Opaque:
            name = "opaque"

        plan = ExecutionPlan(
            system="X", model="m", graph_name=tiny_workload.graph.name,
            pipeline_name="p", ops=[],
            compute=ComputeStep(kind="kernel", workload=tiny_workload,
                                kernel=_Opaque()),
        )
        nf = normalize_plan(plan)
        assert not nf.provable
        assert [f.rule for f in nf.findings] == ["EQ001"]


class TestInvariance:
    @pytest.mark.parametrize("system", ["DGL", "FeatGraph", "GNNAdvisor",
                                        "TLPGNN"])
    def test_safe_optimization_preserves_normal_form(self, cr_cell, system):
        """The tentpole invariant: every accepted rewrite is NF-preserving."""
        ds, X, spec, _ = cr_cell
        plan = SYSTEMS[system]().lower("gcn", ds, X, spec)
        optimized, _records = optimize_plan(plan, spec, level="safe",
                                            dataset=ds)
        before, after = normalize_plan(plan), normalize_plan(optimized)
        decision = decide_equivalence(before, after)
        assert decision.equivalent, decision.render()
        # safe rewrites never change the compute step, so even the
        # ordering class is untouched
        assert before.digest == after.digest

    def test_kernel_swap_same_workload_is_equivalent(self, tiny_workload):
        a = normalize_plan(plan_for_kernel(TLPGNNKernel(), tiny_workload))
        b = normalize_plan(plan_for_kernel(PullThreadKernel(), tiny_workload))
        decision = decide_equivalence(a, b)
        assert decision.verdict == "equal"

    def test_atomic_kernel_swap_is_equivalent_unordered(self, tiny_workload):
        a = normalize_plan(plan_for_kernel(TLPGNNKernel(), tiny_workload))
        b = normalize_plan(plan_for_kernel(EdgeCentricKernel(), tiny_workload))
        decision = decide_equivalence(a, b)
        assert decision.verdict == "equivalent-unordered"
        assert [f.rule for f in decision.findings] == ["EQ003"]

    def test_different_features_mismatch_with_minimal_term(self, tiny_workload):
        w2 = replace(tiny_workload, X=tiny_workload.X * 2.0)
        a = normalize_plan(plan_for_kernel(TLPGNNKernel(), tiny_workload))
        b = normalize_plan(plan_for_kernel(TLPGNNKernel(), w2))
        decision = decide_equivalence(a, b)
        assert decision.verdict == "mismatch"
        assert decision.diverging is not None
        assert decision.diverging.startswith("out.feature:")
        assert [f.rule for f in decision.findings] == ["EQ002"]


class TestDigest:
    def test_digest_excludes_the_label(self, tiny_workload):
        plan = plan_for_kernel(TLPGNNKernel(), tiny_workload)
        other = replace(plan, system="SomethingElse")
        a, b = normalize_plan(plan), normalize_plan(other)
        assert a.label != b.label
        assert a.digest == b.digest

    def test_digest_is_deterministic(self, cr_cell):
        ds, X, spec, _ = cr_cell
        lower = SYSTEMS["TLPGNN"]().lower
        assert (normalize_plan(lower("gcn", ds, X, spec)).digest
                == normalize_plan(lower("gcn", ds, X, spec)).digest)

    def test_scale_term_distinguishes_gcn_from_gat(self, cr_cell):
        ds, X, spec, _ = cr_cell
        system = SYSTEMS["TLPGNN"]()
        gcn = normalize_plan(system.lower("gcn", ds, X, spec))
        gat = normalize_plan(system.lower("gat", ds, X, spec))
        assert gcn.terms[0].scale[0] != gat.terms[0].scale[0]
        assert decide_equivalence(gcn, gat).verdict == "mismatch"


class TestSources:
    def test_closure_canonicalizes_graph_buffers(self, cr_cell):
        """CSR traversal and grouped traversal both read 'the graph'."""
        ds, X, spec, _ = cr_cell
        tlpgnn = normalize_plan(SYSTEMS["TLPGNN"]().lower("gcn", ds, X, spec))
        advisor = normalize_plan(
            SYSTEMS["GNNAdvisor"]().lower("gcn", ds, X, spec)
        )
        assert "graph" in tlpgnn.terms[0].sources
        assert "graph" in advisor.terms[0].sources
        for nf in (tlpgnn, advisor):
            for raw in ("indptr", "indices", "group_table"):
                assert raw not in nf.terms[0].sources

    def test_mp_workload_roundtrip(self):
        """A udf-bound spec normalizes identically through two kernels."""
        rng = np.random.default_rng(3)
        src = rng.integers(0, 16, 50)
        dst = rng.integers(0, 16, 50)
        from repro.graph.csr import from_edge_list

        g = from_edge_list(src, dst, 16, name="rt", dedup=True)
        X = rng.standard_normal((16, 4)).astype(np.float32)
        w = bind("rt", MessageSpec(), ReduceSpec(op="sum"), g, X).workload()
        a = normalize_plan(plan_for_kernel(TLPGNNKernel(), w))
        b = normalize_plan(plan_for_kernel(PullThreadKernel(), w))
        assert decide_equivalence(a, b).equivalent
