"""Certificates: content addressing, tamper/staleness detection (EQ004)."""

from dataclasses import replace

from repro.frameworks import SYSTEMS
from repro.kernels import TLPGNNKernel
from repro.plan.ir import plan_for_kernel
from repro.verify import (
    CERT_VERSION,
    EquivalenceCertificate,
    certify_plans,
    verify_certificate,
)


def _cert(tiny_workload):
    plan = plan_for_kernel(TLPGNNKernel(), tiny_workload)
    result = certify_plans(plan, plan)
    assert result.certified
    return result.certificate


class TestIssue:
    def test_self_certification_is_equal(self, tiny_workload):
        plan = plan_for_kernel(TLPGNNKernel(), tiny_workload)
        result = certify_plans(plan, plan)
        assert result.decision.verdict == "equal"
        cert = result.certificate
        assert cert is not None
        assert cert.subject_digest == cert.reference_digest
        assert cert.version == CERT_VERSION

    def test_mismatch_certifies_nothing(self, tiny_workload):
        plan = plan_for_kernel(TLPGNNKernel(), tiny_workload)
        other = plan_for_kernel(
            TLPGNNKernel(), replace(tiny_workload, X=tiny_workload.X + 1.0)
        )
        result = certify_plans(plan, other)
        assert result.decision.verdict == "mismatch"
        assert result.certificate is None
        assert not result.certified

    def test_dict_roundtrip_preserves_content_address(self, tiny_workload):
        cert = _cert(tiny_workload)
        doc = cert.as_dict()
        again = EquivalenceCertificate.from_dict(doc)
        assert again == cert
        assert again.cert_id == doc["cert_id"]


class TestVerify:
    def test_clean_certificate_verifies(self, tiny_workload):
        assert verify_certificate(_cert(tiny_workload).as_dict()) == []

    def test_live_plan_check_passes_when_unchanged(self, tiny_workload):
        plan = plan_for_kernel(TLPGNNKernel(), tiny_workload)
        doc = certify_plans(plan, plan).certificate.as_dict()
        assert verify_certificate(
            doc, subject_plan=plan, reference_plan=plan
        ) == []

    def test_tampered_payload_field_is_eq004(self, tiny_workload):
        doc = _cert(tiny_workload).as_dict()
        doc["subject_digest"] = "0" * 64
        findings = verify_certificate(doc)
        assert findings and all(f.rule == "EQ004" for f in findings)
        assert any("tampered" in f.message for f in findings)

    def test_tampered_verdict_is_eq004(self, tiny_workload):
        doc = _cert(tiny_workload).as_dict()
        doc["verdict"] = "mismatch"
        findings = verify_certificate(doc)
        assert any("tampered" in f.message for f in findings)
        assert any("non-equivalent verdict" in f.message for f in findings)

    def test_stale_version_is_eq004(self, tiny_workload):
        cert = replace(_cert(tiny_workload), version=CERT_VERSION - 1)
        findings = verify_certificate(cert.as_dict())
        assert findings and all(f.rule == "EQ004" for f in findings)
        assert any("stale" in f.message for f in findings)
        # the address itself is consistent: only the version is stale
        assert not any("tampered" in f.message for f in findings)

    def test_stale_digest_against_live_plan_is_eq004(self, cr_cell,
                                                     tiny_workload):
        ds, X, spec, _ = cr_cell
        doc = _cert(tiny_workload).as_dict()
        moved_on = SYSTEMS["TLPGNN"]().lower("gcn", ds, X, spec)
        findings = verify_certificate(doc, subject_plan=moved_on)
        assert findings and all(f.rule == "EQ004" for f in findings)
        assert any("no longer matches" in f.message for f in findings)

    def test_missing_field_is_eq004(self, tiny_workload):
        doc = _cert(tiny_workload).as_dict()
        del doc["reference_digest"]
        findings = verify_certificate(doc)
        assert [f.rule for f in findings] == ["EQ004"]
        assert "missing" in findings[0].message

    def test_non_object_is_eq004(self):
        findings = verify_certificate("not a certificate")
        assert [f.rule for f in findings] == ["EQ004"]
