"""Satellite contract: ``serve --certified`` end-to-end through the CLI.

Tune a cell into a store file, then (a) serve it certified, (b) hand-edit
the persisted certificate and watch the serve refuse with EQ004.
"""

import json
from io import StringIO

import pytest

from repro import cli

_CELL = ["--system", "TLPGNN", "--model", "gcn", "--dataset", "CR"]


def _run(argv):
    out = StringIO()
    rc = cli.main(["--max-edges", "20000", *argv], out=out)
    return rc, out.getvalue()


@pytest.fixture(scope="module")
def tuned_store(tmp_path_factory):
    store = tmp_path_factory.mktemp("certified") / "tuned.json"
    rc, text = _run(["tune", *_CELL, "--budget", "8", "--store", str(store)])
    assert rc == 0, text
    return store


def _serve(store):
    return _run(["serve", *_CELL, "--smoke", "--opt", "search",
                 "--certified", "--store", str(store)])


class TestCertifiedServing:
    def test_tune_persists_a_clean_certificate(self, tuned_store):
        doc = json.loads(tuned_store.read_text())
        (entry,) = doc["entries"].values()
        cert = entry["certificate"]
        assert cert["verdict"] in ("equal", "equivalent-unordered")
        assert cert["subject"] == "TLPGNN/gcn on CR"
        assert len(cert["cert_id"]) == 64

    def test_certified_serve_accepts_a_valid_store(self, tuned_store):
        rc, text = _serve(tuned_store)
        assert rc == 0, text
        assert "serve --certified: ok" in text
        assert "tuned-plan certificate ok" in text

    def test_hand_edited_certificate_is_refused_with_eq004(self, tuned_store,
                                                           tmp_path):
        doc = json.loads(tuned_store.read_text())
        (entry,) = doc["entries"].values()
        # the hand edit: flip the recorded verdict without re-signing
        entry["certificate"]["verdict"] = "mismatch"
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))

        rc, text = _serve(tampered)
        assert rc == 1
        assert "EQ004" in text
        assert "tampered" in text
        assert "REFUSED" in text

    def test_missing_store_is_refused(self, tmp_path):
        rc, text = _run(["serve", *_CELL, "--smoke", "--opt", "search",
                         "--certified"])
        assert rc == 1
        assert "no tuned plan recorded" in text
        assert "REFUSED" in text
