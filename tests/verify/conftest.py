"""Shared cells for the translation-validation tests."""

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.graph.csr import from_edge_list
from repro.mp import MessageSpec, ReduceSpec, SymNorm, bind


@pytest.fixture(scope="package")
def cr_cell():
    """The CR golden cell: (dataset, X, spec, config)."""
    config = BenchConfig()
    ds = get_dataset("CR", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    return ds, X, config.spec_for(ds), config


@pytest.fixture(scope="package")
def tiny_workload():
    """A small random-but-seeded gcn-shaped ConvWorkload."""
    rng = np.random.default_rng(11)
    src = rng.integers(0, 30, 120)
    dst = rng.integers(0, 30, 120)
    graph = from_edge_list(src, dst, 30, name="tiny", dedup=True)
    X = rng.standard_normal((30, 8)).astype(np.float32)
    model = bind("tiny", MessageSpec(scale=SymNorm()), ReduceSpec(op="sum"),
                 graph, X)
    return model.workload()
