"""The optimizer's translation-validation gate: a semantics-breaking
rewrite raises IllegalRewriteError *at rewrite time*, via EQ002."""

from dataclasses import replace

import pytest

from repro.frameworks import SYSTEMS
from repro.opt import IllegalRewriteError, PassPipeline, PlanPass


class _DoubleFeatures(PlanPass):
    """Deliberately broken: silently rescales the input features —
    re-lints clean (the effect tables are untouched), computes 2x."""

    name = "double-features"

    def apply(self, plan, ctx):
        w = plan.compute.workload
        return replace(
            plan, compute=replace(plan.compute, workload=replace(w, X=w.X * 2))
        )


class _SwapGraph(PlanPass):
    """Deliberately broken: gathers through a perturbed graph."""

    name = "swap-graph"

    def apply(self, plan, ctx):
        import numpy as np

        from repro.graph.csr import CSRGraph

        g = plan.compute.workload.graph
        indices = np.array(g.indices, copy=True)
        if indices.size < 2:
            return None
        indices[0], indices[-1] = indices[-1], indices[0]
        swapped = CSRGraph(
            indptr=np.array(g.indptr, copy=True), indices=indices,
            num_vertices=g.num_vertices, name=g.name,
        )
        w = plan.compute.workload
        return replace(
            plan,
            compute=replace(plan.compute, workload=replace(w, graph=swapped)),
        )


@pytest.fixture(scope="module")
def tlpgnn_plan(request):
    from repro.bench.harness import BenchConfig, get_dataset, make_features

    config = BenchConfig()
    ds = get_dataset("CR", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim,
                      seed=config.seed)
    spec = config.spec_for(ds)
    return SYSTEMS["TLPGNN"]().lower("gcn", ds, X, spec), spec, ds


class TestEquivalenceGate:
    def test_feature_rescale_raises_eq002_at_rewrite_time(self, tlpgnn_plan):
        plan, spec, ds = tlpgnn_plan
        pipe = PassPipeline(passes=[_DoubleFeatures()])
        with pytest.raises(IllegalRewriteError) as exc:
            pipe.run(plan, spec, dataset=ds)
        assert exc.value.pass_name == "double-features"
        assert any(f.rule == "EQ002" for f in exc.value.findings)

    def test_graph_perturbation_raises_eq002(self, tlpgnn_plan):
        plan, spec, ds = tlpgnn_plan
        pipe = PassPipeline(passes=[_SwapGraph()])
        with pytest.raises(IllegalRewriteError) as exc:
            pipe.run(plan, spec, dataset=ds)
        assert any(f.rule == "EQ002" for f in exc.value.findings)

    def test_gate_off_lets_the_broken_rewrite_through(self, tlpgnn_plan):
        """verify=False is the test-only escape hatch — the broken plan
        flows through (and would compute the wrong thing)."""
        plan, spec, ds = tlpgnn_plan
        pipe = PassPipeline(passes=[_DoubleFeatures()], verify=False)
        out, records = pipe.run(plan, spec, dataset=ds)
        applied = [r for r in records if r.applied]
        # profit gate may still skip it; if applied, it is the broken plan
        if applied:
            assert out is not plan

    def test_identity_pipeline_is_gate_clean(self, tlpgnn_plan):
        plan, spec, ds = tlpgnn_plan
        from repro.opt import optimize_plan

        optimized, records = optimize_plan(plan, spec, level="search",
                                           dataset=ds, budget=8)
        # no pass may trip the gate on a legal pipeline
        assert all(r.detail != "EQ002" for r in records)
