"""Differential fuzzing of the translation validator.

Random legal ``repro.mp`` specs bound to random small graphs, pushed
through random pass pipelines: whenever the symbolic validator says
"equivalent", executing both plans must produce byte-identical outputs.
That is the soundness direction — a certificate never vouches for a
plan that computes something else.  (The converse is not asserted: the
normal form is allowed to be conservative and say "mismatch" for plans
that happen to agree numerically.)
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.graph.csr import from_edge_list
from repro.gpusim.config import V100
from repro.kernels import TLPGNNKernel
from repro.mp import MessageSpec, ReduceSpec, SelfTerm, SymNorm, bind
from repro.opt import (
    DeadIntermediateElimination,
    ElementwiseFusion,
    LaunchTuning,
    PassPipeline,
    WorkloadMappingSelection,
)
from repro.plan import execute_plan
from repro.plan.ir import plan_for_kernel
from repro.verify import certify_plans, decide_equivalence, normalize_plan

# every entry satisfies repro.mp.spec.validate() by construction
_LEGAL_SPECS = [
    (MessageSpec(), ReduceSpec(op="sum")),
    (MessageSpec(), ReduceSpec(op="mean")),
    (MessageSpec(), ReduceSpec(op="max")),
    (MessageSpec(scale=SymNorm()), ReduceSpec(op="sum")),
    (MessageSpec(scale=SymNorm()),
     ReduceSpec(op="sum", self_term=SelfTerm(kind="scaled"))),
    (MessageSpec(), ReduceSpec(op="sum", self_term=SelfTerm(kind="eps",
                                                            eps=0.5))),
    (MessageSpec(feature="dst"), ReduceSpec(op="sum")),
]

_PASSES = [
    DeadIntermediateElimination,
    ElementwiseFusion,
    WorkloadMappingSelection,
    LaunchTuning,
]


def _workload(spec_idx, num_vertices, num_edges, feat_dim, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges)
    dst = rng.integers(0, num_vertices, num_edges)
    graph = from_edge_list(src, dst, num_vertices, name="fuzz", dedup=True)
    X = rng.standard_normal((num_vertices, feat_dim)).astype(np.float32)
    message, reduce_ = _LEGAL_SPECS[spec_idx]
    return bind("fuzz", message, reduce_, graph, X).workload()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec_idx=st.integers(min_value=0, max_value=len(_LEGAL_SPECS) - 1),
    num_vertices=st.integers(min_value=4, max_value=48),
    num_edges=st.integers(min_value=4, max_value=160),
    feat_dim=st.sampled_from([1, 4, 8]),
    seed=st.integers(min_value=0, max_value=2**16),
    pass_mask=st.integers(min_value=1, max_value=2 ** len(_PASSES) - 1),
)
def test_certified_rewrites_are_byte_identical(
    spec_idx, num_vertices, num_edges, feat_dim, seed, pass_mask
):
    workload = _workload(spec_idx, num_vertices, num_edges, feat_dim, seed)
    kernel = TLPGNNKernel()
    assume(kernel.supports(workload))
    plan = plan_for_kernel(kernel, workload)

    passes = [cls() for i, cls in enumerate(_PASSES) if pass_mask & (1 << i)]
    rewritten, _records = PassPipeline(passes=passes).run(
        plan, V100, budget=4, seed=seed
    )

    result = certify_plans(rewritten, plan)
    # the gate let every rewrite through, so certification must succeed
    assert result.certified, result.decision.render()
    # soundness: an equivalence verdict implies byte-identical execution
    before = execute_plan(plan)
    after = execute_plan(rewritten)
    assert before.tobytes() == after.tobytes()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec_idx=st.integers(min_value=0, max_value=len(_LEGAL_SPECS) - 1),
    num_vertices=st.integers(min_value=4, max_value=32),
    num_edges=st.integers(min_value=4, max_value=96),
    seed=st.integers(min_value=0, max_value=2**16),
    feature_scale=st.sampled_from([2.0, -1.0, 0.5]),
)
def test_semantic_edits_never_certify(
    spec_idx, num_vertices, num_edges, seed, feature_scale
):
    """The adversarial direction: a plan over visibly different inputs
    must never receive a certificate."""
    from dataclasses import replace

    workload = _workload(spec_idx, num_vertices, num_edges, 4, seed)
    kernel = TLPGNNKernel()
    assume(kernel.supports(workload))
    edited = replace(workload, X=workload.X * feature_scale)
    a = normalize_plan(plan_for_kernel(kernel, workload))
    b = normalize_plan(plan_for_kernel(kernel, edited))
    decision = decide_equivalence(a, b)
    assert decision.verdict == "mismatch"
    assert any(f.rule == "EQ002" for f in decision.findings)


@pytest.mark.parametrize("spec_idx", range(len(_LEGAL_SPECS)))
def test_every_legal_spec_normalizes(spec_idx):
    """No legal spec may be unprovable under its own derived kernel."""
    workload = _workload(spec_idx, 12, 40, 4, seed=1)
    kernel = TLPGNNKernel()
    if not kernel.supports(workload):
        pytest.skip("kernel declines this workload shape")
    nf = normalize_plan(plan_for_kernel(kernel, workload))
    assert nf.provable, [f.render() for f in nf.findings]
