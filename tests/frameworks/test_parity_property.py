"""Property test: all systems agree numerically on random graphs/models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import SYSTEMS
from repro.graph import erdos_renyi, power_law
from repro.models import build_conv, reference_aggregate


@given(
    n=st.integers(4, 60),
    m=st.integers(1, 250),
    feat=st.sampled_from([8, 16, 32]),
    model=st.sampled_from(["gcn", "gin", "sage", "gat"]),
    skewed=st.booleans(),
    seed=st.integers(0, 30),
)
@settings(max_examples=40, deadline=None)
def test_all_systems_numerically_identical(n, m, feat, model, skewed, seed):
    g = power_law(n, m, seed=seed) if skewed else erdos_renyi(n, m, seed=seed)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, feat), dtype=np.float32)
    ref = reference_aggregate(build_conv(model, g, X))
    for name, factory in SYSTEMS.items():
        system = factory()
        if not system.supports(model):
            continue
        out = system.run(model, g, X).output
        np.testing.assert_allclose(
            out, ref, rtol=1e-3, atol=1e-4,
            err_msg=f"{name} diverges on {model} (n={n}, m={m}, feat={feat})",
        )
