"""Pipeline internals: DGL kernel composition, SpMM regularity bonus,
FeatGraph static mapping, GNNAdvisor preprocessing accounting."""

import numpy as np
import pytest

from repro.frameworks import DGLSystem, FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine
from repro.graph import erdos_renyi, power_law
from repro.kernels.fusion import streaming_kernel_stats
from repro.gpusim import V100

from ..conftest import make_workload


@pytest.fixture
def X(small_random, rng):
    return rng.standard_normal((small_random.num_vertices, 16), dtype=np.float32)


class TestDGLComposition:
    def test_gat_pipeline_has_spmm_and_softmax_stages(self, small_random, X):
        res = DGLSystem().run("gat", small_random, X)
        names = [k.name for k in res.report.stats.kernels]
        assert "spmm_coo_atomic" in names
        assert "segment_max" in names and "segment_sum" in names
        assert names.count("leaky_relu") == 1

    def test_gat_spmm_is_atomic(self, small_random, X):
        res = DGLSystem().run("gat", small_random, X)
        spmm = next(
            k for k in res.report.stats.kernels if k.name == "spmm_coo_atomic"
        )
        assert spmm.atomic_ops == small_random.num_edges * 16

    def test_gcn_spmm_is_atomic_free(self, small_random, X):
        res = DGLSystem().run("gcn", small_random, X)
        spmm = next(k for k in res.report.stats.kernels if k.name == "spmm")
        assert spmm.atomic_ops == 0

    def test_every_kernel_has_workspace_or_output(self, small_random, X):
        res = DGLSystem().run("gin", small_random, X)
        assert res.report.global_mem_usage_bytes > 0

    def test_spmm_regularity_bonus(self):
        """cuSPARSE-style SpMM gets relatively better on regular graphs —
        the effect behind DGL's OA win in the paper."""
        sys = DGLSystem()
        reg = erdos_renyi(512, 4096, seed=0)
        skew = power_law(512, 4096, exponent=2.0, seed=0)
        s_reg, _ = sys._spmm(reg, 32, V100, weighted=False)
        s_skew, _ = sys._spmm(skew, 32, V100, weighted=False)
        # same edge count: the skewed graph's per-row tail is longer
        assert s_skew.warp_cycles.max() > s_reg.warp_cycles.max()


class TestStreamingKernel:
    def test_bytes_accounting(self):
        stats, _ = streaming_kernel_stats(
            "k", 1024, V100, read_bytes_per_item=8.0, write_bytes_per_item=4.0
        )
        assert stats.load_bytes >= 8 * 1024
        assert stats.store_bytes >= 4 * 1024

    def test_gather_adds_traffic(self):
        plain, _ = streaming_kernel_stats("k", 1024, V100)
        gathered, _ = streaming_kernel_stats(
            "k", 1024, V100, gather_touches=10_000, gather_unique_sectors=5_000
        )
        assert gathered.load_bytes > plain.load_bytes

    def test_l2_efficiency_increases_dram(self):
        good, _ = streaming_kernel_stats(
            "k", 1024, V100, gather_touches=100_000, gather_unique_sectors=50_000,
            l2_efficiency=1.0,
        )
        bad, _ = streaming_kernel_stats(
            "k", 1024, V100, gather_touches=100_000, gather_unique_sectors=50_000,
            l2_efficiency=0.1,
        )
        assert bad.load_sectors >= good.load_sectors

    def test_zero_items(self):
        stats, sched = streaming_kernel_stats("k", 0, V100)
        stats.validate()
        assert sched.makespan_cycles >= 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            streaming_kernel_stats("k", -1, V100)


class TestFeatGraphStatic:
    def test_static_policy_used(self, small_random, X):
        res = FeatGraphSystem().run("gcn", small_random, X)
        # the gather kernel should come from the static-mapping TLP variant
        assert any("featgraph" in k.name for k in res.report.stats.kernels)

    def test_occupancy_below_tlpgnn_on_skew(self, rng):
        # needs a device-filling graph for occupancy to be meaningful
        g = power_law(30_000, 300_000, exponent=2.1, max_degree=400, seed=1)
        X = rng.standard_normal((g.num_vertices, 16), dtype=np.float32)
        fg = FeatGraphSystem().run("gcn", g, X)
        tlp = TLPGNNEngine().run("gcn", g, X)
        assert fg.report.achieved_occupancy < tlp.report.achieved_occupancy


class TestGNNAdvisorAccounting:
    def test_preprocess_excluded_from_runtime(self, small_random, X):
        res = GNNAdvisorSystem().run("gcn", small_random, X)
        assert res.report.total_ms > res.report.runtime_ms
        assert res.report.preprocess_ms > 0

    def test_two_runtime_kernels(self, small_random, X):
        res = GNNAdvisorSystem().run("gcn", small_random, X)
        assert res.report.kernel_launches == 2

    def test_group_size_configurable(self, small_random, X):
        a = GNNAdvisorSystem(group_size=2).run("gcn", small_random, X)
        b = GNNAdvisorSystem(group_size=16).run("gcn", small_random, X)
        assert (
            a.report.stats.kernels[0].atomic_ops
            > b.report.stats.kernels[0].atomic_ops
        )
