"""Byte-identity regression against the pre-refactor golden fixture.

``tests/data/golden_plan_refactor.json`` was captured from the
per-framework run loops *before* the compile/execute split: 24 cells
(4 systems x gcn/gat x CS/CR/PD, default :class:`BenchConfig`), each
pinning the output sha256 and the full modeled metric dict (host
``preprocess_ms`` excluded — it is real wall time).  The shared
lower -> execute -> analyze driver must reproduce every cell exactly.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import DGLSystem, FeatGraphSystem, GNNAdvisorSystem, TLPGNNEngine

GOLDEN = Path(__file__).parent.parent / "data" / "golden_plan_refactor.json"
SYSTEMS = {
    "DGL": DGLSystem,
    "GNNAdvisor": GNNAdvisorSystem,
    "FeatGraph": FeatGraphSystem,
    "TLPGNN": TLPGNNEngine,
}


def _cells():
    golden = json.loads(GOLDEN.read_text())
    return sorted(golden.items())


@pytest.mark.parametrize("key,want", _cells(), ids=[k for k, _ in _cells()])
def test_cell_matches_golden(key, want):
    sysname, model, abbr = key.split("/")
    config = BenchConfig()
    ds = get_dataset(abbr, config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    res = run_system(SYSTEMS[sysname](), model, ds, config, X=X)

    if want is None:
        assert res is None, f"{key}: expected a dash cell"
        return
    assert res is not None, f"{key}: expected a result, got a dash"

    got_hash = hashlib.sha256(
        np.ascontiguousarray(res.output).tobytes()
    ).hexdigest()
    assert got_hash == want["output_sha256"], f"{key}: output drifted"

    got = res.report.as_dict()
    got.pop("preprocess_ms", None)
    assert got == want["metrics"], f"{key}: modeled metrics drifted"
