"""System baselines: output parity, kernel counts, dashes, ablation."""

import numpy as np
import pytest

from repro.frameworks import (
    DGL_KERNEL_COUNTS,
    CapacityError,
    DGLSystem,
    FeatGraphSystem,
    GNNAdvisorSystem,
    SYSTEMS,
    TLPGNNEngine,
    UnsupportedModelError,
)
from repro.graph import load_dataset
from repro.models import MODEL_NAMES, build_conv, reference_aggregate


@pytest.fixture
def X16(small_random, rng):
    return rng.standard_normal((small_random.num_vertices, 16), dtype=np.float32)


class TestOutputParity:
    """All systems must compute the same convolution (Table 5 compares how,
    not what)."""

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_all_systems_agree(self, small_random, X16, model):
        ref = reference_aggregate(build_conv(model, small_random, X16))
        for name, factory in SYSTEMS.items():
            sys = factory()
            if not sys.supports(model):
                continue
            out = sys.run(model, small_random, X16).output
            np.testing.assert_allclose(
                out, ref, rtol=1e-3, atol=1e-4,
                err_msg=f"{name} diverges on {model}",
            )

    def test_gnnadvisor_output_unpermuted(self, small_random, X16):
        """GNNAdvisor computes on the reordered graph but must report
        results in the caller's vertex order."""
        ref = reference_aggregate(build_conv("gcn", small_random, X16))
        out = GNNAdvisorSystem().run("gcn", small_random, X16).output
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)


class TestKernelCounts:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_dgl_counts_match_paper(self, small_random, X16, model):
        res = DGLSystem().run(model, small_random, X16)
        assert res.report.kernel_launches == DGL_KERNEL_COUNTS[model]

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_tlpgnn_single_kernel(self, small_random, X16, model):
        res = TLPGNNEngine().run(model, small_random, X16)
        assert res.report.kernel_launches == 1

    def test_featgraph_gat_three_kernels(self, small_random, X16):
        res = FeatGraphSystem().run("gat", small_random, X16)
        assert res.report.kernel_launches == 3

    def test_featgraph_others_two_kernels(self, small_random, X16):
        res = FeatGraphSystem().run("gcn", small_random, X16)
        assert res.report.kernel_launches == 2

    def test_tlpgnn_unfused_gat_three_kernels(self, small_random, X16):
        res = TLPGNNEngine(fusion=False).run("gat", small_random, X16)
        assert res.report.kernel_launches == 3


class TestDashes:
    """Cells the paper leaves blank must raise, not silently compute."""

    def test_gnnadvisor_models(self):
        s = GNNAdvisorSystem()
        assert s.supports("gcn") and s.supports("gin")
        assert not s.supports("sage") and not s.supports("gat")

    def test_gnnadvisor_unsupported_raises(self, small_random, X16):
        with pytest.raises(UnsupportedModelError):
            GNNAdvisorSystem().run("gat", small_random, X16)

    def test_gnnadvisor_capacity_on_large_datasets(self, rng):
        ds = load_dataset("RD", max_edges=100_000)
        X = rng.standard_normal((ds.graph.num_vertices, 8), dtype=np.float32)
        with pytest.raises(CapacityError):
            GNNAdvisorSystem().run("gcn", ds, X)

    def test_gnnadvisor_fits_small_datasets(self, rng):
        ds = load_dataset("CR")
        X = rng.standard_normal((ds.graph.num_vertices, 8), dtype=np.float32)
        res = GNNAdvisorSystem().run("gcn", ds, X)
        assert res.runtime_ms > 0


class TestProfiles:
    def test_gnnadvisor_preprocesses(self, small_random, X16):
        res = GNNAdvisorSystem().run("gcn", small_random, X16)
        assert res.report.preprocess_ms > 0

    def test_tlpgnn_no_preprocessing(self, small_random, X16):
        res = TLPGNNEngine().run("gcn", small_random, X16)
        assert res.report.preprocess_ms == 0.0

    def test_dgl_dispatch_overhead_per_kernel(self, small_random, X16):
        res = DGLSystem().run("gat", small_random, X16)
        assert res.report.launch_overhead_ms >= 18 * 60e-3

    def test_report_dict_and_summary(self, small_random, X16):
        res = TLPGNNEngine().run("gcn", small_random, X16)
        d = res.report.as_dict()
        assert d["system"] == "TLPGNN"
        assert d["kernel_launches"] == 1
        assert "runtime" in res.report.summary()

    def test_atomics_only_in_atomic_systems(self, small_random, X16):
        tlp = TLPGNNEngine().run("gcn", small_random, X16)
        gnna = GNNAdvisorSystem().run("gcn", small_random, X16)
        assert tlp.report.mem_atomic_store_bytes == 0
        assert gnna.report.mem_atomic_store_bytes > 0

    def test_dgl_workspace_exceeds_fused(self, small_random, X16):
        dgl = DGLSystem().run("gat", small_random, X16)
        tlp = TLPGNNEngine().run("gat", small_random, X16)
        assert dgl.report.global_mem_usage_bytes > tlp.report.global_mem_usage_bytes


class TestAblationToggles:
    def test_baseline_uses_edge_centric(self, small_random, X16):
        res = TLPGNNEngine(
            two_level=False, hybrid=False, register_cache=False, fusion=False
        ).run("gcn", small_random, X16)
        assert res.report.stats.kernels[-1].atomic_ops > 0

    def test_full_engine_atomic_free(self, small_random, X16):
        res = TLPGNNEngine().run("gcn", small_random, X16)
        assert res.report.stats.kernels[-1].atomic_ops == 0

    def test_unfused_gat_materializes(self, small_random, X16):
        res = TLPGNNEngine(fusion=False).run("gat", small_random, X16)
        assert res.report.global_mem_usage_bytes > 0

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_every_stage_correct(self, small_random, X16, model):
        ref = reference_aggregate(build_conv(model, small_random, X16))
        stages = [
            dict(two_level=False, hybrid=False, register_cache=False, fusion=False),
            dict(two_level=True, hybrid=False, register_cache=False, fusion=False),
            dict(two_level=True, hybrid=True, register_cache=False, fusion=False),
            dict(two_level=True, hybrid=True, register_cache=True, fusion=False),
            dict(two_level=True, hybrid=True, register_cache=True, fusion=True),
        ]
        for toggles in stages:
            out = TLPGNNEngine(**toggles).run(model, small_random, X16).output
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
