"""Batcher triggers, admission bounds, and the conservation property.

The hypothesis property drives the *whole* service loop with a fake
planner over randomized traces and configs, asserting the invariants
ISSUE 2 pins: no request is ever dropped silently
(``arrived == admitted + shed`` and ``admitted == completed`` after
drain) and no emitted batch exceeds ``max_batch``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.streams import StreamKernel
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.service import InferenceService, ServeConfig
from repro.serve.workload import Request, make_requests, poisson_trace


def R(rid, t=0.0):
    return Request(rid=rid, arrival_s=t)


class TestBatcher:
    def test_size_trigger(self):
        b = MicroBatcher(max_batch=3, window_s=1.0)
        for i in range(3):
            b.add(R(i), now_s=0.0)
        batches = b.pop_ready(0.0)
        assert [r.rid for r in batches[0]] == [0, 1, 2]
        assert b.num_pending == 0

    def test_deadline_trigger(self):
        b = MicroBatcher(max_batch=8, window_s=1e-3)
        b.add(R(0), now_s=0.0)
        assert b.pop_ready(5e-4) == []
        assert b.next_deadline_s() == pytest.approx(1e-3)
        (batch,) = b.pop_ready(1e-3)
        assert [r.rid for r in batch] == [0]

    def test_deadline_follows_oldest(self):
        b = MicroBatcher(max_batch=8, window_s=1e-3)
        b.add(R(0), now_s=0.0)
        b.add(R(1), now_s=5e-4)
        assert b.next_deadline_s() == pytest.approx(1e-3)
        (batch,) = b.pop_ready(1e-3)
        assert len(batch) == 2  # the partial batch takes every waiter

    def test_size_trigger_splits_backlog(self):
        b = MicroBatcher(max_batch=2, window_s=10.0)
        for i in range(5):
            b.add(R(i), now_s=0.0)
        batches = b.pop_ready(0.0)
        assert [len(x) for x in batches] == [2, 2]
        assert b.num_pending == 1

    def test_flush_chunks(self):
        b = MicroBatcher(max_batch=2, window_s=10.0)
        for i in range(3):
            b.add(R(i), now_s=0.0)
        b.pop_ready(0.0)
        b.add(R(3), now_s=0.0)
        assert [len(x) for x in b.flush()] == [2]
        assert b.num_pending == 0

    def test_separate_compat_classes(self):
        b = MicroBatcher(max_batch=2, window_s=10.0)
        b.add(R(0), now_s=0.0)
        b.add(Request(rid=1, arrival_s=0.0, job="targets", targets=(4,)), now_s=0.0)
        assert b.pop_ready(0.0) == []  # neither class reached max_batch
        assert b.num_pending == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0, window_s=0.0)
        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(max_batch=1, window_s=-1.0)


class TestAdmission:
    def test_bounds_in_system(self):
        a = AdmissionController(queue_depth=2)
        assert a.try_admit() and a.try_admit()
        assert not a.try_admit()  # shed
        assert (a.arrived, a.admitted, a.shed) == (3, 2, 1)
        a.release(1)
        assert a.try_admit()
        assert a.arrived == a.admitted + a.shed

    def test_release_validated(self):
        a = AdmissionController(queue_depth=2)
        a.try_admit()
        with pytest.raises(ValueError, match="release"):
            a.release(2)

    def test_depth_validated(self):
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionController(queue_depth=0)


class FakePlanner:
    """Deterministic stand-in: one kernel per batch, cost ∝ batch size."""

    label = "fake"

    def __init__(self, kernel_seconds=1e-4, launch_seconds=1e-5):
        self.kernel_seconds = kernel_seconds
        self.launch_seconds = launch_seconds
        self.batch_sizes: list[int] = []

    def plan(self, batch):
        self.batch_sizes.append(len(batch))
        return [
            StreamKernel(
                name=f"fake_b{len(self.batch_sizes)}",
                comp_seconds=self.kernel_seconds * len(batch),
                mem_seconds=0.0,
                launch_seconds=self.launch_seconds,
            )
        ]


class TestConservationProperty:
    @given(
        num_requests=st.integers(min_value=0, max_value=60),
        rate_hz=st.floats(min_value=50.0, max_value=50_000.0),
        max_batch=st.integers(min_value=1, max_value=5),
        window_us=st.floats(min_value=0.0, max_value=500.0),
        queue_depth=st.integers(min_value=1, max_value=8),
        num_streams=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_silent_drops_and_bounded_batches(
        self, num_requests, rate_hz, max_batch, window_us, queue_depth,
        num_streams, seed,
    ):
        cfg = ServeConfig(
            rate_hz=rate_hz,
            num_requests=num_requests,
            max_batch=max_batch,
            window_s=window_us * 1e-6,
            num_streams=num_streams,
            queue_depth=queue_depth,
            seed=seed,
        )
        planner = FakePlanner()
        requests = make_requests(
            poisson_trace(rate_hz, num_requests, seed=seed)
        )
        report = InferenceService(planner, cfg).run(requests)
        # conservation: nothing dropped silently
        assert report.arrived == num_requests
        assert report.arrived == report.admitted + report.shed
        assert report.admitted == report.completed
        # batch bound: never exceeds the configured max
        assert all(1 <= b <= max_batch for b in planner.batch_sizes)
        assert sum(planner.batch_sizes) == report.completed

    def test_overload_sheds_counted(self):
        # offered rate far above service rate with a tiny queue: shedding
        # must kick in, and every shed request is counted.
        planner = FakePlanner(kernel_seconds=1e-2)
        cfg = ServeConfig(
            rate_hz=10_000.0, num_requests=50, max_batch=1, window_s=0.0,
            num_streams=1, queue_depth=2, seed=0,
        )
        requests = make_requests(poisson_trace(10_000.0, 50, seed=0))
        report = InferenceService(planner, cfg).run(requests)
        assert report.shed > 0
        assert report.arrived == report.admitted + report.shed == 50
        assert report.admitted == report.completed

    def test_latencies_monotone_with_batching_window(self):
        # at light load a longer window only adds waiting: mean latency grows
        requests = make_requests(poisson_trace(100.0, 30, seed=1))
        means = []
        for window in (0.0, 5e-3):
            cfg = ServeConfig(
                rate_hz=100.0, num_requests=30, max_batch=8,
                window_s=window, num_streams=1, queue_depth=64, seed=1,
            )
            report = InferenceService(FakePlanner(), cfg).run(requests)
            means.append(report.mean_ms)
        assert means[1] > means[0]

    def test_report_deterministic(self):
        requests = make_requests(poisson_trace(2_000.0, 40, seed=9))
        cfg = ServeConfig(rate_hz=2_000.0, num_requests=40, seed=9)
        a = InferenceService(FakePlanner(), cfg).run(requests)
        b = InferenceService(FakePlanner(), cfg).run(requests)
        np.testing.assert_array_equal(
            a.accountant.latencies_ms(), b.accountant.latencies_ms()
        )
        assert a.p99_ms == b.p99_ms
