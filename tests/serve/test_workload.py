"""Arrival traces: determinism, rate calibration, request materialization."""

import numpy as np
import pytest

from repro.serve.workload import (
    Request,
    bursty_trace,
    make_requests,
    poisson_trace,
)


class TestPoisson:
    def test_deterministic(self):
        a = poisson_trace(1000.0, 50, seed=3)
        b = poisson_trace(1000.0, 50, seed=3)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, poisson_trace(1000.0, 50, seed=4))

    def test_mean_rate(self):
        arrivals = poisson_trace(500.0, 20_000, seed=0)
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(500.0, rel=0.05)

    def test_monotone_and_positive(self):
        arrivals = poisson_trace(100.0, 200, seed=1)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_hz"):
            poisson_trace(0.0, 10)
        with pytest.raises(ValueError, match="num_requests"):
            poisson_trace(1.0, -1)


class TestBursty:
    def test_deterministic(self):
        a = bursty_trace(1000.0, 64, seed=3)
        b = bursty_trace(1000.0, 64, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_mean_rate_preserved(self):
        arrivals = bursty_trace(500.0, 40_000, seed=0, burst_len=16)
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(500.0, rel=0.1)

    def test_burstier_than_poisson(self):
        # coefficient of variation of inter-arrival gaps: ~1 for Poisson,
        # well above 1 for the modulated process
        gaps = np.diff(bursty_trace(1000.0, 20_000, seed=0, burst_factor=10.0))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_trace(1.0, 10, burst_factor=1.0)
        with pytest.raises(ValueError, match="burst_len"):
            bursty_trace(1.0, 10, burst_len=0)


class TestRequests:
    def test_full_job(self):
        reqs = make_requests(poisson_trace(100.0, 10, seed=0))
        assert [r.rid for r in reqs] == list(range(10))
        assert all(r.job == "full" and r.targets is None for r in reqs)

    def test_targets_job_deterministic(self):
        t = poisson_trace(100.0, 8, seed=0)
        a = make_requests(t, job="targets", num_vertices=100, seed=5)
        b = make_requests(t, job="targets", num_vertices=100, seed=5)
        assert a == b
        for r in a:
            assert r.targets == tuple(sorted(set(r.targets)))
            assert all(0 <= v < 100 for v in r.targets)

    def test_targets_job_needs_vertices(self):
        with pytest.raises(ValueError, match="num_vertices"):
            make_requests(np.array([0.1]), job="targets")

    def test_request_validation(self):
        with pytest.raises(ValueError, match="job"):
            Request(rid=0, arrival_s=0.0, job="nope")
        with pytest.raises(ValueError, match="non-empty"):
            Request(rid=0, arrival_s=0.0, job="targets", targets=())

    def test_compat_key_by_job(self):
        full = Request(rid=0, arrival_s=0.0)
        tgt = Request(rid=1, arrival_s=0.0, job="targets", targets=(3,))
        assert full.compat_key != tgt.compat_key
