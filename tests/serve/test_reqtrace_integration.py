"""Request tracing through the real serving loop.

Acceptance (ISSUE 6): every completed request's four-stage breakdown
(queue + batch + launch + kernel) sums to its end-to-end latency exactly,
tracing is invisible to the served results (bit-identical reports on/off),
and the published latency histogram keeps exemplar request ids for the
p99 tail.
"""

import json

import numpy as np
import pytest

from repro.bench import BenchConfig, get_dataset
from repro.frameworks import SYSTEMS
from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import RequestTraceCollector, set_request_collector
from repro.serve import ServableModel, ServeConfig, serve_trace

CONFIG = BenchConfig(feat_dim=16, max_edges=60_000, seed=7)


def _servable(system_name="TLPGNN", model="gcn", abbr="CS"):
    dataset = get_dataset(abbr, CONFIG)
    return ServableModel(
        SYSTEMS[system_name](), model, dataset,
        feat_dim=CONFIG.feat_dim, spec=CONFIG.spec_for(dataset),
        seed=CONFIG.seed,
    )


def _cfg(servable, *, load=2.0, num_requests=60, queue_depth=16, **kw):
    return ServeConfig(
        rate_hz=load / servable.offline_runtime_s,
        num_requests=num_requests, max_batch=4, num_streams=2,
        queue_depth=queue_depth, seed=11, **kw,
    )


@pytest.fixture
def collector():
    c = RequestTraceCollector()
    previous = set_request_collector(c)
    yield c
    set_request_collector(previous)


class TestStagePartition:
    @pytest.mark.parametrize("system_name", ["TLPGNN", "DGL"])
    def test_stages_sum_to_latency_for_every_request(
        self, collector, system_name
    ):
        servable = _servable(system_name)
        report = serve_trace(servable, _cfg(servable))
        assert report.completed > 0
        assert len(collector.completed) == report.completed
        for trace in collector.completed:
            total = sum(trace.stages().values())
            assert total == pytest.approx(trace.latency_s, rel=1e-9), (
                f"request #{trace.ctx.rid}: stages {trace.stages()} "
                f"!= latency {trace.latency_s}"
            )
            # every stage is a non-negative duration
            assert all(v >= -1e-12 for v in trace.stages().values())

    def test_traced_latencies_match_the_accountant(self, collector):
        servable = _servable()
        report = serve_trace(servable, _cfg(servable))
        by_rid = {
            rec.request.rid: rec.latency_s
            for rec in report.accountant.records
        }
        for trace in collector.completed:
            assert trace.latency_s == pytest.approx(
                by_rid[trace.ctx.rid], rel=1e-12
            )

    def test_shed_requests_are_recorded(self, collector):
        servable = _servable()
        report = serve_trace(
            servable, _cfg(servable, load=6.0, queue_depth=4)
        )
        assert report.shed > 0
        assert len(collector.shed) == report.shed
        assert len(collector.completed) == report.completed

    def test_batch_members_share_kernel_spans(self, collector):
        servable = _servable()
        report = serve_trace(servable, _cfg(servable, load=3.0))
        assert report.avg_batch > 1.0  # overload actually batched
        multi = [t for t in collector.completed if t.batch_size > 1]
        assert multi
        by_batch = {}
        for t in multi:
            by_batch.setdefault(t.batch_id, []).append(t)
        shared = next(ts for ts in by_batch.values() if len(ts) > 1)
        assert all(t.kernels is shared[0].kernels for t in shared)


class TestInvisibility:
    def test_report_bit_identical_with_tracing_on_and_off(self):
        servable = _servable()
        cfg = _cfg(servable)
        off = serve_trace(servable, cfg)
        c = RequestTraceCollector()
        previous = set_request_collector(c)
        try:
            on = serve_trace(servable, cfg)
        finally:
            set_request_collector(previous)
        assert len(c.completed) == on.completed  # tracing actually ran
        for field in (
            "arrived", "admitted", "shed", "completed", "num_batches",
            "p50_ms", "p95_ms", "p99_ms", "mean_ms", "throughput_rps",
            "makespan_s",
        ):
            assert getattr(off, field) == getattr(on, field), field
        np.testing.assert_array_equal(
            off.accountant.latencies_ms(), on.accountant.latencies_ms()
        )


class TestHistogramExemplars:
    def test_p99_tail_carries_request_ids(self, collector):
        servable = _servable()
        report = serve_trace(servable, _cfg(servable, num_requests=80))
        registry = MetricsRegistry()
        report.publish(registry, system="TLPGNN", dataset="CS")
        hist = registry.histogram(
            "serve_latency_ms", serve=report.label,
            system="TLPGNN", dataset="CS",
        )
        assert hist.count == report.completed
        tail = hist.tail_exemplars(0.99)
        assert tail, "p99 tail must keep exemplars"
        completed_rids = {t.ctx.rid for t in collector.completed}
        for rid, latency_ms in tail:
            assert rid in completed_rids
            # the exemplar points at the request the collector traced
            assert collector.get(rid).latency_s * 1e3 == pytest.approx(
                latency_ms
            )
        # the slowest request of the run is one of the tail exemplars
        slowest = collector.slowest(1)[0]
        assert slowest.ctx.rid in {rid for rid, _ in tail}


class TestChromeExport:
    def test_serving_trace_exports_loadable_chrome_json(
        self, collector, tmp_path
    ):
        servable = _servable()
        report = serve_trace(servable, _cfg(servable))
        events = collector.to_chrome_trace()
        target = tmp_path / "reqtrace.json"
        target.write_text(json.dumps({"traceEvents": events}))
        loaded = json.loads(target.read_text())["traceEvents"]
        complete = [e for e in loaded if e["ph"] == "X"]
        roots = [e for e in complete if e["name"].startswith("request #")]
        assert len(roots) == report.completed
        # kernel child spans sit inside their request's root interval
        for root in roots:
            tid = root["tid"]
            children = [
                e for e in complete
                if e["tid"] == tid and e["pid"] == root["pid"] and e is not root
            ]
            assert children
            for child in children:
                assert child["ts"] >= root["ts"] - 1e-6
                assert (
                    child["ts"] + child["dur"]
                    <= root["ts"] + root["dur"] + 1e-6
                )
