"""Serving comparison scenario: the ISSUE 2 acceptance claim.

TLPGNN must sustain a strictly higher offered rate at the fixed p99 SLO
than DGL-sim on at least two synthetic datasets, with results reported
through the ``repro.obs`` metrics registry.
"""

import pytest

from repro.bench import BenchConfig
from repro.bench.serving import serving_scenario, sustained_rate
from repro.obs.metrics import MetricsRegistry

CONFIG = BenchConfig(feat_dim=16, max_edges=60_000, seed=7)


@pytest.fixture(scope="module")
def scenario():
    registry = MetricsRegistry()
    table = serving_scenario(
        CONFIG, datasets=("CS", "CR"), num_requests=80, registry=registry
    )
    return table, registry


class TestServingComparison:
    def test_tlpgnn_sustains_more_than_dgl_on_two_datasets(self, scenario):
        table, _ = scenario
        by_cell = {
            (r["dataset"], r["system"]): r
            for r in table.records
            if r.get("supported")
        }
        for abbr in ("CS", "CR"):
            tlpgnn = by_cell[(abbr, "TLPGNN")]["sustained_rps"]
            dgl = by_cell[(abbr, "DGL")]["sustained_rps"]
            assert tlpgnn > dgl, f"{abbr}: TLPGNN {tlpgnn} <= DGL {dgl}"

    def test_reported_via_obs_metrics(self, scenario):
        table, registry = scenario
        records = registry.snapshot()
        sustained = {
            (r["labels"]["dataset"], r["labels"]["system"]): r["value"]
            for r in records
            if r["name"] == "serve_sustained_rps"
        }
        for abbr in ("CS", "CR"):
            assert sustained[(abbr, "TLPGNN")] > sustained[(abbr, "DGL")]
        names = {r["name"] for r in records}
        assert "serve_latency_p99_ms" in names
        assert "serve_requests_shed" in names

    def test_sustained_rates_meet_slo(self, scenario):
        table, _ = scenario
        for r in table.records:
            if r.get("supported") and r["sustained_rps"] > 0:
                assert r["p99_ms"] <= r["slo_ms"]

    def test_table_renders(self, scenario):
        table, _ = scenario
        text = table.render()
        assert "TLPGNN" in text and "DGL" in text
        assert len(table.rows) == 6  # 2 datasets x 3 systems


class TestSustainedRate:
    def test_zero_when_even_lowest_rung_fails(self):
        from repro.frameworks import SYSTEMS
        from repro.bench import get_dataset
        from repro.serve import ServableModel, ServeConfig

        dataset = get_dataset("CS", CONFIG)
        model = ServableModel(
            SYSTEMS["DGL"](), "gcn", dataset,
            feat_dim=CONFIG.feat_dim, spec=CONFIG.spec_for(dataset),
            seed=CONFIG.seed,
        )
        base = ServeConfig(num_requests=40, seed=7)
        # impossible SLO: nothing sustains
        rate, report = sustained_rate(
            model, [10.0, 100.0], slo_ms=1e-9, base_cfg=base
        )
        assert rate == 0.0 and report is None
