"""End-to-end service: offline parity, batching amortization, obs wiring."""

import numpy as np
import pytest

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS
from repro.frameworks.base import UnsupportedModelError
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServableModel, ServeConfig, serve_trace

CONFIG = BenchConfig(feat_dim=16, max_edges=60_000, seed=7)


def servable(system_name, model="gcn", abbr="CS"):
    dataset = get_dataset(abbr, CONFIG)
    return ServableModel(
        SYSTEMS[system_name](), model, dataset,
        feat_dim=CONFIG.feat_dim, spec=CONFIG.spec_for(dataset),
        seed=CONFIG.seed,
    )


class TestOfflineParity:
    """ISSUE 2 acceptance: streams=1, batch=1 ⇒ per-request latency equals
    the offline run_system runtime within 1%."""

    @pytest.mark.parametrize("system_name", ["TLPGNN", "DGL", "GNNAdvisor"])
    def test_uncontended_latency_matches_run_system(self, system_name):
        model = servable(system_name)
        # run_system reference on the identical cell (same features: the
        # adapter mirrors make_features)
        dataset = get_dataset("CS", CONFIG)
        X = make_features(
            dataset.graph.num_vertices, CONFIG.feat_dim, seed=CONFIG.seed
        )
        np.testing.assert_array_equal(model.X, X)
        reference = run_system(
            SYSTEMS[system_name](), "gcn", dataset, CONFIG, X=X
        ).report.timing.runtime_seconds
        # rate low enough that requests never overlap
        cfg = ServeConfig(
            rate_hz=0.01 / reference, num_requests=10, max_batch=1,
            window_s=0.0, num_streams=1, queue_depth=64, seed=3,
        )
        report = serve_trace(model, cfg)
        assert report.completed == 10
        latencies_s = report.accountant.latencies_ms() / 1e3
        np.testing.assert_allclose(latencies_s, reference, rtol=0.01)
        assert report.offline_runtime_ms == pytest.approx(reference * 1e3)

    def test_parity_is_exact_not_just_within_tolerance(self):
        model = servable("TLPGNN")
        reference = model.offline_runtime_s
        cfg = ServeConfig(
            rate_hz=0.01 / reference, num_requests=5, max_batch=1,
            window_s=0.0, num_streams=1, seed=3,
        )
        report = serve_trace(model, cfg)
        latencies_s = report.accountant.latencies_ms() / 1e3
        np.testing.assert_allclose(latencies_s, reference, rtol=1e-9)


class TestBatching:
    def test_batching_amortizes_launch_overhead(self):
        # DGL pays six launches + dispatch per batch; batching 4 requests
        # into one pipeline must beat 4 separate pipelines on throughput.
        model = servable("DGL")
        rate = 2.0 / model.offline_runtime_s  # overload for batch=1
        common = dict(
            rate_hz=rate, num_requests=60, num_streams=1,
            queue_depth=1_000, seed=5,
        )
        unbatched = serve_trace(
            model, ServeConfig(max_batch=1, window_s=0.0, **common)
        )
        batched = serve_trace(
            model, ServeConfig(max_batch=8, window_s=1e-3, **common)
        )
        assert batched.avg_batch > 1.5
        assert batched.throughput_rps > unbatched.throughput_rps
        assert batched.makespan_s < unbatched.makespan_s

    def test_targets_job_runs_subgraph(self):
        model = servable("TLPGNN")
        cfg = ServeConfig(
            job="targets", targets_per_request=8,
            rate_hz=0.2 / model.offline_runtime_s, num_requests=12,
            max_batch=4, window_s=1e-4, num_streams=2, seed=11,
        )
        report = serve_trace(model, cfg)
        assert report.completed == 12
        # a handful of target rows needs less device time than the full graph
        requests = cfg.trace(model.graph.num_vertices)
        plan = model.plan(requests[:4])
        full_gpu = model.offline_timing.gpu_seconds
        assert sum(k.alone_seconds for k in plan) < full_gpu

    def test_two_streams_help_under_load(self):
        model = servable("TLPGNN")
        rate = 3.0 / model.offline_runtime_s
        common = dict(
            rate_hz=rate, num_requests=80, max_batch=1, window_s=0.0,
            queue_depth=1_000, seed=2,
        )
        one = serve_trace(model, ServeConfig(num_streams=1, **common))
        two = serve_trace(
            model, ServeConfig(num_streams=2, max_concurrent=2, **common)
        )
        assert two.p99_ms <= one.p99_ms

    def test_unsupported_model_raises_at_construction(self):
        dataset = get_dataset("CS", CONFIG)
        with pytest.raises(UnsupportedModelError):
            ServableModel(SYSTEMS["GNNAdvisor"](), "gat", dataset)


class TestObsWiring:
    def test_report_publishes_metrics(self):
        model = servable("TLPGNN")
        cfg = ServeConfig(
            rate_hz=0.3 / model.offline_runtime_s, num_requests=20, seed=1
        )
        report = serve_trace(model, cfg)
        registry = MetricsRegistry()
        report.publish(registry, system="TLPGNN", dataset="CS")
        names = {rec["name"] for rec in registry.snapshot()}
        assert {
            "serve_requests_arrived", "serve_requests_completed",
            "serve_requests_shed", "serve_latency_p99_ms",
            "serve_throughput_rps",
        } <= names
        arrived = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "serve_requests_arrived"
        )
        assert arrived["value"] == 20
        assert arrived["labels"]["system"] == "TLPGNN"

    def test_publish_without_registry_is_noop(self):
        model = servable("TLPGNN")
        cfg = ServeConfig(
            rate_hz=0.3 / model.offline_runtime_s, num_requests=5, seed=1
        )
        serve_trace(model, cfg).publish()  # no installed registry: no-op
