"""Declared effect tables must agree with the counter model and micro-sim.

``cross_validate_effects`` triangulates three independent sources for the
atomic-operation count of every ConvKernel: the declarative effect table,
the vectorized counter model (``analyze``), and — where the kernel has a
warp-by-warp ``trace`` — the exact micro-simulator.  A kernel that lies
about its atomics must be caught.
"""

import numpy as np
import pytest

from repro.graph.generators import power_law
from repro.kernels.edge_centric import EdgeCentricKernel
from repro.kernels.edge_parallel_warp import EdgeParallelWarpKernel
from repro.kernels.neighbor_group import NeighborGroupKernel
from repro.kernels.pull_cta import PullCTAKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.lint.effects import (
    LaunchEnvelope,
    conv_read_buffers,
    cross_validate_effects,
    effect_table,
)
from repro.models import build_conv
from repro.models.convspec import ConvWorkload

KERNELS = [
    TLPGNNKernel(),
    TLPGNNKernel(assignment="hardware"),
    PushKernel(),
    EdgeCentricKernel(),
    NeighborGroupKernel(group_size=3),
    NeighborGroupKernel(group_size=8),
    PullThreadKernel(),
    PullCTAKernel(),
    EdgeParallelWarpKernel(),
]


@pytest.fixture(scope="module")
def graph():
    return power_law(24, 72, seed=2)


def _workloads(graph):
    rng = np.random.default_rng(5)
    X = rng.standard_normal((graph.num_vertices, 8)).astype(np.float32)
    plain = ConvWorkload(graph=graph, X=X, reduce="sum")
    weighted = ConvWorkload(
        graph=graph,
        X=X,
        edge_weights=rng.random(graph.num_edges).astype(np.float32),
        reduce="sum",
    )
    return {"plain": plain, "weighted": weighted}


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("which", ["plain", "weighted"])
def test_declared_effects_match_models(kernel, which, graph):
    workload = _workloads(graph)[which]
    if not kernel.supports(workload):
        pytest.skip(f"{kernel.name} does not support this workload")
    assert cross_validate_effects(kernel, workload) == []


def test_tlpgnn_attention_effects_match(graph):
    rng = np.random.default_rng(9)
    X = rng.standard_normal((graph.num_vertices, 8)).astype(np.float32)
    workload = build_conv("gat", graph, X, rng=rng)
    kernel = TLPGNNKernel()
    assert kernel.supports(workload)
    eff = kernel.effects(workload)
    assert "att" in eff.reads  # the fused GAT path streams the logits
    assert cross_validate_effects(kernel, workload) == []


def test_attention_workload_reads_att_buffer(graph):
    rng = np.random.default_rng(9)
    X = rng.standard_normal((graph.num_vertices, 8)).astype(np.float32)
    gat = build_conv("gat", graph, X, rng=rng)
    assert conv_read_buffers(gat) == ("indptr", "indices", "feat", "att")
    weighted = _workloads(graph)["weighted"]
    assert conv_read_buffers(weighted) == (
        "indptr", "indices", "feat", "edge_vals",
    )


class _LyingPushKernel(PushKernel):
    """Push kernel whose declaration hides its atomic merge."""

    def effects(self, workload):
        return effect_table(
            reads=conv_read_buffers(workload),
            writes=("out",),
            launch=LaunchEnvelope(threads_per_block=128),
        )


def test_misdeclared_kernel_is_caught(graph):
    workload = _workloads(graph)["plain"]
    problems = cross_validate_effects(_LyingPushKernel(), workload)
    # the declaration disagrees with both the counter model and the trace
    assert len(problems) >= 2
    assert any("counter-model" in p for p in problems)


def test_undeclared_kernel_is_reported(graph):
    class Bare(PushKernel):
        def effects(self, workload):
            return None

    problems = cross_validate_effects(Bare(), _workloads(graph)["plain"])
    assert problems and "no effect table" in problems[0]
